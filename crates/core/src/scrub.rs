//! Whole-device scrub: parallel verification of every heated line.
//!
//! The paper's §5.2 defence assumes whole-device verification is routine —
//! "a fsck style scan of the medium would definitely recover (albeit
//! slowly) all the heated files" — and its capacity arithmetic (100 nm
//! pitch ⇒ 10 Gbit/cm²) makes *slowly* a real problem: at device scale a
//! serial [`SeroDevice::verify_line`] crawl leaves the probe array mostly
//! idle. Real probe-storage hardware is massively parallel (the µSPAM has
//! one tip per track group), so a scrub controller can shard the heated
//! lines over independent probe controllers and verify them concurrently.
//!
//! [`scrub_device`] models exactly that: the registered heated lines are
//! split into contiguous shards, each shard is verified by a worker thread
//! on its own clone of the device (clones share no state, mirroring
//! per-region controllers with private channels and clocks), and the
//! results are merged into a per-line [`VerifyOutcome`] report plus a
//! device-wide [`ScrubSummary`]. Two times fall out:
//!
//! * **serial device time** — the sum of all workers' busy time: what the
//!   one-line-at-a-time loop would have cost;
//! * **parallel device time** — the maximum over workers: what the sharded
//!   scrub costs wall-clock on the device. The originating device's clock
//!   advances by this amount.
//!
//! Their ratio is the scrub speedup reported by `exp_scrub` and tracked in
//! `BENCH_scrub.json`. Verification outcomes are *identical* to the serial
//! loop: sharding changes who reads a line, never what is read (the 26 dB
//! default read channel makes detection deterministic in practice, and the
//! property tests in `tests/bulk_io_props.rs` pin this equivalence).
//!
//! Scrubbing is also **epoch-based**: every completed pass advances the
//! device's scrub epoch and stamps each verified line with it. An
//! [`ScrubMode::Incremental`] pass then verifies only the *delta* — lines
//! heated or rediscovered since the last completed pass, plus every
//! *flagged* line (prior tamper evidence, refused protocol accesses) — and
//! reports the rest as skipped, so routine re-scrubs under live traffic
//! cost device time proportional to what changed, not to the archive.
//! Because silently tampered already-verified lines are invisible to the
//! delta, incremental configs periodically fall back to a full pass
//! (every [`ScrubConfig::full_every`]-th epoch). Tampered lines stay
//! flagged, so their evidence reappears in every following incremental
//! report until an operator-sanctioned pass finds them intact again.
//! Shard assignment is seek-aware: each worker's cloned actuator starts
//! parked at its shard's first track (a per-region controller rests in its
//! region), so the farthest shard no longer pays a long cold seek.
//!
//! This module is the *exclusive* pass — it assumes nothing else touches
//! the device while it runs. Verification interleaved with live
//! foreground traffic goes through [`crate::sched::ScrubScheduler`]
//! (budgeted slices), and under the concurrent foreground core through
//! its lock-aware variant so a line mid-write is deferred, not read
//! half-mutated (`docs/ARCHITECTURE.md` has the full model).
//!
//! # Examples
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_core::line::Line;
//! use sero_core::scrub::{scrub_device, ScrubConfig};
//!
//! let mut dev = SeroDevice::with_blocks(64);
//! for start in [0u64, 8, 16] {
//!     let line = Line::new(start, 3)?;
//!     for pba in line.data_blocks() {
//!         dev.write_block(pba, &[pba as u8; 512])?;
//!     }
//!     dev.heat_line(line, vec![], 0)?;
//! }
//! let report = scrub_device(&mut dev, &ScrubConfig::with_workers(2))?;
//! assert_eq!(report.summary.lines, 3);
//! assert_eq!(report.summary.intact, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::device::{SeroDevice, SeroError};
use crate::line::Line;
use crate::tamper::VerifyOutcome;
use sero_probe::sector::SECTOR_DATA_BYTES;

/// How much of the registry a scrub pass verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScrubMode {
    /// Verify every registered heated line.
    #[default]
    Full,
    /// Verify only the lines heated (or rediscovered) since the last
    /// completed pass, plus every *flagged* line — lines with prior tamper
    /// evidence or refused protocol accesses. Falls back to a full pass
    /// every [`ScrubConfig::full_every`]-th epoch, and on a device with no
    /// completed pass yet.
    Incremental,
}

/// Tuning knobs for [`scrub_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Number of worker shards. `0` (the default) picks the host's
    /// available parallelism (clamped to 8); `1` verifies in place without
    /// cloning the device.
    pub workers: usize,
    /// Full or incremental verification (default: full).
    pub mode: ScrubMode,
    /// In incremental mode, force a full pass every `full_every`-th epoch
    /// so silently tampered already-verified lines cannot hide forever
    /// (`0` disables the fallback). Default: 8.
    pub full_every: u64,
}

impl Default for ScrubConfig {
    fn default() -> ScrubConfig {
        ScrubConfig {
            workers: 0,
            mode: ScrubMode::Full,
            full_every: 8,
        }
    }
}

impl ScrubConfig {
    /// A full-pass config with an explicit worker count.
    pub fn with_workers(workers: usize) -> ScrubConfig {
        ScrubConfig {
            workers,
            ..ScrubConfig::default()
        }
    }

    /// An incremental config with an explicit worker count.
    pub fn incremental(workers: usize) -> ScrubConfig {
        ScrubConfig {
            workers,
            mode: ScrubMode::Incremental,
            ..ScrubConfig::default()
        }
    }

    /// The worker count actually used for `lines` heated lines.
    pub fn effective_workers(&self, lines: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.workers
        };
        requested.clamp(1, lines.max(1))
    }

    /// The mode epoch `epoch` actually runs in: incremental requests fall
    /// back to a full pass on the periodic `full_every` boundary and when
    /// no pass has completed yet (everything is unverified anyway).
    pub fn effective_mode(&self, epoch: u64, completed_passes: u64) -> ScrubMode {
        match self.mode {
            ScrubMode::Full => ScrubMode::Full,
            ScrubMode::Incremental
                if completed_passes == 0
                    || (self.full_every != 0 && epoch % self.full_every == 0) =>
            {
                ScrubMode::Full
            }
            ScrubMode::Incremental => ScrubMode::Incremental,
        }
    }
}

/// One line's scrub result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineScrub {
    /// The heated line verified.
    pub line: Line,
    /// What verification found.
    pub outcome: VerifyOutcome,
}

/// Device-wide totals of one scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubSummary {
    /// Heated lines verified.
    pub lines: usize,
    /// Lines whose data matched their heated hash.
    pub intact: usize,
    /// Lines with tamper evidence.
    pub tampered: usize,
    /// Registered lines whose hash block scanned blank (should not happen
    /// on a healthy registry; counted rather than dropped).
    pub not_heated: usize,
    /// Registered lines an incremental pass skipped because the last
    /// completed pass already covered them (always 0 for a full pass).
    pub skipped: usize,
    /// The epoch this pass completed as (1-based).
    pub epoch: u64,
    /// The mode the pass actually ran in (an incremental request reports
    /// [`ScrubMode::Full`] on its periodic fallback epochs).
    pub mode: ScrubMode,
    /// Bytes of protected data re-hashed.
    pub data_bytes: u64,
    /// Worker shards used.
    pub workers: usize,
    /// Simulated device time of the sharded scrub: max busy time over
    /// workers. The device clock advances by this much.
    pub device_ns: u128,
    /// Simulated device time a serial verify loop would have spent: the
    /// sum of all workers' busy time.
    pub serial_device_ns: u128,
    /// Host wall-clock nanoseconds the scrub took (informational; noisy).
    pub host_ns: u128,
}

impl ScrubSummary {
    /// Device-time speedup of the sharded scrub over the serial loop.
    pub fn parallel_speedup(&self) -> f64 {
        if self.device_ns == 0 {
            1.0
        } else {
            self.serial_device_ns as f64 / self.device_ns as f64
        }
    }

    /// True when no line showed tamper evidence.
    pub fn is_clean(&self) -> bool {
        self.tampered == 0
    }
}

/// Full scrub output: per-line outcomes (in address order) plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubReport {
    /// Per-line outcomes, sorted by line start address.
    pub outcomes: Vec<LineScrub>,
    /// Device-wide totals.
    pub summary: ScrubSummary,
}

impl ScrubReport {
    /// The lines that showed tamper evidence.
    pub fn tampered_lines(&self) -> impl Iterator<Item = &LineScrub> {
        self.outcomes.iter().filter(|l| l.outcome.is_tampered())
    }
}

/// The work list a pass running in `mode` verifies: every registered line
/// for a [`ScrubMode::Full`] pass, or — incrementally — only the delta:
/// lines never verified by a completed pass (`verified_epoch == 0`,
/// i.e. heated or rediscovered since), plus every *flagged* line. Shared
/// by [`scrub_device`] and the background [`crate::sched::ScrubScheduler`]
/// so the two can never disagree about what a pass covers.
pub fn pass_work_list(dev: &SeroDevice, mode: ScrubMode) -> Vec<Line> {
    dev.heated_lines()
        .filter(|r| mode == ScrubMode::Full || r.verified_epoch == 0 || r.flagged)
        .map(|r| r.line)
        .collect()
}

/// Tallies per-line outcomes into `summary`'s counters (`lines`,
/// `intact`/`tampered`/`not_heated`, `data_bytes`). Shared by
/// [`scrub_device`] and the background scheduler's report assembly so the
/// two can never drift.
pub(crate) fn tally_outcomes(outcomes: &[LineScrub], summary: &mut ScrubSummary) {
    for scrubbed in outcomes {
        summary.lines += 1;
        summary.data_bytes += (scrubbed.line.len() - 1) * SECTOR_DATA_BYTES as u64;
        match &scrubbed.outcome {
            VerifyOutcome::Intact { .. } => summary.intact += 1,
            VerifyOutcome::Tampered(_) => summary.tampered += 1,
            VerifyOutcome::NotHeated => summary.not_heated += 1,
        }
    }
}

/// Verifies every registered heated line, sharded over
/// `config`-many worker threads (see the module docs for the model).
///
/// The registry is the work list: call
/// [`SeroDevice::rebuild_registry`] / [`SeroDevice::refresh_registry`]
/// first if the device was just attached. The device clock advances by the
/// parallel elapsed time.
///
/// Each worker clones the full device, so host memory scales with
/// `workers × device size` and host wall time does not improve on small
/// hosts — the win is in *device* time. A read-only share is not an
/// option: the five-step `erb` protocol physically inverts and restores
/// dots, so verification mutates the medium (and its channel RNG and
/// clock) even though it leaves the data unchanged.
///
/// # Errors
///
/// Only infrastructure failures propagate (a registered line out of
/// range); tamper findings are data in the report.
pub fn scrub_device(dev: &mut SeroDevice, config: &ScrubConfig) -> Result<ScrubReport, SeroError> {
    let host_start = std::time::Instant::now();
    let epoch = dev.scrub_epoch() + 1;
    let mode = config.effective_mode(epoch, dev.scrub_epoch());

    // The work list: everything, or — incrementally — only lines heated or
    // rediscovered since the last completed pass (verified_epoch 0) plus
    // every flagged line.
    let registered = dev.heated_lines().count();
    let lines = pass_work_list(dev, mode);
    let workers = config.effective_workers(lines.len());

    let mut summary = ScrubSummary {
        workers,
        epoch,
        mode,
        skipped: registered - lines.len(),
        ..ScrubSummary::default()
    };
    if lines.is_empty() {
        dev.complete_scrub_pass(epoch);
        summary.host_ns = host_start.elapsed().as_nanos();
        return Ok(ScrubReport {
            outcomes: Vec::new(),
            summary,
        });
    }

    // Contiguous shards: each worker owns an address range, so its seeks
    // stay short — the same locality argument as the fs cleaner's.
    // Ceil-division chunking can yield fewer shards than requested
    // workers; the summary reports what actually ran.
    let chunk = lines.len().div_ceil(workers);
    let shards: Vec<Vec<Line>> = lines.chunks(chunk).map(<[Line]>::to_vec).collect();
    let workers = shards.len();
    summary.workers = workers;
    let base_ns = dev.probe().clock().elapsed_ns();

    let mut busy_ns: Vec<u128> = Vec::with_capacity(shards.len());
    let mut outcomes: Vec<LineScrub> = Vec::with_capacity(lines.len());

    if workers <= 1 {
        // In-place single-worker pass: this is the serial reference the
        // sharded path is benchmarked against, so it keeps the device's
        // real actuator position (no free parking).
        for line in lines {
            let outcome = dev.verify_line(line)?;
            outcomes.push(LineScrub { line, outcome });
        }
        busy_ns.push(dev.probe().clock().elapsed_ns() - base_ns);
    } else {
        let shared: &SeroDevice = dev;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(move || -> Result<(u128, Vec<LineScrub>), SeroError> {
                        let mut local = shared.clone();
                        // Each worker models an independent probe-region
                        // controller whose resting position is inside its
                        // region: park at the shard's first track so the
                        // farthest shard no longer pays a long cold seek
                        // before its first verify.
                        if let Some(first) = shard.first() {
                            local.probe_mut().park_at(first.hash_block());
                        }
                        let mut out = Vec::with_capacity(shard.len());
                        for line in shard {
                            let outcome = local.verify_line(line)?;
                            out.push(LineScrub { line, outcome });
                        }
                        Ok((local.probe().clock().elapsed_ns() - base_ns, out))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scrub worker panicked"))
                .collect::<Vec<_>>()
        });
        for result in results {
            let (ns, shard_outcomes) = result?;
            busy_ns.push(ns);
            outcomes.extend(shard_outcomes);
        }
        let elapsed = busy_ns.iter().copied().max().unwrap_or(0);
        dev.probe_mut().advance_clock(elapsed as u64);
    }

    outcomes.sort_by_key(|l| l.line.start());
    tally_outcomes(&outcomes, &mut summary);
    for scrubbed in &outcomes {
        // Stamp the pass outcome: intact lines are covered until re-flagged
        // or re-heated; tampered (and blank-scanning) lines stay flagged so
        // every following incremental pass keeps reporting their evidence.
        dev.stamp_scrubbed(
            scrubbed.line,
            epoch,
            !matches!(scrubbed.outcome, VerifyOutcome::Intact { .. }),
        );
    }
    dev.complete_scrub_pass(epoch);
    summary.device_ns = busy_ns.iter().copied().max().unwrap_or(0);
    summary.serial_device_ns = busy_ns.iter().sum();
    summary.host_ns = host_start.elapsed().as_nanos();
    Ok(ScrubReport { outcomes, summary })
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: u64 = 1_199_145_600;

    fn heated_device(blocks: u64, order: u32, lines: usize) -> (SeroDevice, Vec<Line>) {
        let mut dev = SeroDevice::with_blocks(blocks);
        let len = 1u64 << order;
        let mut heated = Vec::new();
        for i in 0..lines as u64 {
            let line = Line::new(i * len, order).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &[pba as u8; 512]).unwrap();
            }
            dev.heat_line(line, vec![], T0 + i).unwrap();
            heated.push(line);
        }
        (dev, heated)
    }

    #[test]
    fn scrub_matches_serial_verify() {
        let (mut dev, lines) = heated_device(128, 3, 8);
        // Tamper with two lines in different ways.
        dev.probe_mut()
            .mws(lines[2].start() + 1, &[0xBB; 512])
            .unwrap();
        let cell = dev.probe().electrical_cell_dot(lines[5].hash_block(), 0);
        dev.probe_mut().ewb(cell);
        dev.probe_mut().ewb(cell + 1);

        let mut serial_dev = dev.clone();
        let serial = serial_dev.verify_lines(&lines).unwrap();
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(3)).unwrap();

        assert_eq!(report.outcomes.len(), serial.len());
        for (scrubbed, (line, outcome)) in report.outcomes.iter().zip(serial.iter()) {
            assert_eq!(scrubbed.line, *line);
            assert_eq!(&scrubbed.outcome, outcome, "divergence on {line}");
        }
        assert_eq!(report.summary.tampered, 2);
        assert_eq!(report.summary.intact, 6);
        assert_eq!(report.tampered_lines().count(), 2);
    }

    #[test]
    fn sharded_scrub_is_faster_in_device_time() {
        let (mut dev, _) = heated_device(128, 3, 8);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(4)).unwrap();
        assert_eq!(report.summary.workers, 4);
        assert!(
            report.summary.parallel_speedup() > 2.0,
            "speedup {} with 4 workers",
            report.summary.parallel_speedup()
        );
        assert!(report.summary.device_ns < report.summary.serial_device_ns);
    }

    #[test]
    fn scrub_advances_the_device_clock_by_parallel_time() {
        let (mut dev, _) = heated_device(64, 3, 4);
        let before = dev.probe().clock().elapsed_ns();
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();
        let advanced = dev.probe().clock().elapsed_ns() - before;
        assert_eq!(advanced, report.summary.device_ns);
    }

    #[test]
    fn single_worker_runs_in_place() {
        let (mut dev, lines) = heated_device(64, 2, 4);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(1)).unwrap();
        assert_eq!(report.summary.lines, lines.len());
        assert_eq!(report.summary.device_ns, report.summary.serial_device_ns);
        assert!((report.summary.parallel_speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_registry_scrubs_cleanly() {
        let mut dev = SeroDevice::with_blocks(16);
        let report = scrub_device(&mut dev, &ScrubConfig::default()).unwrap();
        assert_eq!(report.summary.lines, 0);
        assert!(report.summary.is_clean());
        assert!(report.outcomes.is_empty());
    }

    #[test]
    fn worker_counts_clamp_sensibly() {
        let cfg = ScrubConfig::with_workers(16);
        assert_eq!(cfg.effective_workers(3), 3, "never more workers than lines");
        assert_eq!(cfg.effective_workers(0), 1);
        assert!(ScrubConfig::default().effective_workers(100) >= 1);
    }

    #[test]
    fn summary_reports_actual_shard_count() {
        // 6 lines over 4 requested workers: ceil-chunking yields 3 shards
        // of 2 — the summary must say 3, not 4.
        let (mut dev, _) = heated_device(64, 3, 6);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(4)).unwrap();
        assert_eq!(report.summary.workers, 3);
    }

    #[test]
    fn summary_counts_bytes() {
        let (mut dev, _) = heated_device(64, 3, 2);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();
        assert_eq!(report.summary.data_bytes, 2 * 7 * 512);
    }

    #[test]
    fn incremental_scrub_verifies_only_the_delta() {
        let (mut dev, _) = heated_device(256, 3, 8);
        let full = scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();
        assert_eq!((full.summary.epoch, full.summary.skipped), (1, 0));
        assert_eq!(dev.scrub_epoch(), 1);

        // Nothing changed: the next incremental pass verifies nothing.
        let idle = scrub_device(&mut dev, &ScrubConfig::incremental(2)).unwrap();
        assert_eq!(idle.summary.mode, ScrubMode::Incremental);
        assert_eq!((idle.summary.lines, idle.summary.skipped), (0, 8));
        assert_eq!(dev.scrub_epoch(), 2);

        // Heat two new lines: only they are verified.
        for i in 8..10u64 {
            let line = Line::new(i * 8, 3).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &[pba as u8; 512]).unwrap();
            }
            dev.heat_line(line, vec![], T0).unwrap();
        }
        let delta = scrub_device(&mut dev, &ScrubConfig::incremental(2)).unwrap();
        assert_eq!((delta.summary.lines, delta.summary.skipped), (2, 8));
        assert!(delta.summary.is_clean());
        assert!(delta.outcomes.iter().all(|l| l.line.start() >= 64,));
    }

    #[test]
    fn refused_write_flags_line_for_incremental_reverify() {
        let (mut dev, lines) = heated_device(64, 3, 4);
        scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();

        // A refused write into a frozen line is suspicious activity…
        assert!(dev.write_block(lines[2].start() + 1, &[0u8; 512]).is_err());
        let report = scrub_device(&mut dev, &ScrubConfig::incremental(2)).unwrap();
        assert_eq!(report.summary.lines, 1, "only the flagged line re-verified");
        assert_eq!(report.outcomes[0].line, lines[2]);
        assert!(report.outcomes[0].outcome.is_intact());

        // …and an intact verdict clears the flag again.
        let idle = scrub_device(&mut dev, &ScrubConfig::incremental(2)).unwrap();
        assert_eq!(idle.summary.lines, 0);
    }

    #[test]
    fn tampered_line_stays_flagged_and_reappears_every_pass() {
        let (mut dev, lines) = heated_device(64, 3, 4);
        scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();
        dev.probe_mut()
            .mws(lines[1].start() + 1, &[0xAA; 512])
            .unwrap();
        // The rewrite bypassed the protocol, so pass 2 (incremental) cannot
        // see it — that is exactly what the full_every fallback is for.
        let blind = scrub_device(&mut dev, &ScrubConfig::incremental(2)).unwrap();
        assert_eq!(blind.summary.tampered, 0);

        // A full pass finds it and flags it…
        let caught = scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();
        assert_eq!(caught.summary.tampered, 1);
        // …and every later incremental pass keeps reporting the evidence.
        for _ in 0..2 {
            let report = scrub_device(&mut dev, &ScrubConfig::incremental(2)).unwrap();
            assert_eq!(report.summary.lines, 1);
            assert_eq!(report.summary.tampered, 1);
            assert_eq!(report.outcomes[0].line, lines[1]);
        }
    }

    #[test]
    fn incremental_falls_back_to_full_on_schedule() {
        let (mut dev, _) = heated_device(64, 3, 4);
        let mut config = ScrubConfig::incremental(2);
        config.full_every = 3;
        // Epoch 1: no completed pass yet → full.
        let first = scrub_device(&mut dev, &config).unwrap();
        assert_eq!(
            (first.summary.mode, first.summary.lines),
            (ScrubMode::Full, 4)
        );
        // Epoch 2: incremental, nothing to do.
        let second = scrub_device(&mut dev, &config).unwrap();
        assert_eq!(second.summary.mode, ScrubMode::Incremental);
        assert_eq!(second.summary.lines, 0);
        // Epoch 3: the periodic full pass re-verifies everything.
        let third = scrub_device(&mut dev, &config).unwrap();
        assert_eq!(
            (third.summary.mode, third.summary.lines),
            (ScrubMode::Full, 4)
        );

        // full_every = 0 disables the fallback entirely.
        config.full_every = 0;
        for _ in 0..4 {
            let report = scrub_device(&mut dev, &config).unwrap();
            assert_eq!(report.summary.mode, ScrubMode::Incremental);
            assert_eq!(report.summary.lines, 0);
        }
    }

    #[test]
    fn parked_workers_pay_no_cold_seek() {
        // A population far from track 0: without parking, every worker's
        // clone starts at the device's resting position and the farthest
        // shard pays the longest first seek. Parked workers start on their
        // shard's first track, so per-shard busy time loses that cold seek.
        let (mut dev, lines) = heated_device(4096, 3, 64);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(4)).unwrap();
        assert_eq!(report.summary.workers, 4);

        // Reference: one unparked worker verifying only the farthest shard.
        let mut far_dev = dev.clone();
        far_dev.probe_mut().park_at(0);
        let shard: Vec<Line> = lines[48..].to_vec();
        let base = far_dev.probe().clock().elapsed_ns();
        far_dev.verify_lines(&shard).unwrap();
        let unparked_ns = far_dev.probe().clock().elapsed_ns() - base;

        let cold_seek_ns = {
            let cost = *dev.probe().cost_model();
            (lines[48].hash_block()) * cost.t_step_ns + cost.t_settle_ns
        };
        assert!(
            report.summary.device_ns + u128::from(cold_seek_ns) / 2 <= unparked_ns,
            "parked shard time {} should be well under unparked {} (cold seek {})",
            report.summary.device_ns,
            unparked_ns,
            cold_seek_ns
        );
    }
}
