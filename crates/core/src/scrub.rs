//! Whole-device scrub: parallel verification of every heated line.
//!
//! The paper's §5.2 defence assumes whole-device verification is routine —
//! "a fsck style scan of the medium would definitely recover (albeit
//! slowly) all the heated files" — and its capacity arithmetic (100 nm
//! pitch ⇒ 10 Gbit/cm²) makes *slowly* a real problem: at device scale a
//! serial [`SeroDevice::verify_line`] crawl leaves the probe array mostly
//! idle. Real probe-storage hardware is massively parallel (the µSPAM has
//! one tip per track group), so a scrub controller can shard the heated
//! lines over independent probe controllers and verify them concurrently.
//!
//! [`scrub_device`] models exactly that: the registered heated lines are
//! split into contiguous shards, each shard is verified by a worker thread
//! on its own clone of the device (clones share no state, mirroring
//! per-region controllers with private channels and clocks), and the
//! results are merged into a per-line [`VerifyOutcome`] report plus a
//! device-wide [`ScrubSummary`]. Two times fall out:
//!
//! * **serial device time** — the sum of all workers' busy time: what the
//!   one-line-at-a-time loop would have cost;
//! * **parallel device time** — the maximum over workers: what the sharded
//!   scrub costs wall-clock on the device. The originating device's clock
//!   advances by this amount.
//!
//! Their ratio is the scrub speedup reported by `exp_scrub` and tracked in
//! `BENCH_scrub.json`. Verification outcomes are *identical* to the serial
//! loop: sharding changes who reads a line, never what is read (the 26 dB
//! default read channel makes detection deterministic in practice, and the
//! property tests in `tests/bulk_io_props.rs` pin this equivalence).
//!
//! # Examples
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_core::line::Line;
//! use sero_core::scrub::{scrub_device, ScrubConfig};
//!
//! let mut dev = SeroDevice::with_blocks(64);
//! for start in [0u64, 8, 16] {
//!     let line = Line::new(start, 3)?;
//!     for pba in line.data_blocks() {
//!         dev.write_block(pba, &[pba as u8; 512])?;
//!     }
//!     dev.heat_line(line, vec![], 0)?;
//! }
//! let report = scrub_device(&mut dev, &ScrubConfig::with_workers(2))?;
//! assert_eq!(report.summary.lines, 3);
//! assert_eq!(report.summary.intact, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::device::{SeroDevice, SeroError};
use crate::line::Line;
use crate::tamper::VerifyOutcome;
use sero_probe::sector::SECTOR_DATA_BYTES;

/// Tuning knobs for [`scrub_device`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubConfig {
    /// Number of worker shards. `0` (the default) picks the host's
    /// available parallelism (clamped to 8); `1` verifies in place without
    /// cloning the device.
    pub workers: usize,
}

impl ScrubConfig {
    /// A config with an explicit worker count.
    pub fn with_workers(workers: usize) -> ScrubConfig {
        ScrubConfig { workers }
    }

    /// The worker count actually used for `lines` heated lines.
    pub fn effective_workers(&self, lines: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.workers
        };
        requested.clamp(1, lines.max(1))
    }
}

/// One line's scrub result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineScrub {
    /// The heated line verified.
    pub line: Line,
    /// What verification found.
    pub outcome: VerifyOutcome,
}

/// Device-wide totals of one scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubSummary {
    /// Heated lines verified.
    pub lines: usize,
    /// Lines whose data matched their heated hash.
    pub intact: usize,
    /// Lines with tamper evidence.
    pub tampered: usize,
    /// Registered lines whose hash block scanned blank (should not happen
    /// on a healthy registry; counted rather than dropped).
    pub not_heated: usize,
    /// Bytes of protected data re-hashed.
    pub data_bytes: u64,
    /// Worker shards used.
    pub workers: usize,
    /// Simulated device time of the sharded scrub: max busy time over
    /// workers. The device clock advances by this much.
    pub device_ns: u128,
    /// Simulated device time a serial verify loop would have spent: the
    /// sum of all workers' busy time.
    pub serial_device_ns: u128,
    /// Host wall-clock nanoseconds the scrub took (informational; noisy).
    pub host_ns: u128,
}

impl ScrubSummary {
    /// Device-time speedup of the sharded scrub over the serial loop.
    pub fn parallel_speedup(&self) -> f64 {
        if self.device_ns == 0 {
            1.0
        } else {
            self.serial_device_ns as f64 / self.device_ns as f64
        }
    }

    /// True when no line showed tamper evidence.
    pub fn is_clean(&self) -> bool {
        self.tampered == 0
    }
}

/// Full scrub output: per-line outcomes (in address order) plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubReport {
    /// Per-line outcomes, sorted by line start address.
    pub outcomes: Vec<LineScrub>,
    /// Device-wide totals.
    pub summary: ScrubSummary,
}

impl ScrubReport {
    /// The lines that showed tamper evidence.
    pub fn tampered_lines(&self) -> impl Iterator<Item = &LineScrub> {
        self.outcomes.iter().filter(|l| l.outcome.is_tampered())
    }
}

/// Verifies every registered heated line, sharded over
/// `config`-many worker threads (see the module docs for the model).
///
/// The registry is the work list: call
/// [`SeroDevice::rebuild_registry`] / [`SeroDevice::refresh_registry`]
/// first if the device was just attached. The device clock advances by the
/// parallel elapsed time.
///
/// Each worker clones the full device, so host memory scales with
/// `workers × device size` and host wall time does not improve on small
/// hosts — the win is in *device* time. A read-only share is not an
/// option: the five-step `erb` protocol physically inverts and restores
/// dots, so verification mutates the medium (and its channel RNG and
/// clock) even though it leaves the data unchanged.
///
/// # Errors
///
/// Only infrastructure failures propagate (a registered line out of
/// range); tamper findings are data in the report.
pub fn scrub_device(dev: &mut SeroDevice, config: &ScrubConfig) -> Result<ScrubReport, SeroError> {
    let lines: Vec<Line> = dev.heated_lines().map(|r| r.line).collect();
    let host_start = std::time::Instant::now();
    let workers = config.effective_workers(lines.len());

    let mut summary = ScrubSummary {
        workers,
        ..ScrubSummary::default()
    };
    if lines.is_empty() {
        summary.host_ns = host_start.elapsed().as_nanos();
        return Ok(ScrubReport {
            outcomes: Vec::new(),
            summary,
        });
    }

    // Contiguous shards: each worker owns an address range, so its seeks
    // stay short — the same locality argument as the fs cleaner's.
    // Ceil-division chunking can yield fewer shards than requested
    // workers; the summary reports what actually ran.
    let chunk = lines.len().div_ceil(workers);
    let shards: Vec<Vec<Line>> = lines.chunks(chunk).map(<[Line]>::to_vec).collect();
    let workers = shards.len();
    summary.workers = workers;
    let base_ns = dev.probe().clock().elapsed_ns();

    let mut busy_ns: Vec<u128> = Vec::with_capacity(shards.len());
    let mut outcomes: Vec<LineScrub> = Vec::with_capacity(lines.len());

    if workers <= 1 {
        for line in lines {
            let outcome = dev.verify_line(line)?;
            outcomes.push(LineScrub { line, outcome });
        }
        busy_ns.push(dev.probe().clock().elapsed_ns() - base_ns);
    } else {
        let shared: &SeroDevice = dev;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(move || -> Result<(u128, Vec<LineScrub>), SeroError> {
                        let mut local = shared.clone();
                        let mut out = Vec::with_capacity(shard.len());
                        for line in shard {
                            let outcome = local.verify_line(line)?;
                            out.push(LineScrub { line, outcome });
                        }
                        Ok((local.probe().clock().elapsed_ns() - base_ns, out))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scrub worker panicked"))
                .collect::<Vec<_>>()
        });
        for result in results {
            let (ns, shard_outcomes) = result?;
            busy_ns.push(ns);
            outcomes.extend(shard_outcomes);
        }
        let elapsed = busy_ns.iter().copied().max().unwrap_or(0);
        dev.probe_mut().advance_clock(elapsed as u64);
    }

    outcomes.sort_by_key(|l| l.line.start());
    for scrubbed in &outcomes {
        summary.lines += 1;
        summary.data_bytes += (scrubbed.line.len() - 1) * SECTOR_DATA_BYTES as u64;
        match &scrubbed.outcome {
            VerifyOutcome::Intact { .. } => summary.intact += 1,
            VerifyOutcome::Tampered(_) => summary.tampered += 1,
            VerifyOutcome::NotHeated => summary.not_heated += 1,
        }
    }
    summary.device_ns = busy_ns.iter().copied().max().unwrap_or(0);
    summary.serial_device_ns = busy_ns.iter().sum();
    summary.host_ns = host_start.elapsed().as_nanos();
    Ok(ScrubReport { outcomes, summary })
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: u64 = 1_199_145_600;

    fn heated_device(blocks: u64, order: u32, lines: usize) -> (SeroDevice, Vec<Line>) {
        let mut dev = SeroDevice::with_blocks(blocks);
        let len = 1u64 << order;
        let mut heated = Vec::new();
        for i in 0..lines as u64 {
            let line = Line::new(i * len, order).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &[pba as u8; 512]).unwrap();
            }
            dev.heat_line(line, vec![], T0 + i).unwrap();
            heated.push(line);
        }
        (dev, heated)
    }

    #[test]
    fn scrub_matches_serial_verify() {
        let (mut dev, lines) = heated_device(128, 3, 8);
        // Tamper with two lines in different ways.
        dev.probe_mut()
            .mws(lines[2].start() + 1, &[0xBB; 512])
            .unwrap();
        let cell = dev.probe().electrical_cell_dot(lines[5].hash_block(), 0);
        dev.probe_mut().ewb(cell);
        dev.probe_mut().ewb(cell + 1);

        let mut serial_dev = dev.clone();
        let serial = serial_dev.verify_lines(&lines).unwrap();
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(3)).unwrap();

        assert_eq!(report.outcomes.len(), serial.len());
        for (scrubbed, (line, outcome)) in report.outcomes.iter().zip(serial.iter()) {
            assert_eq!(scrubbed.line, *line);
            assert_eq!(&scrubbed.outcome, outcome, "divergence on {line}");
        }
        assert_eq!(report.summary.tampered, 2);
        assert_eq!(report.summary.intact, 6);
        assert_eq!(report.tampered_lines().count(), 2);
    }

    #[test]
    fn sharded_scrub_is_faster_in_device_time() {
        let (mut dev, _) = heated_device(128, 3, 8);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(4)).unwrap();
        assert_eq!(report.summary.workers, 4);
        assert!(
            report.summary.parallel_speedup() > 2.0,
            "speedup {} with 4 workers",
            report.summary.parallel_speedup()
        );
        assert!(report.summary.device_ns < report.summary.serial_device_ns);
    }

    #[test]
    fn scrub_advances_the_device_clock_by_parallel_time() {
        let (mut dev, _) = heated_device(64, 3, 4);
        let before = dev.probe().clock().elapsed_ns();
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();
        let advanced = dev.probe().clock().elapsed_ns() - before;
        assert_eq!(advanced, report.summary.device_ns);
    }

    #[test]
    fn single_worker_runs_in_place() {
        let (mut dev, lines) = heated_device(64, 2, 4);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(1)).unwrap();
        assert_eq!(report.summary.lines, lines.len());
        assert_eq!(report.summary.device_ns, report.summary.serial_device_ns);
        assert!((report.summary.parallel_speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_registry_scrubs_cleanly() {
        let mut dev = SeroDevice::with_blocks(16);
        let report = scrub_device(&mut dev, &ScrubConfig::default()).unwrap();
        assert_eq!(report.summary.lines, 0);
        assert!(report.summary.is_clean());
        assert!(report.outcomes.is_empty());
    }

    #[test]
    fn worker_counts_clamp_sensibly() {
        let cfg = ScrubConfig::with_workers(16);
        assert_eq!(cfg.effective_workers(3), 3, "never more workers than lines");
        assert_eq!(cfg.effective_workers(0), 1);
        assert!(ScrubConfig::default().effective_workers(100) >= 1);
    }

    #[test]
    fn summary_reports_actual_shard_count() {
        // 6 lines over 4 requested workers: ceil-chunking yields 3 shards
        // of 2 — the summary must say 3, not 4.
        let (mut dev, _) = heated_device(64, 3, 6);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(4)).unwrap();
        assert_eq!(report.summary.workers, 3);
    }

    #[test]
    fn summary_counts_bytes() {
        let (mut dev, _) = heated_device(64, 3, 2);
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();
        assert_eq!(report.summary.data_bytes, 2 * 7 * 512);
    }
}
