//! Lines: the unit of the heat operation.
//!
//! §3 of the paper: "Our heat operation works on a *line*, which is a
//! sequence of 2^N contiguous blocks aligned on a 2^N boundary." Block 0 of
//! the line receives the electrically written hash; blocks 1 … 2^N − 1 hold
//! the protected data and remain magnetically readable.
//!
//! Alignment is what lets the verifier know *exactly* where to look for
//! hashes: given any block address, the candidate hash blocks are the
//! aligned line heads containing it — no index needed, which is the §5.1
//! defence against splitting/coalescing attacks.
//!
//! # Examples
//!
//! ```
//! use sero_core::line::Line;
//!
//! let line = Line::new(8, 3)?; // blocks 8..16, hash in block 8
//! assert_eq!(line.hash_block(), 8);
//! assert_eq!(line.data_blocks().collect::<Vec<_>>(), (9..16).collect::<Vec<_>>());
//! assert!(line.contains(12));
//! # Ok::<(), sero_core::line::LineError>(())
//! ```

use core::fmt;

/// Maximum supported line order (2^16 blocks = 32 MiB lines).
pub const MAX_ORDER: u32 = 16;

/// Errors constructing a [`Line`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineError {
    /// The start address is not aligned on the 2^order boundary.
    Misaligned {
        /// The rejected start block.
        start: u64,
        /// The requested order.
        order: u32,
    },
    /// Order 0 lines have no data blocks; orders above [`MAX_ORDER`] are
    /// unsupported.
    BadOrder {
        /// The rejected order.
        order: u32,
    },
}

impl fmt::Display for LineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineError::Misaligned { start, order } => {
                write!(f, "line start {start} not aligned on 2^{order} boundary")
            }
            LineError::BadOrder { order } => {
                write!(f, "line order {order} outside 1..={MAX_ORDER}")
            }
        }
    }
}

impl std::error::Error for LineError {}

/// A 2^order-block aligned line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Line {
    start: u64,
    order: u32,
}

impl Line {
    /// Creates a line of 2^`order` blocks starting at `start`.
    ///
    /// # Errors
    ///
    /// [`LineError::Misaligned`] when `start` is not a multiple of
    /// 2^`order`; [`LineError::BadOrder`] for order 0 or above
    /// [`MAX_ORDER`].
    pub fn new(start: u64, order: u32) -> Result<Line, LineError> {
        if order == 0 || order > MAX_ORDER {
            return Err(LineError::BadOrder { order });
        }
        let len = 1u64 << order;
        if start % len != 0 {
            return Err(LineError::Misaligned { start, order });
        }
        Ok(Line { start, order })
    }

    /// The aligned line of the given order containing `block`.
    ///
    /// # Errors
    ///
    /// [`LineError::BadOrder`] for unsupported orders.
    pub fn containing(block: u64, order: u32) -> Result<Line, LineError> {
        if order == 0 || order > MAX_ORDER {
            return Err(LineError::BadOrder { order });
        }
        let len = 1u64 << order;
        Ok(Line {
            start: block - (block % len),
            order,
        })
    }

    /// First block of the line (the hash block).
    pub fn start(&self) -> u64 {
        self.start
    }

    /// The line's order N (the line spans 2^N blocks).
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Number of blocks in the line, 2^order.
    pub fn len(&self) -> u64 {
        1u64 << self.order
    }

    /// Lines are never empty (order ≥ 1); provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of data blocks protected by the line (2^order − 1).
    pub fn data_len(&self) -> u64 {
        self.len() - 1
    }

    /// The block receiving the electrically written hash.
    pub fn hash_block(&self) -> u64 {
        self.start
    }

    /// One past the last block of the line.
    pub fn end(&self) -> u64 {
        self.start + self.len()
    }

    /// Iterator over the protected data blocks (start+1 .. end).
    pub fn data_blocks(&self) -> impl Iterator<Item = u64> {
        self.start + 1..self.end()
    }

    /// Iterator over all blocks including the hash block.
    pub fn blocks(&self) -> impl Iterator<Item = u64> {
        self.start..self.end()
    }

    /// True when `block` falls inside the line.
    pub fn contains(&self, block: u64) -> bool {
        block >= self.start && block < self.end()
    }

    /// True when the two lines share any block.
    pub fn overlaps(&self, other: &Line) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Space overhead of the heated hash: 1 block in 2^order (§8:
    /// "For large N the amount of space wasted is negligible").
    pub fn overhead_fraction(&self) -> f64 {
        1.0 / self.len() as f64
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line[{}..{}, order {}]",
            self.start,
            self.end(),
            self.order
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let line = Line::new(16, 2).unwrap();
        assert_eq!(line.start(), 16);
        assert_eq!(line.len(), 4);
        assert_eq!(line.data_len(), 3);
        assert_eq!(line.hash_block(), 16);
        assert_eq!(line.end(), 20);
        assert_eq!(line.blocks().count(), 4);
        assert_eq!(line.data_blocks().collect::<Vec<_>>(), vec![17, 18, 19]);
        assert!(!line.is_empty());
    }

    #[test]
    fn alignment_enforced() {
        assert!(Line::new(8, 3).is_ok());
        assert!(matches!(
            Line::new(9, 3),
            Err(LineError::Misaligned { start: 9, order: 3 })
        ));
        assert!(Line::new(12, 2).is_ok());
        assert!(Line::new(12, 3).is_err());
    }

    #[test]
    fn order_bounds() {
        assert!(matches!(
            Line::new(0, 0),
            Err(LineError::BadOrder { order: 0 })
        ));
        assert!(Line::new(0, MAX_ORDER).is_ok());
        assert!(Line::new(0, MAX_ORDER + 1).is_err());
    }

    #[test]
    fn containing_rounds_down() {
        let line = Line::containing(13, 3).unwrap();
        assert_eq!(line.start(), 8);
        assert!(line.contains(13));
        let line = Line::containing(16, 3).unwrap();
        assert_eq!(line.start(), 16);
    }

    #[test]
    fn contains_and_overlaps() {
        let a = Line::new(0, 3).unwrap(); // 0..8
        let b = Line::new(8, 3).unwrap(); // 8..16
        let c = Line::new(4, 2).unwrap(); // 4..8
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(a.contains(7));
        assert!(!a.contains(8));
    }

    #[test]
    fn overhead_shrinks_with_order() {
        // §8: 1 block out of 2^N.
        let small = Line::new(0, 1).unwrap();
        let large = Line::new(0, 10).unwrap();
        assert_eq!(small.overhead_fraction(), 0.5);
        assert!((large.overhead_fraction() - 1.0 / 1024.0).abs() < 1e-15);
    }

    #[test]
    fn display_and_errors() {
        assert_eq!(Line::new(8, 2).unwrap().to_string(), "line[8..12, order 2]");
        assert!(!format!("{}", LineError::BadOrder { order: 0 }).is_empty());
        assert!(!format!("{}", LineError::Misaligned { start: 3, order: 2 }).is_empty());
    }
}
