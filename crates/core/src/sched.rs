//! Background scrub scheduling under live foreground traffic.
//!
//! [`crate::scrub::scrub_device`] is an *exclusive* pass: once started it
//! owns the device until every line in its work list is verified. That is
//! the right shape for a dedicated maintenance window, but the paper's
//! tamper-evidence guarantee is only as fresh as the last verification
//! pass — production verified stores therefore verify *continuously*,
//! interleaved with client traffic, the way proxmox-backup's datastore
//! verify tasks run alongside backups. [`ScrubScheduler`] brings that
//! model to the SERO device:
//!
//! * the pass's work list (full or incremental delta, shared with
//!   [`crate::scrub::pass_work_list`]) is consumed in **slices**: short
//!   bursts of line verifies bounded by a *device-time budget*;
//! * foreground I/O always wins: scrub only runs when the host grants it
//!   a slice via [`ScrubScheduler::run_slice`], and every slice ends at a
//!   line boundary, so a foreground request waits at most
//!   `budget_ns` *plus the one line in flight* — never for the rest of
//!   the pass;
//! * a **scheduling quantum** duty-cycles the scrub: at most `budget_ns`
//!   of scrub device time is spent per `quantum_ns` of device time, so
//!   even an idle device keeps capacity in reserve for bursts;
//! * slices are **seek-aware**: each pick verifies the pending line
//!   nearest the sled's current track (the SSTF discipline of disk
//!   schedulers), so a slice neither opens with a cross-device seek nor
//!   strands the next foreground request far from its working set —
//!   without this, the slice's travel dwarfs its budget and background
//!   scrub costs *more* foreground latency than stop-the-world
//!   (`exp_sched` measures exactly that trade-off);
//! * slices can run **under the line-lock discipline**:
//!   [`ScrubScheduler::run_slice_locked`] `try_read`-locks each line on a
//!   [`crate::locks::LineLockTable`] before verifying it, deferring (not
//!   waiting on) any line a foreground writer or auditor holds — the
//!   concurrent foreground core's "scrub never reads a line mid-write"
//!   invariant (see `docs/ARCHITECTURE.md`);
//! * the pass is **pausable, resumable, and cancellable** between
//!   slices. A cancelled pass leaves the device's completed-pass epoch
//!   untouched — only a pass that drained its work list calls
//!   [`SeroDevice::scrub_epoch`] forward, so tamper evidence can never be
//!   masked by a pass that half-ran.
//!
//! Slice-end decisions use an exponentially weighted estimate of the
//! per-line verify cost observed so far: a slice stops *before* starting
//! a line predicted to overrun the budget, rather than after noticing the
//! overrun. The first line of a slice always runs (progress guarantee),
//! so a single line longer than the whole budget still completes —
//! bounded overrun, never livelock.
//!
//! Every slice is recorded in a [`SliceTrace`] (start, end, lines) — the
//! scheduler trace `exp_sched` ships to CI as an artifact — and
//! [`ScrubScheduler::report`] assembles the familiar
//! [`ScrubReport`] so downstream consumers cannot tell a background pass
//! from an exclusive one.
//!
//! # Examples
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_core::line::Line;
//! use sero_core::sched::{SchedConfig, ScrubScheduler, SliceOutcome};
//!
//! let mut dev = SeroDevice::with_blocks(64);
//! for start in [0u64, 8, 16] {
//!     let line = Line::new(start, 3)?;
//!     for pba in line.data_blocks() {
//!         dev.write_block(pba, &[pba as u8; 512])?;
//!     }
//!     dev.heat_line(line, vec![], 0)?;
//! }
//! let mut sched = ScrubScheduler::start(&dev, SchedConfig::default());
//! while !sched.is_complete() {
//!     match sched.run_slice(&mut dev)? {
//!         SliceOutcome::Throttled { resume_at_ns } => {
//!             // An idle host may simply wait the quantum out.
//!             let now = dev.probe().clock().elapsed_ns();
//!             dev.probe_mut().advance_clock((resume_at_ns - now) as u64);
//!         }
//!         _ => {} // foreground work would run here, between slices
//!     }
//! }
//! assert_eq!(sched.report().summary.lines, 3);
//! assert_eq!(dev.scrub_epoch(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::device::{SeroDevice, SeroError};
use crate::line::Line;
use crate::scrub::{pass_work_list, LineScrub, ScrubConfig, ScrubMode, ScrubReport, ScrubSummary};
use crate::tamper::VerifyOutcome;
use core::fmt;

/// Why a [`SchedConfig`] constructor refused its arguments.
///
/// The raw struct keeps its documented `0` sentinels (`budget_ns == 0` =
/// greedy, `quantum_ns == 0` = no duty cycle) for literal construction,
/// but the named constructors validate: a zero passed *by accident* —
/// a miscomputed budget, an unconverted unit — would silently flip the
/// scheduler into a completely different regime, which is exactly the
/// misbehaviour these errors make loud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedConfigError {
    /// `budget_ns == 0` would degenerate to the greedy stop-the-world
    /// pass; ask for [`SchedConfig::greedy`] explicitly instead.
    ZeroBudget,
    /// `quantum_ns == 0` would disable duty-cycling; ask for
    /// [`SchedConfig::slice_budget`] explicitly instead.
    ZeroQuantum,
    /// The per-quantum budget exceeds the quantum itself: the duty cycle
    /// would silently saturate at 100%.
    BudgetExceedsQuantum {
        /// The requested budget.
        budget_ns: u64,
        /// The quantum it does not fit in.
        quantum_ns: u64,
    },
}

impl fmt::Display for SchedConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedConfigError::ZeroBudget => write!(
                f,
                "budget_ns = 0 would mean a greedy stop-the-world pass; \
                 use SchedConfig::greedy() if that is intended"
            ),
            SchedConfigError::ZeroQuantum => write!(
                f,
                "quantum_ns = 0 would disable duty-cycling; \
                 use SchedConfig::slice_budget() if that is intended"
            ),
            SchedConfigError::BudgetExceedsQuantum {
                budget_ns,
                quantum_ns,
            } => write!(
                f,
                "budget of {budget_ns} ns exceeds the {quantum_ns} ns quantum: \
                 the duty cycle would silently saturate at 100%"
            ),
        }
    }
}

impl std::error::Error for SchedConfigError {}

/// Tuning knobs for a background scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Mode and full-pass cadence of the underlying scrub (the `workers`
    /// field is ignored — a background pass verifies in place, serially,
    /// so it can yield to foreground I/O between lines).
    pub scrub: ScrubConfig,
    /// Maximum scrub device time per slice, in nanoseconds. `0` means
    /// unbounded — the *greedy* stop-the-world behaviour a slice then
    /// degenerates to (the whole remaining work list in one slice).
    pub budget_ns: u64,
    /// Scheduling quantum: scrub spends at most [`SchedConfig::budget_ns`]
    /// of device time per `quantum_ns` of device time (no banking across
    /// quanta). `0` disables duty-cycling: every slice gets the full
    /// budget regardless of how recently the previous one ran.
    pub quantum_ns: u64,
}

impl Default for SchedConfig {
    /// An incremental background pass spending at most 2 ms of device
    /// time per 10 ms quantum — a 20% duty cycle with foreground waits
    /// bounded by ~2 ms plus one line.
    fn default() -> SchedConfig {
        SchedConfig {
            scrub: ScrubConfig {
                workers: 1,
                mode: ScrubMode::Incremental,
                full_every: 8,
            },
            budget_ns: 2_000_000,
            quantum_ns: 10_000_000,
        }
    }
}

impl SchedConfig {
    /// A budgeted config spending at most `budget_ns` of scrub device
    /// time per `quantum_ns` of device time.
    ///
    /// # Errors
    ///
    /// [`SchedConfigError`] when either knob is `0` (the sentinels mean
    /// entirely different regimes — see [`SchedConfig::greedy`] and
    /// [`SchedConfig::slice_budget`]) or the budget exceeds the quantum
    /// (a >100% duty cycle).
    pub fn budgeted(budget_ns: u64, quantum_ns: u64) -> Result<SchedConfig, SchedConfigError> {
        if budget_ns == 0 {
            return Err(SchedConfigError::ZeroBudget);
        }
        if quantum_ns == 0 {
            return Err(SchedConfigError::ZeroQuantum);
        }
        if budget_ns > quantum_ns {
            return Err(SchedConfigError::BudgetExceedsQuantum {
                budget_ns,
                quantum_ns,
            });
        }
        Ok(SchedConfig {
            budget_ns,
            quantum_ns,
            ..SchedConfig::default()
        })
    }

    /// A slice-bounded config with *no* duty cycle: every slice may spend
    /// up to `budget_ns`, regardless of how recently the previous one
    /// ran. This bounds the single-request wait (one slice) but not the
    /// scrub's share of device time — callers wanting a duty cycle use
    /// [`SchedConfig::budgeted`].
    ///
    /// # Errors
    ///
    /// [`SchedConfigError::ZeroBudget`] — a zero budget would mean the
    /// greedy pass.
    pub fn slice_budget(budget_ns: u64) -> Result<SchedConfig, SchedConfigError> {
        if budget_ns == 0 {
            return Err(SchedConfigError::ZeroBudget);
        }
        Ok(SchedConfig {
            budget_ns,
            quantum_ns: 0,
            ..SchedConfig::default()
        })
    }

    /// The greedy config: unbounded slices, no duty cycle — the
    /// stop-the-world reference the budgeted scheduler is benchmarked
    /// against in `exp_sched`.
    #[must_use]
    pub fn greedy() -> SchedConfig {
        SchedConfig {
            budget_ns: 0,
            quantum_ns: 0,
            ..SchedConfig::default()
        }
    }
}

/// Lifecycle of a background pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedState {
    /// Accepting slices.
    Running,
    /// Paused between slices; [`ScrubScheduler::resume`] continues.
    Paused,
    /// Cancelled between slices. The completed-pass epoch was *not*
    /// advanced; partial outcomes remain readable.
    Cancelled,
    /// Work list drained; the pass completed and the epoch advanced.
    Complete,
}

/// What one [`ScrubScheduler::run_slice`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceOutcome {
    /// Verified `lines` lines in `device_ns` of device time.
    Ran {
        /// Lines verified in this slice.
        lines: usize,
        /// Device time the slice consumed.
        device_ns: u128,
    },
    /// The current quantum's budget is exhausted; scrub may run again at
    /// `resume_at_ns` on the device clock.
    Throttled {
        /// Device-clock time at which the next quantum opens.
        resume_at_ns: u128,
    },
    /// The pass is paused; nothing ran.
    Paused,
    /// Nothing left to do: the pass already completed or was cancelled.
    Idle,
}

/// One slice of scrub work, for the scheduler trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceTrace {
    /// Device clock when the slice started.
    pub start_ns: u128,
    /// Device clock when the slice ended.
    pub end_ns: u128,
    /// Lines verified in this slice.
    pub lines: usize,
}

/// Point-in-time progress of a background pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedProgress {
    /// Lifecycle state.
    pub state: SchedState,
    /// The epoch this pass will complete as.
    pub epoch: u64,
    /// The mode the pass actually runs in.
    pub mode: ScrubMode,
    /// Lines verified so far.
    pub verified: usize,
    /// Lines still queued.
    pub remaining: usize,
    /// Registered lines the pass skips (covered by the last completed
    /// pass; incremental mode only).
    pub skipped: usize,
    /// Tamper findings so far.
    pub tampered: usize,
    /// Slices run so far.
    pub slices: usize,
    /// Scrub device time consumed so far.
    pub scrub_device_ns: u128,
}

/// A pausable, budget-aware background scrub pass over one device.
///
/// Create with [`ScrubScheduler::start`], then grant slices with
/// [`ScrubScheduler::run_slice`] whenever the device has time to spare —
/// typically between foreground requests. See the module docs for the
/// scheduling model.
#[derive(Debug, Clone)]
pub struct ScrubScheduler {
    config: SchedConfig,
    state: SchedState,
    epoch: u64,
    mode: ScrubMode,
    /// Pending lines, kept sorted by start address; slices pick the line
    /// nearest the sled (see [`ScrubScheduler::run_slice`]).
    work: Vec<Line>,
    skipped: usize,
    outcomes: Vec<LineScrub>,
    tampered: usize,
    start_ns: u128,
    scrub_spent_ns: u128,
    window: u128,
    window_spent_ns: u64,
    avg_line_ns: u64,
    slices: Vec<SliceTrace>,
    throttled_ticks: u64,
}

impl ScrubScheduler {
    /// Plans a background pass over `dev`'s registry: snapshots the work
    /// list (full or incremental delta, with the same
    /// [`ScrubConfig::effective_mode`] fallback rules as
    /// [`crate::scrub::scrub_device`]) without touching the device. Lines
    /// heated after this snapshot are left for the next pass.
    pub fn start(dev: &SeroDevice, config: SchedConfig) -> ScrubScheduler {
        let epoch = dev.scrub_epoch() + 1;
        let mode = config.scrub.effective_mode(epoch, dev.scrub_epoch());
        let work = pass_work_list(dev, mode); // registry order: sorted by start
        let skipped = dev.heated_lines().count() - work.len();
        ScrubScheduler {
            config,
            state: SchedState::Running,
            epoch,
            mode,
            work,
            skipped,
            outcomes: Vec::new(),
            tampered: 0,
            start_ns: dev.probe().clock().elapsed_ns(),
            scrub_spent_ns: 0,
            window: 0,
            window_spent_ns: 0,
            avg_line_ns: 0,
            slices: Vec::new(),
            throttled_ticks: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> SchedConfig {
        self.config
    }

    /// Retunes the per-quantum budget between slices. This is how a
    /// controller re-divides a shared budget while a pass is in flight —
    /// the fleet coordinator ([`crate::fleet::FleetScheduler`]) calls it
    /// every time it re-grants its global budget. The quantum itself is
    /// fixed at start; a raise takes effect in the current window, a cut
    /// cannot reclaim time already spent there.
    ///
    /// # Panics
    ///
    /// Panics on `budget_ns == 0` (a zero budget would silently flip the
    /// pass into the greedy regime — a controller with nothing to grant
    /// simply skips the device's slice instead), and on a budget larger
    /// than a non-zero quantum (the >100% duty cycle
    /// [`SchedConfig::budgeted`] rejects; the classic unit slip). A
    /// quantum of `0` — the [`SchedConfig::slice_budget`] regime — has
    /// no duty cycle, so any non-zero budget is legal there.
    pub fn set_budget_ns(&mut self, budget_ns: u64) {
        assert!(
            budget_ns != 0,
            "a zero budget would mean greedy; skip the slice instead"
        );
        assert!(
            self.config.quantum_ns == 0 || budget_ns <= self.config.quantum_ns,
            "budget of {budget_ns} ns exceeds the {} ns quantum; \
             the duty cycle would silently saturate at 100%",
            self.config.quantum_ns
        );
        self.config.budget_ns = budget_ns;
    }

    /// Lifecycle state.
    pub fn state(&self) -> SchedState {
        self.state
    }

    /// True once the work list drained and the epoch advanced.
    pub fn is_complete(&self) -> bool {
        self.state == SchedState::Complete
    }

    /// Pauses the pass: subsequent slices are no-ops until
    /// [`ScrubScheduler::resume`]. Only a running pass can pause.
    pub fn pause(&mut self) {
        if self.state == SchedState::Running {
            self.state = SchedState::Paused;
        }
    }

    /// Resumes a paused pass.
    pub fn resume(&mut self) {
        if self.state == SchedState::Paused {
            self.state = SchedState::Running;
        }
    }

    /// Cancels the pass between slices. The device's completed-pass epoch
    /// is left untouched — a cancelled pass never counts as coverage, so
    /// the next incremental pass still re-verifies everything this one
    /// did not reach. Partial outcomes remain available via
    /// [`ScrubScheduler::report`].
    pub fn cancel(&mut self) {
        if matches!(self.state, SchedState::Running | SchedState::Paused) {
            self.state = SchedState::Cancelled;
        }
    }

    /// Current progress counters.
    pub fn progress(&self) -> SchedProgress {
        SchedProgress {
            state: self.state,
            epoch: self.epoch,
            mode: self.mode,
            verified: self.outcomes.len(),
            remaining: self.work.len(),
            skipped: self.skipped,
            tampered: self.tampered,
            slices: self.slices.len(),
            scrub_device_ns: self.scrub_spent_ns,
        }
    }

    /// The slices run so far (the scheduler trace).
    pub fn trace(&self) -> &[SliceTrace] {
        &self.slices
    }

    /// How many [`ScrubScheduler::run_slice`] calls were refused because
    /// the quantum's budget was already spent.
    pub fn throttled_ticks(&self) -> u64 {
        self.throttled_ticks
    }

    /// Index of the pending line whose track is nearest `pos` (ties go to
    /// the lower address). The work list is sorted by start address, so a
    /// binary search leaves only the two straddling neighbours to compare.
    ///
    /// # Panics
    ///
    /// Panics on an empty work list — callers check first.
    fn nearest_idx(&self, pos: u64) -> usize {
        let after = self.work.partition_point(|l| l.start() <= pos);
        let candidates = [
            after.checked_sub(1),
            (after < self.work.len()).then_some(after),
        ];
        candidates
            .into_iter()
            .flatten()
            .min_by_key(|&i| self.work[i].hash_block().abs_diff(pos))
            .expect("nearest_idx on an empty work list")
    }

    /// The budget still available in the quantum containing device time
    /// `now_ns` (`u64::MAX` for an unbudgeted pass). Advances the window
    /// bookkeeping as a side effect.
    fn allowance_at(&mut self, now_ns: u128) -> u64 {
        if self.config.budget_ns == 0 {
            return u64::MAX;
        }
        if self.config.quantum_ns == 0 {
            return self.config.budget_ns;
        }
        let window = (now_ns - self.start_ns) / self.config.quantum_ns as u128;
        if window != self.window {
            self.window = window;
            self.window_spent_ns = 0;
        }
        self.config.budget_ns.saturating_sub(self.window_spent_ns)
    }

    /// Runs one budgeted slice: verifies queued lines until the quantum's
    /// remaining budget is (predicted to be) exhausted or the work list
    /// drains, stamping each verified line with the pass epoch. Draining
    /// the work list completes the pass and advances the device's
    /// completed-pass epoch. Call between foreground requests; foreground
    /// I/O is never blocked longer than one slice.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures propagate (a registered line out of
    /// range); tamper findings are data in the outcomes. A failed slice
    /// leaves the scheduler consistent — the failing line stays queued.
    pub fn run_slice(&mut self, dev: &mut SeroDevice) -> Result<SliceOutcome, SeroError> {
        self.run_slice_inner(dev, None)
    }

    /// [`ScrubScheduler::run_slice`] under the line-lock discipline: each
    /// candidate line is `try_read`-locked on `locks` for the duration of
    /// its verification. A line some other holder has write-locked (an
    /// in-flight foreground mutation, an auditor pin) is **deferred** —
    /// it stays queued for a later slice and the slice moves to the next
    /// nearest line — never waited on: the caller already holds the
    /// device, and the ordering discipline (see [`crate::locks`]) forbids
    /// blocking on a line lock from there. A slice whose every remaining
    /// line is contended returns `Ran { lines: 0, .. }` and leaves the
    /// pass incomplete.
    ///
    /// # Errors
    ///
    /// Same contract as [`ScrubScheduler::run_slice`].
    pub fn run_slice_locked(
        &mut self,
        dev: &mut SeroDevice,
        locks: &crate::locks::LineLockTable,
    ) -> Result<SliceOutcome, SeroError> {
        self.run_slice_inner(dev, Some(locks))
    }

    /// Index of the pending line nearest `pos` whose start is not in
    /// `deferred` (`None` when every pending line is deferred). The
    /// binary-search [`ScrubScheduler::nearest_idx`] covers the common
    /// no-contention case; this linear scan only runs once a slice has
    /// actually hit a locked line.
    fn nearest_idx_excluding(&self, pos: u64, deferred: &[u64]) -> Option<usize> {
        if deferred.is_empty() {
            return Some(self.nearest_idx(pos));
        }
        self.work
            .iter()
            .enumerate()
            .filter(|(_, l)| !deferred.contains(&l.start()))
            .min_by_key(|(_, l)| l.hash_block().abs_diff(pos))
            .map(|(i, _)| i)
    }

    fn run_slice_inner(
        &mut self,
        dev: &mut SeroDevice,
        locks: Option<&crate::locks::LineLockTable>,
    ) -> Result<SliceOutcome, SeroError> {
        match self.state {
            SchedState::Paused => return Ok(SliceOutcome::Paused),
            SchedState::Cancelled | SchedState::Complete => return Ok(SliceOutcome::Idle),
            SchedState::Running => {}
        }
        let slice_start = dev.probe().clock().elapsed_ns();
        let allowance = self.allowance_at(slice_start);
        if allowance == 0 {
            self.throttled_ticks += 1;
            let next_window = self.start_ns + (self.window + 1) * self.config.quantum_ns as u128;
            return Ok(SliceOutcome::Throttled {
                resume_at_ns: next_window,
            });
        }

        let mut lines = 0usize;
        let mut failure: Option<SeroError> = None;
        // Lines found write-locked this slice: left queued, skipped by the
        // selection below (only populated on the locked path).
        let mut deferred: Vec<u64> = Vec::new();
        while !self.work.is_empty() {
            let spent = (dev.probe().clock().elapsed_ns() - slice_start) as u64;
            // Progress guarantee: the first line of a slice always runs.
            // After that, stop *before* a line the running cost estimate
            // predicts would overrun the allowance.
            if lines > 0 && spent.saturating_add(self.avg_line_ns) > allowance {
                break;
            }
            // Seek-aware selection: verify the pending line nearest the
            // sled's current track. The first pick of a slice is nearest
            // wherever foreground I/O left the sled — so the slice
            // neither opens with a cross-device seek nor strands the
            // next foreground request far from its working set — and
            // later picks walk outward over adjacent lines.
            let idx = match self.nearest_idx_excluding(dev.probe().position_block(), &deferred) {
                Some(idx) => idx,
                None => break, // every pending line is contended; yield
            };
            let line = self.work[idx];
            // Lock-ordering discipline: already holding the device, so a
            // contended line is deferred, never waited on.
            let _line_guard = match locks {
                Some(table) => match table.try_read(line.start()) {
                    Some(guard) => Some(guard),
                    None => {
                        deferred.push(line.start());
                        continue;
                    }
                },
                None => None,
            };
            let t0 = dev.probe().clock().elapsed_ns();
            let outcome = match dev.verify_line(line) {
                Ok(outcome) => outcome,
                Err(e) => {
                    // The failing line stays queued; the slice still gets
                    // accounted below so the trace matches the outcomes
                    // and the quantum cannot be re-opened by retrying.
                    failure = Some(e);
                    break;
                }
            };
            let line_ns = (dev.probe().clock().elapsed_ns() - t0) as u64;
            self.avg_line_ns = if self.avg_line_ns == 0 {
                line_ns
            } else {
                (3 * self.avg_line_ns + line_ns) / 4
            };
            self.work.remove(idx);
            lines += 1;
            let intact = matches!(outcome, VerifyOutcome::Intact { .. });
            if matches!(outcome, VerifyOutcome::Tampered(_)) {
                self.tampered += 1;
            }
            // Stamp immediately: a flag raised by a refused foreground
            // access *after* this stamp survives it, so suspicious
            // activity mid-pass still reaches the next pass.
            dev.stamp_scrubbed(line, self.epoch, !intact);
            self.outcomes.push(LineScrub { line, outcome });
        }

        let end = dev.probe().clock().elapsed_ns();
        let slice_ns = end - slice_start;
        self.scrub_spent_ns += slice_ns;
        // Charge the whole slice to the window it started in — a slice
        // straddling a quantum boundary cannot bank the overhang.
        self.window_spent_ns = self.window_spent_ns.saturating_add(slice_ns as u64);
        self.slices.push(SliceTrace {
            start_ns: slice_start,
            end_ns: end,
            lines,
        });
        if let Some(e) = failure {
            return Err(e);
        }
        if self.work.is_empty() {
            self.state = SchedState::Complete;
            dev.complete_scrub_pass(self.epoch);
        }
        Ok(SliceOutcome::Ran {
            lines,
            device_ns: slice_ns,
        })
    }

    /// Assembles the pass outcomes into a [`ScrubReport`] — identical in
    /// shape to [`crate::scrub::scrub_device`]'s, with `device_ns` equal
    /// to the scrub time actually consumed (foreground time between
    /// slices is not charged to the scrub). For a cancelled pass this is
    /// the partial report of everything verified before cancellation.
    pub fn report(&self) -> ScrubReport {
        let mut outcomes = self.outcomes.clone();
        outcomes.sort_by_key(|l| l.line.start());
        let mut summary = ScrubSummary {
            workers: 1,
            epoch: self.epoch,
            mode: self.mode,
            skipped: self.skipped,
            device_ns: self.scrub_spent_ns,
            serial_device_ns: self.scrub_spent_ns,
            ..ScrubSummary::default()
        };
        crate::scrub::tally_outcomes(&outcomes, &mut summary);
        ScrubReport { outcomes, summary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub_device;

    const T0: u64 = 1_199_145_600;

    fn heated_device(blocks: u64, order: u32, lines: usize) -> (SeroDevice, Vec<Line>) {
        let mut dev = SeroDevice::with_blocks(blocks);
        let len = 1u64 << order;
        let mut heated = Vec::new();
        for i in 0..lines as u64 {
            let line = Line::new(i * len, order).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &[pba as u8; 512]).unwrap();
            }
            dev.heat_line(line, vec![], T0 + i).unwrap();
            heated.push(line);
        }
        (dev, heated)
    }

    fn drain(sched: &mut ScrubScheduler, dev: &mut SeroDevice) {
        while !sched.is_complete() {
            match sched.run_slice(dev).unwrap() {
                SliceOutcome::Throttled { resume_at_ns } => {
                    let now = dev.probe().clock().elapsed_ns();
                    dev.probe_mut().advance_clock((resume_at_ns - now) as u64);
                }
                SliceOutcome::Ran { .. } => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn budgeted_pass_matches_exclusive_scrub() {
        let (mut dev, lines) = heated_device(128, 3, 8);
        dev.probe_mut()
            .mws(lines[2].start() + 1, &[0xBB; 512])
            .unwrap();
        let mut exclusive_dev = dev.clone();
        let exclusive = scrub_device(&mut exclusive_dev, &ScrubConfig::with_workers(1)).unwrap();

        let mut sched =
            ScrubScheduler::start(&dev, SchedConfig::budgeted(500_000, 2_000_000).unwrap());
        drain(&mut sched, &mut dev);
        let report = sched.report();

        assert_eq!(report.outcomes, exclusive.outcomes);
        assert_eq!(report.summary.tampered, 1);
        assert_eq!(report.summary.lines, 8);
        assert_eq!(dev.scrub_epoch(), 1);
        assert!(
            sched.trace().len() > 1,
            "budget should force several slices"
        );
    }

    #[test]
    fn slices_respect_the_budget() {
        let (mut dev, _) = heated_device(256, 3, 16);
        let budget = 1_000_000u64;
        let mut sched =
            ScrubScheduler::start(&dev, SchedConfig::budgeted(budget, 4_000_000).unwrap());
        drain(&mut sched, &mut dev);
        let max_line = sched
            .trace()
            .iter()
            .map(|s| (s.end_ns - s.start_ns) as u64 / s.lines.max(1) as u64)
            .max()
            .unwrap();
        for slice in sched.trace() {
            let ns = (slice.end_ns - slice.start_ns) as u64;
            assert!(
                ns <= budget + max_line,
                "slice of {ns} ns overran budget {budget} + one line {max_line}"
            );
        }
    }

    #[test]
    fn quantum_throttles_back_to_back_slices() {
        let (mut dev, _) = heated_device(128, 3, 8);
        let config = SchedConfig::budgeted(500_000, 50_000_000).unwrap();
        let mut sched = ScrubScheduler::start(&dev, config);
        // First slice runs; an immediate second ask in the same quantum is
        // refused with the next window's opening time.
        assert!(matches!(
            sched.run_slice(&mut dev).unwrap(),
            SliceOutcome::Ran { .. }
        ));
        let now = dev.probe().clock().elapsed_ns();
        match sched.run_slice(&mut dev).unwrap() {
            SliceOutcome::Throttled { resume_at_ns } => {
                assert!(resume_at_ns > now);
                dev.probe_mut().advance_clock((resume_at_ns - now) as u64);
            }
            other => panic!("expected throttle, got {other:?}"),
        }
        assert_eq!(sched.throttled_ticks(), 1);
        assert!(matches!(
            sched.run_slice(&mut dev).unwrap(),
            SliceOutcome::Ran { .. }
        ));
    }

    #[test]
    fn greedy_pass_runs_in_one_slice() {
        let (mut dev, _) = heated_device(128, 3, 8);
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::greedy());
        match sched.run_slice(&mut dev).unwrap() {
            SliceOutcome::Ran { lines, .. } => assert_eq!(lines, 8),
            other => panic!("greedy should run everything, got {other:?}"),
        }
        assert!(sched.is_complete());
        assert_eq!(dev.scrub_epoch(), 1);
    }

    #[test]
    fn pause_and_resume_between_slices() {
        let (mut dev, _) = heated_device(128, 3, 8);
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::slice_budget(500_000).unwrap());
        sched.run_slice(&mut dev).unwrap();
        let verified_at_pause = sched.progress().verified;
        sched.pause();
        assert_eq!(sched.run_slice(&mut dev).unwrap(), SliceOutcome::Paused);
        assert_eq!(sched.progress().verified, verified_at_pause);
        sched.resume();
        drain(&mut sched, &mut dev);
        assert_eq!(sched.progress().verified, 8);
    }

    #[test]
    fn cancelled_pass_leaves_completed_epoch_untouched() {
        // The regression this pins: a pass cancelled mid-shard must not
        // advance (or reset) the device's completed-pass counter, and the
        // lines it never reached must still be due in the next pass.
        let (mut dev, _) = heated_device(128, 3, 8);
        let full = scrub_device(&mut dev, &ScrubConfig::with_workers(2)).unwrap();
        assert_eq!(full.summary.epoch, 1);

        // Heat a delta of two fresh lines, then start an incremental pass
        // and cancel it after the first slice.
        let len = 1u64 << 3;
        let mut delta = Vec::new();
        for i in 8..10u64 {
            let line = Line::new(i * len, 3).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &[pba as u8; 512]).unwrap();
            }
            dev.heat_line(line, vec![], T0).unwrap();
            delta.push(line);
        }
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::slice_budget(1).unwrap());
        match sched.run_slice(&mut dev).unwrap() {
            SliceOutcome::Ran { lines, .. } => assert_eq!(lines, 1, "tiny budget: one line"),
            other => panic!("{other:?}"),
        }
        sched.cancel();
        assert_eq!(sched.state(), SchedState::Cancelled);
        assert_eq!(sched.run_slice(&mut dev).unwrap(), SliceOutcome::Idle);

        // The epoch still says "one completed pass" — the cancelled pass
        // neither advanced nor reset it.
        assert_eq!(dev.scrub_epoch(), 1);
        // The partial report names exactly the one verified line.
        let partial = sched.report();
        assert_eq!(partial.summary.lines, 1);
        assert_eq!(partial.summary.epoch, 2);
        let verified = partial.outcomes[0].line;
        assert!(delta.contains(&verified));

        // A follow-up incremental pass still covers the unreached delta
        // line (and skips the 8 lines epoch 1 covered plus the one the
        // cancelled pass stamped).
        let unreached = *delta.iter().find(|&&l| l != verified).unwrap();
        let next = scrub_device(&mut dev, &ScrubConfig::incremental(1)).unwrap();
        assert_eq!(next.summary.epoch, 2);
        assert_eq!(next.summary.lines, 1);
        assert_eq!(next.outcomes[0].line, unreached);
    }

    #[test]
    fn slices_verify_the_line_nearest_the_sled() {
        let (mut dev, lines) = heated_device(256, 3, 16);
        // Foreground leaves the sled near the high end of the population.
        dev.probe_mut().park_at(lines[13].start() + 2);
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::slice_budget(1).unwrap());
        sched.run_slice(&mut dev).unwrap();
        // `outcomes` is in verification order until report() sorts it.
        assert_eq!(sched.outcomes[0].line, lines[13]);
        // The next slice walks outward from where verification left off.
        sched.run_slice(&mut dev).unwrap();
        let second = sched.outcomes[1].line;
        assert!(second == lines[12] || second == lines[14], "{second}");
        drain(&mut sched, &mut dev);
        assert_eq!(sched.report().summary.lines, 16, "SSTF still drains all");
    }

    #[test]
    fn empty_registry_completes_immediately() {
        let mut dev = SeroDevice::with_blocks(16);
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::default());
        match sched.run_slice(&mut dev).unwrap() {
            SliceOutcome::Ran { lines, .. } => assert_eq!(lines, 0),
            other => panic!("{other:?}"),
        }
        assert!(sched.is_complete());
        assert_eq!(dev.scrub_epoch(), 1);
        assert!(sched.report().summary.is_clean());
    }

    #[test]
    fn flag_raised_after_stamp_survives_the_pass() {
        let (mut dev, _) = heated_device(128, 3, 8);
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::slice_budget(1).unwrap());
        // Verify (and stamp) one line…
        sched.run_slice(&mut dev).unwrap();
        assert_eq!(sched.progress().verified, 1);
        let stamped = sched.report().outcomes[0].line;
        // …then a refused foreground write flags it mid-pass.
        assert!(dev.write_block(stamped.start() + 1, &[0u8; 512]).is_err());
        drain(&mut sched, &mut dev);
        // The flag survived pass completion: the next incremental pass
        // re-verifies exactly that line.
        let next = scrub_device(&mut dev, &ScrubConfig::incremental(1)).unwrap();
        assert_eq!(next.summary.lines, 1);
        assert_eq!(next.outcomes[0].line, stamped);
    }

    #[test]
    fn mid_pass_heats_are_left_for_the_next_pass() {
        let (mut dev, _) = heated_device(256, 3, 8);
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::slice_budget(500_000).unwrap());
        sched.run_slice(&mut dev).unwrap();
        // A foreground heat lands while the pass is mid-flight.
        let line = Line::new(8 * 8, 3).unwrap();
        for pba in line.data_blocks() {
            dev.write_block(pba, &[pba as u8; 512]).unwrap();
        }
        dev.heat_line(line, vec![], T0).unwrap();
        drain(&mut sched, &mut dev);
        assert_eq!(sched.report().summary.lines, 8, "snapshot work list only");
        // The new line is due in the next pass.
        let next = scrub_device(&mut dev, &ScrubConfig::incremental(1)).unwrap();
        assert_eq!(next.summary.lines, 1);
        assert_eq!(next.outcomes[0].line, line);
    }

    #[test]
    fn budgeted_rejects_degenerate_knobs() {
        assert_eq!(
            SchedConfig::budgeted(0, 1_000_000),
            Err(SchedConfigError::ZeroBudget)
        );
        assert_eq!(
            SchedConfig::budgeted(1_000_000, 0),
            Err(SchedConfigError::ZeroQuantum)
        );
        assert_eq!(
            SchedConfig::budgeted(2_000_000, 1_000_000),
            Err(SchedConfigError::BudgetExceedsQuantum {
                budget_ns: 2_000_000,
                quantum_ns: 1_000_000,
            })
        );
        assert_eq!(
            SchedConfig::slice_budget(0),
            Err(SchedConfigError::ZeroBudget)
        );
        // The boundary case — a 100% duty cycle — is legal.
        let full = SchedConfig::budgeted(1_000_000, 1_000_000).unwrap();
        assert_eq!((full.budget_ns, full.quantum_ns), (1_000_000, 1_000_000));
        // Every error renders a non-empty explanation.
        for err in [
            SchedConfigError::ZeroBudget,
            SchedConfigError::ZeroQuantum,
            SchedConfigError::BudgetExceedsQuantum {
                budget_ns: 2,
                quantum_ns: 1,
            },
        ] {
            assert!(!format!("{err}").is_empty());
        }
    }

    #[test]
    fn retuned_budget_takes_effect_between_slices() {
        let (mut dev, _) = heated_device(256, 3, 16);
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::slice_budget(1).unwrap());
        sched.run_slice(&mut dev).unwrap(); // one line on the tiny budget
        assert_eq!(sched.progress().verified, 1);
        // Retune generously: the next slice drains everything left.
        sched.set_budget_ns(u64::MAX);
        match sched.run_slice(&mut dev).unwrap() {
            SliceOutcome::Ran { lines, .. } => assert_eq!(lines, 15),
            other => panic!("{other:?}"),
        }
        assert!(sched.is_complete());
    }

    #[test]
    #[should_panic(expected = "zero budget")]
    fn retuning_to_zero_panics() {
        let (dev, _) = heated_device(64, 3, 2);
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::default());
        sched.set_budget_ns(0);
    }

    #[test]
    fn locked_slices_match_unlocked_when_uncontended() {
        let table = crate::locks::LineLockTable::new();
        let (mut locked_dev, _) = heated_device(256, 3, 12);
        let (mut plain_dev, _) = heated_device(256, 3, 12);
        let config = SchedConfig::slice_budget(2_000_000).unwrap();
        let mut locked = ScrubScheduler::start(&locked_dev, config);
        let mut plain = ScrubScheduler::start(&plain_dev, config);
        while !locked.is_complete() {
            locked.run_slice_locked(&mut locked_dev, &table).unwrap();
        }
        drain(&mut plain, &mut plain_dev);
        assert_eq!(locked.report().outcomes, plain.report().outcomes);
        assert_eq!(
            locked_dev.probe().clock().elapsed_ns(),
            plain_dev.probe().clock().elapsed_ns(),
            "uncontended locking must not change device time"
        );
    }

    #[test]
    fn contended_line_is_deferred_not_waited_on() {
        let table = crate::locks::LineLockTable::new();
        let (mut dev, lines) = heated_device(256, 3, 4);
        let pinned = lines[1];
        let guard = table.write(pinned.start());
        let mut sched = ScrubScheduler::start(&dev, SchedConfig::greedy());

        // The greedy slice must verify everything *except* the pinned line
        // and return without blocking on it.
        match sched.run_slice_locked(&mut dev, &table).unwrap() {
            SliceOutcome::Ran { lines: n, .. } => assert_eq!(n, 3),
            other => panic!("{other:?}"),
        }
        assert!(
            !sched.is_complete(),
            "the deferred line keeps the pass open"
        );
        assert_eq!(sched.progress().remaining, 1);

        // With every remaining line contended, a slice yields empty-handed.
        match sched.run_slice_locked(&mut dev, &table).unwrap() {
            SliceOutcome::Ran { lines: n, .. } => assert_eq!(n, 0),
            other => panic!("{other:?}"),
        }

        // Once the writer drops, the next slice finishes the pass.
        drop(guard);
        match sched.run_slice_locked(&mut dev, &table).unwrap() {
            SliceOutcome::Ran { lines: n, .. } => assert_eq!(n, 1),
            other => panic!("{other:?}"),
        }
        assert!(sched.is_complete());
        assert_eq!(dev.scrub_epoch(), 1);
        let record = dev.heated_lines().find(|r| r.line == pinned).unwrap();
        assert_eq!(record.verified_epoch, 1, "deferred line still got covered");
    }

    #[test]
    #[should_panic(expected = "saturate at 100%")]
    fn retuning_past_the_quantum_panics() {
        // The µs-for-ns unit slip SchedConfig::budgeted rejects must be
        // just as loud when it arrives through a mid-pass retune.
        let (dev, _) = heated_device(64, 3, 2);
        let mut sched =
            ScrubScheduler::start(&dev, SchedConfig::budgeted(1_000_000, 10_000_000).unwrap());
        sched.set_budget_ns(10_000_001);
    }
}
