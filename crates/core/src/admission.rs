//! Sharded actuator queues and the admission scheduler — the concurrent
//! foreground core.
//!
//! A single sled serves every request, so "concurrency" on a SERO device
//! can never mean parallel head movement; it means **queue depth**: while
//! one request is in flight, others arrive, and a scheduler that sees the
//! whole queue can serve it in far less device time than first-come
//! first-served. This module supplies that machinery to `sero-fs`'s
//! combiner (and anything else driving a [`SeroDevice`]):
//!
//! * [`RegionMap`] — divides the medium into fixed-span regions, one
//!   staging queue per region (held inside [`AdmissionQueues`]).
//! * [`AdmissionQueues::submit`] — stages a foreground op ([`FgOp`]) on
//!   its region's queue and hands back a [`Ticket`].
//! * [`AdmissionQueues::take_batch`] — drains every queue in one elevator
//!   sweep starting from the region under the sled. **The batch order is
//!   the serialized schedule**: executing the batch is, by construction,
//!   equivalent to executing its ops one at a time in exactly that order.
//! * [`AdmissionQueues::execute_batch`] — runs a batch, merging runs of
//!   same-kind ops into the extent/escan bulk paths: consecutive reads
//!   coalesce into one sorted, deduplicated sweep
//!   ([`SeroDevice::read_blocks_sweep`]), conflict-free writes into one
//!   write sweep, consecutive heats into one [`SeroDevice::heat_lines`]
//!   batch (two sled trips however many lines).
//!
//! # Why merging preserves the serialized schedule
//!
//! Only *consecutive same-kind* ops merge, so cross-kind ordering (a read
//! after a write, a verify after a heat) is untouched. Within a merged
//! group: reads commute; writes merge only while their targets are
//! disjoint (a repeated address splits the group at the conflict, keeping
//! last-writer-wins); heats ride [`SeroDevice::heat_lines`], whose
//! batching is itself equivalent to the serial loop. Protocol violations
//! (a read touching a hash block, a write into a heated line) are
//! screened per-op before any merge and executed individually, so their
//! error *and* their flag-the-line side effect land exactly as the serial
//! schedule would have landed them. If a merged operation fails mid-sweep
//! the group falls back to per-op execution — magnetic rewrites are
//! idempotent, so the fallback converges on the serial outcome. The
//! `admission_props` proptests pin all of this: arbitrary op mixes,
//! results and tamper evidence byte-identical to the serial schedule.
//!
//! # Examples
//!
//! ```
//! use sero_core::admission::{AdmissionQueues, FgOp, FgResult};
//! use sero_core::device::SeroDevice;
//!
//! let mut dev = SeroDevice::with_blocks(64);
//! dev.write_block(3, &[7u8; 512])?;
//! let mut q = AdmissionQueues::new(64, 4);
//! let a = q.submit(FgOp::Read { pbas: vec![3] });
//! let b = q.submit(FgOp::Read { pbas: vec![40] });
//! let sled = q.region_map().region_of(dev.probe().position_block());
//! let batch = q.take_batch(sled);
//! let results = q.execute_batch(&mut dev, batch);
//! assert_eq!(results.len(), 2);
//! assert!(matches!(&results[0], (t, FgResult::Data(d)) if *t == a && d[0][0] == 7));
//! assert!(matches!(&results[1], (t, _) if *t == b));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::device::{SeroDevice, SeroError};
use crate::layout::HashBlockPayload;
use crate::line::Line;
use crate::tamper::VerifyOutcome;
use sero_probe::sector::SECTOR_DATA_BYTES;
use std::collections::{HashMap, VecDeque};

/// Identifies one submitted op; results come back as `(Ticket, FgResult)`.
pub type Ticket = u64;

/// One staged write: its ticket, target addresses, and sector payloads
/// (`data[i]` goes to `pbas[i]`).
type StagedWrite = (Ticket, Vec<u64>, Vec<[u8; SECTOR_DATA_BYTES]>);

/// A foreground operation staged for admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FgOp {
    /// Read the given blocks (returned in request order).
    Read {
        /// Target addresses, in the order the caller wants them back.
        pbas: Vec<u64>,
    },
    /// Write `data[i]` to `pbas[i]`.
    Write {
        /// Target addresses.
        pbas: Vec<u64>,
        /// One sector payload per address.
        data: Vec<[u8; SECTOR_DATA_BYTES]>,
    },
    /// Verify a heated line.
    Verify {
        /// The line to verify.
        line: Line,
    },
    /// Heat a line (freeze it read-only with a burned hash).
    Heat {
        /// The line to heat.
        line: Line,
        /// Metadata for the hash block.
        metadata: Vec<u8>,
        /// Timestamp for the hash block.
        timestamp: u64,
    },
}

impl FgOp {
    /// The address that decides which region queue stages this op.
    fn anchor(&self) -> u64 {
        match self {
            FgOp::Read { pbas } => pbas.first().copied().unwrap_or(0),
            FgOp::Write { pbas, .. } => pbas.first().copied().unwrap_or(0),
            FgOp::Verify { line } => line.start(),
            FgOp::Heat { line, .. } => line.start(),
        }
    }
}

/// The outcome of one admitted op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FgResult {
    /// Sectors read, in the op's request order.
    Data(Vec<[u8; SECTOR_DATA_BYTES]>),
    /// The write landed.
    Written,
    /// The verification verdict (tamper findings are data, not errors).
    Verified(VerifyOutcome),
    /// The line was heated; its decoded hash-block payload.
    Heated(HashBlockPayload),
    /// The op failed with a protocol or device error.
    Failed(SeroError),
}

/// Divides `blocks` into `regions` fixed-span regions — one staging queue
/// (conceptually: one sled neighbourhood) per region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionMap {
    blocks: u64,
    regions: u32,
    span: u64,
}

impl RegionMap {
    /// A map of `regions` equal spans over a `blocks`-block device.
    ///
    /// # Panics
    ///
    /// Panics on zero blocks or zero regions — caller bugs, not device
    /// conditions.
    pub fn new(blocks: u64, regions: u32) -> RegionMap {
        assert!(blocks > 0, "a region map needs a non-empty device");
        assert!(regions > 0, "a region map needs at least one region");
        let regions = regions.min(u32::try_from(blocks).unwrap_or(u32::MAX));
        RegionMap {
            blocks,
            regions,
            span: blocks.div_ceil(regions as u64),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> u32 {
        self.regions
    }

    /// Blocks per region (the last region may be shorter).
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The region containing `pba` (out-of-range addresses clamp to the
    /// last region; range errors surface at execution, not staging).
    pub fn region_of(&self, pba: u64) -> u32 {
        ((pba.min(self.blocks - 1)) / self.span) as u32
    }
}

/// Counters describing what admission merged — the bench's evidence that
/// queue depth actually turned into bulk transfers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Ops staged via [`AdmissionQueues::submit`].
    pub submitted: u64,
    /// Ops executed to completion.
    pub executed: u64,
    /// Batches drained.
    pub batches: u64,
    /// Read ops that shared a coalesced sweep with at least one other.
    pub reads_merged: u64,
    /// Write ops that shared a coalesced sweep with at least one other.
    pub writes_merged: u64,
    /// Heat ops that shared a [`SeroDevice::heat_lines`] batch.
    pub heats_merged: u64,
    /// Blocks that were requested more than once in a coalesced read and
    /// transferred only once.
    pub blocks_deduped: u64,
    /// Merged groups that fell back to per-op execution after a mid-sweep
    /// failure.
    pub fallbacks: u64,
}

/// Per-region staging queues plus the admission scheduler that drains and
/// merges them. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct AdmissionQueues {
    map: RegionMap,
    queues: Vec<VecDeque<(Ticket, FgOp)>>,
    next_ticket: Ticket,
    pending: usize,
    stats: AdmissionStats,
}

impl AdmissionQueues {
    /// Queues for a `blocks`-block device sharded into `regions` regions.
    pub fn new(blocks: u64, regions: u32) -> AdmissionQueues {
        let map = RegionMap::new(blocks, regions);
        AdmissionQueues {
            map,
            queues: (0..map.regions()).map(|_| VecDeque::new()).collect(),
            next_ticket: 0,
            pending: 0,
            stats: AdmissionStats::default(),
        }
    }

    /// The region map in force.
    pub fn region_map(&self) -> &RegionMap {
        &self.map
    }

    /// Ops staged and not yet taken.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Merge counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Stages `op` on its region's queue and returns its ticket.
    pub fn submit(&mut self, op: FgOp) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let region = self.map.region_of(op.anchor()) as usize;
        self.queues[region].push_back((ticket, op));
        self.pending += 1;
        self.stats.submitted += 1;
        ticket
    }

    /// Drains every staged op in one elevator sweep: regions from
    /// `start_region` upward, wrapping to the low regions last; FIFO
    /// within a region. The returned order **is** the serialized schedule
    /// the batch's execution is equivalent to.
    pub fn take_batch(&mut self, start_region: u32) -> Vec<(Ticket, FgOp)> {
        let n = self.queues.len();
        let start = (start_region as usize).min(n - 1);
        let mut batch = Vec::with_capacity(self.pending);
        for i in 0..n {
            let region = (start + i) % n;
            batch.extend(self.queues[region].drain(..));
        }
        self.pending = 0;
        if !batch.is_empty() {
            self.stats.batches += 1;
        }
        batch
    }

    /// Executes `batch` against `dev`, merging runs of same-kind ops into
    /// bulk transfers, and returns `(ticket, result)` in schedule order.
    /// Results (and every registry side effect: flags, heats, verified
    /// epochs) are equivalent to executing the ops one at a time in batch
    /// order.
    pub fn execute_batch(
        &mut self,
        dev: &mut SeroDevice,
        batch: Vec<(Ticket, FgOp)>,
    ) -> Vec<(Ticket, FgResult)> {
        let mut out = Vec::with_capacity(batch.len());
        let mut reads: Vec<(Ticket, Vec<u64>)> = Vec::new();
        let mut writes: Vec<StagedWrite> = Vec::new();
        let mut heats: Vec<(Ticket, Line, Vec<u8>, u64)> = Vec::new();

        for (ticket, op) in batch {
            if !matches!(op, FgOp::Read { .. }) {
                self.flush_reads(dev, &mut reads, &mut out);
            }
            if !matches!(op, FgOp::Write { .. }) {
                self.flush_writes(dev, &mut writes, &mut out);
            }
            if !matches!(op, FgOp::Heat { .. }) {
                self.flush_heats(dev, &mut heats, &mut out);
            }
            match op {
                FgOp::Read { pbas } => reads.push((ticket, pbas)),
                FgOp::Write { pbas, data } => writes.push((ticket, pbas, data)),
                FgOp::Heat {
                    line,
                    metadata,
                    timestamp,
                } => heats.push((ticket, line, metadata, timestamp)),
                FgOp::Verify { line } => {
                    let result = match dev.verify_line(line) {
                        Ok(outcome) => FgResult::Verified(outcome),
                        Err(e) => FgResult::Failed(e),
                    };
                    out.push((ticket, result));
                    self.stats.executed += 1;
                }
            }
        }
        self.flush_reads(dev, &mut reads, &mut out);
        self.flush_writes(dev, &mut writes, &mut out);
        self.flush_heats(dev, &mut heats, &mut out);
        out
    }

    /// Coalesces a run of reads into one sorted, deduplicated sweep.
    /// Protocol violators (hash-block touches) run individually first so
    /// their flag side effects match the serial schedule.
    fn flush_reads(
        &mut self,
        dev: &mut SeroDevice,
        group: &mut Vec<(Ticket, Vec<u64>)>,
        out: &mut Vec<(Ticket, FgResult)>,
    ) {
        let group = std::mem::take(group);
        let mut clean: Vec<(Ticket, Vec<u64>)> = Vec::with_capacity(group.len());
        for (ticket, pbas) in group {
            let violates = pbas
                .iter()
                .any(|&p| dev.line_of(p).is_some_and(|l| l.hash_block() == p));
            if violates {
                out.push((ticket, read_one(dev, &pbas)));
                self.stats.executed += 1;
            } else {
                clean.push((ticket, pbas));
            }
        }
        match clean.len() {
            0 => {}
            1 => {
                let (ticket, pbas) = clean.pop().expect("len checked");
                out.push((ticket, read_one(dev, &pbas)));
                self.stats.executed += 1;
            }
            _ => {
                let mut union: Vec<u64> =
                    clean.iter().flat_map(|(_, p)| p.iter().copied()).collect();
                let requested = union.len() as u64;
                union.sort_unstable();
                union.dedup();
                self.stats.blocks_deduped += requested - union.len() as u64;
                match dev.read_blocks_sweep(&union) {
                    Ok(sectors) => {
                        let by_pba: HashMap<u64, [u8; SECTOR_DATA_BYTES]> =
                            union.iter().copied().zip(sectors).collect();
                        for (ticket, pbas) in clean {
                            let data = pbas.iter().map(|p| by_pba[p]).collect();
                            out.push((ticket, FgResult::Data(data)));
                            self.stats.executed += 1;
                            self.stats.reads_merged += 1;
                        }
                    }
                    Err(_) => {
                        // Re-run per op so each reports the error (or data)
                        // the serial schedule would have; reads don't mutate,
                        // so the retry is free of side effects.
                        self.stats.fallbacks += 1;
                        for (ticket, pbas) in clean {
                            out.push((ticket, read_one(dev, &pbas)));
                            self.stats.executed += 1;
                        }
                    }
                }
            }
        }
    }

    /// Coalesces a run of writes into conflict-free sweeps. Protocol
    /// violators (targets inside heated lines) run individually first;
    /// a repeated target address splits the group at the conflict so
    /// last-writer-wins survives the merge.
    fn flush_writes(
        &mut self,
        dev: &mut SeroDevice,
        group: &mut Vec<StagedWrite>,
        out: &mut Vec<(Ticket, FgResult)>,
    ) {
        let group = std::mem::take(group);
        let mut clean: Vec<StagedWrite> = Vec::new();
        let mut taken: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (ticket, pbas, data) in group {
            let violates = pbas.iter().any(|&p| dev.line_of(p).is_some());
            if violates {
                out.push((ticket, write_one(dev, &pbas, &data)));
                self.stats.executed += 1;
                continue;
            }
            if pbas.iter().any(|p| taken.contains(p)) {
                self.flush_write_subgroup(dev, std::mem::take(&mut clean), out);
                taken.clear();
            }
            taken.extend(pbas.iter().copied());
            clean.push((ticket, pbas, data));
        }
        self.flush_write_subgroup(dev, clean, out);
    }

    fn flush_write_subgroup(
        &mut self,
        dev: &mut SeroDevice,
        clean: Vec<StagedWrite>,
        out: &mut Vec<(Ticket, FgResult)>,
    ) {
        match clean.len() {
            0 => {}
            1 => {
                let (ticket, pbas, data) = clean.into_iter().next().expect("len checked");
                out.push((ticket, write_one(dev, &pbas, &data)));
                self.stats.executed += 1;
            }
            _ => {
                let mut pairs: Vec<(u64, [u8; SECTOR_DATA_BYTES])> = clean
                    .iter()
                    .flat_map(|(_, pbas, data)| pbas.iter().copied().zip(data.iter().copied()))
                    .collect();
                pairs.sort_unstable_by_key(|&(p, _)| p);
                let pbas: Vec<u64> = pairs.iter().map(|&(p, _)| p).collect();
                let data: Vec<[u8; SECTOR_DATA_BYTES]> = pairs.iter().map(|&(_, d)| d).collect();
                match dev.write_blocks_sweep(&pbas, &data) {
                    Ok(()) => {
                        for (ticket, ..) in clean {
                            out.push((ticket, FgResult::Written));
                            self.stats.executed += 1;
                            self.stats.writes_merged += 1;
                        }
                    }
                    Err(_) => {
                        // Magnetic rewrites are idempotent: re-running each
                        // op serially converges on the serial schedule's
                        // final state and per-op results.
                        self.stats.fallbacks += 1;
                        for (ticket, pbas, data) in clean {
                            out.push((ticket, write_one(dev, &pbas, &data)));
                            self.stats.executed += 1;
                        }
                    }
                }
            }
        }
    }

    /// Runs a group of heats through [`SeroDevice::heat_lines`] — two sled
    /// trips for the whole group, per-op results in group order.
    fn flush_heats(
        &mut self,
        dev: &mut SeroDevice,
        group: &mut Vec<(Ticket, Line, Vec<u8>, u64)>,
        out: &mut Vec<(Ticket, FgResult)>,
    ) {
        let group = std::mem::take(group);
        if group.is_empty() {
            return;
        }
        let merged = group.len() > 1;
        let tickets: Vec<Ticket> = group.iter().map(|&(t, ..)| t).collect();
        let requests: Vec<(Line, Vec<u8>, u64)> = group
            .into_iter()
            .map(|(_, line, metadata, timestamp)| (line, metadata, timestamp))
            .collect();
        for (ticket, result) in tickets.into_iter().zip(dev.heat_lines(requests)) {
            let result = match result {
                Ok(payload) => FgResult::Heated(payload),
                Err(e) => FgResult::Failed(e),
            };
            out.push((ticket, result));
            self.stats.executed += 1;
            if merged {
                self.stats.heats_merged += 1;
            }
        }
    }
}

fn read_one(dev: &mut SeroDevice, pbas: &[u64]) -> FgResult {
    match dev.read_blocks(pbas) {
        Ok(sectors) => FgResult::Data(sectors),
        Err(e) => FgResult::Failed(e),
    }
}

fn write_one(dev: &mut SeroDevice, pbas: &[u64], data: &[[u8; SECTOR_DATA_BYTES]]) -> FgResult {
    match dev.write_blocks(pbas, data) {
        Ok(()) => FgResult::Written,
        Err(e) => FgResult::Failed(e),
    }
}

/// Executes `ops` strictly one at a time in order — the reference
/// serialized schedule the admission path is proven equivalent to (and
/// benchmarked against).
pub fn execute_serial(dev: &mut SeroDevice, ops: &[FgOp]) -> Vec<FgResult> {
    ops.iter()
        .map(|op| match op.clone() {
            FgOp::Read { pbas } => read_one(dev, &pbas),
            FgOp::Write { pbas, data } => write_one(dev, &pbas, &data),
            FgOp::Verify { line } => match dev.verify_line(line) {
                Ok(outcome) => FgResult::Verified(outcome),
                Err(e) => FgResult::Failed(e),
            },
            FgOp::Heat {
                line,
                metadata,
                timestamp,
            } => match dev.heat_line(line, metadata, timestamp) {
                Ok(payload) => FgResult::Heated(payload),
                Err(e) => FgResult::Failed(e),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(seed: u8) -> [u8; SECTOR_DATA_BYTES] {
        let mut d = [0u8; SECTOR_DATA_BYTES];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(13).wrapping_add(seed);
        }
        d
    }

    /// A device with two heated lines (at 16 and 32, order 2) and data in
    /// the low WMRM blocks.
    fn staged_device() -> SeroDevice {
        let mut dev = SeroDevice::with_blocks(128);
        for pba in 0..8 {
            dev.write_block(pba, &pattern(pba as u8)).unwrap();
        }
        for start in [16u64, 32] {
            let line = Line::new(start, 2).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &pattern(start as u8)).unwrap();
            }
            dev.heat_line(line, vec![start as u8], start).unwrap();
        }
        dev
    }

    fn drain(q: &mut AdmissionQueues, dev: &mut SeroDevice) -> Vec<(Ticket, FgResult)> {
        let start = q.region_map().region_of(dev.probe().position_block());
        let batch = q.take_batch(start);
        q.execute_batch(dev, batch)
    }

    #[test]
    fn tickets_come_back_in_schedule_order_with_results() {
        let mut dev = staged_device();
        let mut q = AdmissionQueues::new(128, 4);
        let r = q.submit(FgOp::Read { pbas: vec![0, 1] });
        let w = q.submit(FgOp::Write {
            pbas: vec![9],
            data: vec![pattern(99)],
        });
        let v = q.submit(FgOp::Verify {
            line: Line::new(16, 2).unwrap(),
        });
        let results = drain(&mut q, &mut dev);
        assert_eq!(results.len(), 3);
        let by_ticket: HashMap<Ticket, &FgResult> = results.iter().map(|(t, r)| (*t, r)).collect();
        assert!(matches!(by_ticket[&r], FgResult::Data(d) if d.len() == 2));
        assert_eq!(by_ticket[&w], &FgResult::Written);
        assert!(
            matches!(
                by_ticket[&v],
                FgResult::Verified(VerifyOutcome::Intact { .. })
            ),
            "{:?}",
            by_ticket[&v]
        );
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn coalesced_reads_match_serial_and_dedup_hot_blocks() {
        let ops = vec![
            FgOp::Read {
                pbas: vec![0, 1, 2],
            },
            FgOp::Read {
                pbas: vec![1, 2, 3],
            },
            FgOp::Read { pbas: vec![5, 0] },
        ];
        let mut serial_dev = staged_device();
        let serial = execute_serial(&mut serial_dev, &ops);

        let mut dev = staged_device();
        let mut q = AdmissionQueues::new(128, 4);
        for op in &ops {
            q.submit(op.clone());
        }
        let batch = q.take_batch(0);
        let merged: Vec<FgResult> = q
            .execute_batch(&mut dev, batch)
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(merged, serial);
        assert_eq!(q.stats().reads_merged, 3);
        assert_eq!(q.stats().blocks_deduped, 3, "1, 2 and 0 repeat");
    }

    #[test]
    fn hash_block_read_is_screened_and_still_flags_the_line() {
        let mut dev = staged_device();
        let line = Line::new(16, 2).unwrap();
        let mut q = AdmissionQueues::new(128, 4);
        let bad = q.submit(FgOp::Read {
            pbas: vec![line.hash_block()],
        });
        let good = q.submit(FgOp::Read { pbas: vec![0] });
        let results = drain(&mut q, &mut dev);
        let by_ticket: HashMap<Ticket, &FgResult> = results.iter().map(|(t, r)| (*t, r)).collect();
        assert!(matches!(
            by_ticket[&bad],
            FgResult::Failed(SeroError::HashBlockAccess { .. })
        ));
        assert!(matches!(by_ticket[&good], FgResult::Data(_)));
        let record = dev.heated_lines().find(|r| r.line == line).unwrap();
        assert!(record.flagged, "the refused access must flag the line");
    }

    #[test]
    fn conflicting_writes_keep_last_writer_wins() {
        let ops = vec![
            FgOp::Write {
                pbas: vec![9],
                data: vec![pattern(1)],
            },
            FgOp::Write {
                pbas: vec![10],
                data: vec![pattern(2)],
            },
            FgOp::Write {
                pbas: vec![9],
                data: vec![pattern(3)],
            },
        ];
        let mut serial_dev = staged_device();
        execute_serial(&mut serial_dev, &ops);

        let mut dev = staged_device();
        let mut q = AdmissionQueues::new(128, 4);
        for op in &ops {
            q.submit(op.clone());
        }
        let batch = q.take_batch(0);
        q.execute_batch(&mut dev, batch);
        assert_eq!(dev.read_block(9).unwrap(), pattern(3), "last writer wins");
        assert_eq!(
            dev.read_block(9).unwrap(),
            serial_dev.read_block(9).unwrap()
        );
    }

    #[test]
    fn heated_line_write_is_screened_and_flags() {
        let mut dev = staged_device();
        let mut q = AdmissionQueues::new(128, 4);
        let bad = q.submit(FgOp::Write {
            pbas: vec![33],
            data: vec![pattern(0)],
        });
        let good = q.submit(FgOp::Write {
            pbas: vec![11],
            data: vec![pattern(4)],
        });
        let results = drain(&mut q, &mut dev);
        let by_ticket: HashMap<Ticket, &FgResult> = results.iter().map(|(t, r)| (*t, r)).collect();
        assert!(matches!(
            by_ticket[&bad],
            FgResult::Failed(SeroError::ReadOnly { .. })
        ));
        assert_eq!(by_ticket[&good], &FgResult::Written);
        let line = Line::new(32, 2).unwrap();
        assert!(dev.heated_lines().find(|r| r.line == line).unwrap().flagged);
    }

    #[test]
    fn merged_heats_produce_serial_payloads() {
        let lines = [Line::new(48, 2).unwrap(), Line::new(64, 2).unwrap()];
        let mut serial_dev = staged_device();
        let mut dev = staged_device();
        for d in [&mut serial_dev, &mut dev] {
            for line in &lines {
                for pba in line.data_blocks() {
                    d.write_block(pba, &pattern(line.start() as u8)).unwrap();
                }
            }
        }
        let ops: Vec<FgOp> = lines
            .iter()
            .map(|&line| FgOp::Heat {
                line,
                metadata: vec![line.start() as u8],
                timestamp: line.start(),
            })
            .collect();
        let serial = execute_serial(&mut serial_dev, &ops);

        let mut q = AdmissionQueues::new(128, 4);
        for op in &ops {
            q.submit(op.clone());
        }
        let batch = q.take_batch(0);
        let merged: Vec<FgResult> = q
            .execute_batch(&mut dev, batch)
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(merged, serial);
        assert_eq!(q.stats().heats_merged, 2);
        for line in lines {
            assert!(dev.verify_line(line).unwrap().is_intact());
        }
    }

    #[test]
    fn elevator_sweep_starts_at_the_sled_region() {
        let mut q = AdmissionQueues::new(128, 4);
        let far = q.submit(FgOp::Read { pbas: vec![2] }); // region 0
        let near = q.submit(FgOp::Read { pbas: vec![70] }); // region 2
        let batch = q.take_batch(2);
        assert_eq!(
            batch.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![near, far],
            "sweep starts under the sled and wraps"
        );
    }

    #[test]
    fn deep_queue_beats_fifo_device_time() {
        // Scattered single-block reads over a large device: FIFO pays a
        // long seek per op, the admission sweep pays roughly one pass.
        let blocks = 16 * 1024;
        let mut fifo = SeroDevice::with_blocks(blocks);
        let mut admitted = SeroDevice::with_blocks(blocks);
        let targets: Vec<u64> = (0..8u64).map(|i| (i * 5741 + 997) % blocks).collect();
        let ops: Vec<FgOp> = targets
            .iter()
            .map(|&p| FgOp::Read { pbas: vec![p] })
            .collect();

        let t0 = fifo.probe().clock().elapsed_ns();
        execute_serial(&mut fifo, &ops);
        let fifo_ns = fifo.probe().clock().elapsed_ns() - t0;

        let mut q = AdmissionQueues::new(blocks, 8);
        for op in &ops {
            q.submit(op.clone());
        }
        let t0 = admitted.probe().clock().elapsed_ns();
        let batch = q.take_batch(0);
        q.execute_batch(&mut admitted, batch);
        let merged_ns = admitted.probe().clock().elapsed_ns() - t0;

        assert!(
            merged_ns * 2 < fifo_ns,
            "depth-8 admission {merged_ns} ns should halve FIFO {fifo_ns} ns"
        );
    }
}
