//! Bad-block handling that never mistakes heat for damage.
//!
//! §3 of the paper: "Bad block handling is a challenge, because a heated
//! block should not be misinterpreted as a bad block." A conventional
//! device would remap any unreadable block; a SERO device must first ask
//! *why* the block is unreadable — a heated hash block is unreadable
//! magnetically by design, and remapping it would destroy the evidence
//! chain.
//!
//! [`classify_block`] implements the decision procedure: try the magnetic
//! read; on failure, scan the electrical area. Coherent Manchester cells
//! identify a heated line head; tampered or malformed cells are standing
//! evidence; an electrically blank unreadable block is genuinely bad (or
//! merely unformatted).
//!
//! # Examples
//!
//! ```
//! use sero_core::badblock::{classify_block, BlockClass};
//! use sero_core::device::SeroDevice;
//! use sero_core::line::Line;
//!
//! let mut dev = SeroDevice::with_blocks(8);
//! for pba in 0..8 {
//!     dev.write_block(pba, &[1u8; 512])?;
//! }
//! dev.heat_line(Line::new(0, 2)?, vec![], 0)?;
//! assert!(matches!(classify_block(&mut dev, 0)?, BlockClass::HeatedLineHead(_)));
//! assert!(matches!(classify_block(&mut dev, 5)?, BlockClass::Readable));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::device::{SeroDevice, SeroError};
use crate::layout::{HashBlockPayload, PayloadError};
use sero_probe::sector::SectorError;

/// What a block turns out to be on inspection.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockClass {
    /// Magnetically readable: healthy WMRM or heated-line data block.
    Readable,
    /// The head of a heated line, carrying a valid hash payload.
    HeatedLineHead(HashBlockPayload),
    /// Electrically written but tampered or damaged — evidence, not a bad
    /// block.
    HeatedEvidence {
        /// Why the payload did not decode.
        reason: String,
    },
    /// Every cell reads `HH`: the block was deliberately shredded (§8
    /// "Deletion"). Distinguishable from vandalism, which is partial.
    Shredded,
    /// Never formatted: magnetically unreadable but electrically blank,
    /// with no coherent sector structure.
    Unformatted,
    /// Genuinely bad: formatted data that fails ECC/CRC with no electrical
    /// explanation.
    Bad {
        /// The magnetic read error.
        reason: String,
    },
}

impl BlockClass {
    /// True when the block must never be remapped or reused.
    pub fn preserves_evidence(&self) -> bool {
        matches!(
            self,
            BlockClass::HeatedLineHead(_)
                | BlockClass::HeatedEvidence { .. }
                | BlockClass::Shredded
        )
    }
}

/// Classifies block `pba` per the decision procedure above.
///
/// # Errors
///
/// Propagates only infrastructure errors (address out of range).
pub fn classify_block(dev: &mut SeroDevice, pba: u64) -> Result<BlockClass, SeroError> {
    // Magnetic attempt first — the cheap path for healthy blocks. Use the
    // raw probe so registered hash blocks are classified from physics, not
    // from the in-memory registry.
    let magnetic = dev.probe_mut().mrs(pba);
    let magnetic_err = match magnetic {
        Ok(_) => return Ok(BlockClass::Readable),
        Err(SectorError::OutOfRange { pba, blocks }) => {
            return Err(SeroError::Sector(SectorError::OutOfRange { pba, blocks }))
        }
        Err(e) => e,
    };

    // Magnetically unreadable: ask the electrical area why.
    match dev.scan_block(pba)? {
        Ok(payload) => Ok(BlockClass::HeatedLineHead(payload)),
        Err(PayloadError::Blank) => match magnetic_err {
            SectorError::BadMagic { .. } => Ok(BlockClass::Unformatted),
            e => Ok(BlockClass::Bad {
                reason: e.to_string(),
            }),
        },
        Err(PayloadError::Tampered { cells })
            if cells.len() == sero_probe::sector::ELECTRICAL_CELLS =>
        {
            Ok(BlockClass::Shredded)
        }
        Err(e) => Ok(BlockClass::HeatedEvidence {
            reason: e.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::Line;

    fn device() -> SeroDevice {
        let mut dev = SeroDevice::with_blocks(16);
        for pba in 0..16 {
            dev.write_block(pba, &[pba as u8; 512]).unwrap();
        }
        dev
    }

    #[test]
    fn healthy_block_is_readable() {
        let mut dev = device();
        assert_eq!(classify_block(&mut dev, 3).unwrap(), BlockClass::Readable);
    }

    #[test]
    fn heated_head_not_misclassified_as_bad() {
        let mut dev = device();
        let line = Line::new(4, 2).unwrap();
        dev.heat_line(line, b"evidence".to_vec(), 7).unwrap();
        match classify_block(&mut dev, 4).unwrap() {
            BlockClass::HeatedLineHead(p) => {
                assert_eq!(p.line(), line);
                assert_eq!(p.metadata(), b"evidence");
            }
            other => panic!("heated head classified as {other:?}"),
        }
        // Data blocks of the line remain plain readable.
        assert_eq!(classify_block(&mut dev, 5).unwrap(), BlockClass::Readable);
    }

    #[test]
    fn classification_survives_registry_loss() {
        // The whole point: classification works from physics alone.
        let mut dev = device();
        dev.heat_line(Line::new(8, 2).unwrap(), vec![], 1).unwrap();
        let mut fresh = dev.clone();
        fresh.rebuild_registry().unwrap(); // works either way
        match classify_block(&mut fresh, 8).unwrap() {
            BlockClass::HeatedLineHead(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unformatted_block_detected() {
        let mut dev = SeroDevice::with_blocks(4);
        assert_eq!(
            classify_block(&mut dev, 2).unwrap(),
            BlockClass::Unformatted
        );
    }

    #[test]
    fn vandalised_hash_block_is_evidence_not_bad() {
        let mut dev = device();
        let line = Line::new(0, 2).unwrap();
        dev.heat_line(line, vec![], 2).unwrap();
        // Attacker burns extra dots into the hash block.
        for cell in 0..8 {
            let dot = dev.probe().block_first_dot(0)
                + sero_probe::sector::DATA_AREA_FIRST_DOT as u64
                + cell * 2;
            dev.probe_mut().ewb(dot);
            dev.probe_mut().ewb(dot + 1);
        }
        match classify_block(&mut dev, 0).unwrap() {
            BlockClass::HeatedEvidence { reason } => {
                assert!(
                    reason.contains("tampered") || reason.contains("HH"),
                    "{reason}"
                )
            }
            other => panic!("vandalised hash block classified as {other:?}"),
        }
    }

    #[test]
    fn corrupt_magnetic_block_is_bad() {
        let mut dev = device();
        // Corrupt block 6 beyond ECC by randomising its dots magnetically
        // (no heat involved).
        let first = dev.probe().block_first_dot(6);
        for i in 0..sero_probe::sector::SECTOR_DOTS as u64 {
            let bit = (i * 2654435761) % 3 == 0;
            dev.probe_mut().medium_mut().write_mag(first + i, bit);
        }
        match classify_block(&mut dev, 6).unwrap() {
            BlockClass::Bad { .. } | BlockClass::Unformatted => {}
            other => panic!("corrupt block classified as {other:?}"),
        }
    }

    #[test]
    fn evidence_preservation_flags() {
        assert!(!BlockClass::Readable.preserves_evidence());
        assert!(!BlockClass::Unformatted.preserves_evidence());
        assert!(!BlockClass::Bad {
            reason: String::new()
        }
        .preserves_evidence());
        assert!(BlockClass::HeatedEvidence {
            reason: String::new()
        }
        .preserves_evidence());
        assert!(BlockClass::Shredded.preserves_evidence());
    }

    #[test]
    fn shredded_block_classified_distinctly() {
        let mut dev = device();
        let line = Line::new(8, 1).unwrap();
        dev.heat_line(line, vec![], 3).unwrap();
        dev.shred_line(line).unwrap();
        // Both blocks of the line now show the uniform all-HH signature.
        for pba in line.blocks() {
            assert_eq!(classify_block(&mut dev, pba).unwrap(), BlockClass::Shredded);
        }
        // Shredding is itself loud evidence at the line level.
        let outcome = dev.verify_line(line).unwrap();
        assert!(outcome.is_tampered());
    }

    #[test]
    fn shred_destroys_content_irreversibly() {
        let mut dev = device();
        let line = Line::new(4, 1).unwrap();
        dev.shred_line(line).unwrap();
        for pba in line.blocks() {
            assert!(dev.probe_mut().mrs(pba).is_err(), "shredded block readable");
            // Rewrites cannot resurrect it.
            let report = dev.probe_mut().mws(pba, &[1u8; 512]).unwrap();
            assert_eq!(
                report.unwritable_dots,
                sero_probe::sector::SECTOR_DOTS,
                "every dot must refuse"
            );
        }
    }

    #[test]
    fn out_of_range_is_error() {
        let mut dev = device();
        assert!(classify_block(&mut dev, 99).is_err());
    }
}
