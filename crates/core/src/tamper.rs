//! Tamper verdicts and evidence reporting.
//!
//! §5 of the paper: "We are not able to prevent tampering either, but we
//! are able to detect tampering." Verification therefore never returns a
//! bare boolean — it returns *evidence*: what physical finding, where, and
//! what attack class it corresponds to in the paper's analysis.
//!
//! # Examples
//!
//! ```
//! use sero_core::tamper::{Evidence, TamperReport};
//! use sero_core::line::Line;
//!
//! let report = TamperReport::new(Line::new(0, 2).unwrap())
//!     .with(Evidence::TamperedHashCells { cells: vec![3, 7] });
//! assert!(report.is_tampered());
//! println!("{report}");
//! ```

use crate::line::Line;
use core::fmt;
use sero_crypto::Digest;

/// A single piece of physical or cryptographic evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evidence {
    /// `HH` cells in the hash block — someone ran `ewb` over written
    /// Manchester cells (§5.1 "ewb hash": `UH → HH` / `HU → HH`).
    TamperedHashCells {
        /// Indices of the illegal cells.
        cells: Vec<usize>,
    },
    /// The hash block's record is structurally damaged (torn heat, raw dot
    /// damage, wrong magic or CRC).
    MalformedHashBlock {
        /// Decoder's reason.
        reason: String,
    },
    /// The recomputed digest of the data blocks does not match the heated
    /// digest (§5.1 "mwb inode/data": magnetic rewrites of protected data).
    HashMismatch {
        /// Digest stored in the heated hash block.
        stored: Digest,
        /// Digest recomputed from the data blocks.
        computed: Digest,
    },
    /// A protected data block no longer reads back (§5.1 "ewb inode/data":
    /// heated dots in the data appear as read errors beyond ECC).
    UnreadableDataBlock {
        /// The block's physical address.
        pba: u64,
        /// The device error encountered.
        reason: String,
    },
    /// The payload claims a different line than the physical location it
    /// was read from — a §5.1 splitting/coalescing or §5.2 copy-mask
    /// attempt.
    RelocatedPayload {
        /// Line the payload claims to protect.
        claimed: Line,
        /// Line it was physically read from.
        actual: Line,
    },
}

impl Evidence {
    /// Short classification label used in reports and experiment tables.
    pub fn kind(&self) -> &'static str {
        match self {
            Evidence::TamperedHashCells { .. } => "hash-cells-HH",
            Evidence::MalformedHashBlock { .. } => "hash-malformed",
            Evidence::HashMismatch { .. } => "hash-mismatch",
            Evidence::UnreadableDataBlock { .. } => "data-unreadable",
            Evidence::RelocatedPayload { .. } => "payload-relocated",
        }
    }
}

impl fmt::Display for Evidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Evidence::TamperedHashCells { cells } => {
                write!(
                    f,
                    "{} HH cell(s) in heated hash (first at {:?})",
                    cells.len(),
                    cells.first()
                )
            }
            Evidence::MalformedHashBlock { reason } => write!(f, "malformed hash block: {reason}"),
            Evidence::HashMismatch { stored, computed } => {
                write!(f, "hash mismatch: heated {stored} vs computed {computed}")
            }
            Evidence::UnreadableDataBlock { pba, reason } => {
                write!(f, "data block {pba} unreadable: {reason}")
            }
            Evidence::RelocatedPayload { claimed, actual } => {
                write!(f, "payload claims {claimed} but lives at {actual}")
            }
        }
    }
}

/// The evidence collected while verifying one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperReport {
    line: Line,
    evidence: Vec<Evidence>,
}

impl TamperReport {
    /// An empty report for `line`.
    pub fn new(line: Line) -> TamperReport {
        TamperReport {
            line,
            evidence: Vec::new(),
        }
    }

    /// Adds a finding (builder style).
    pub fn with(mut self, evidence: Evidence) -> TamperReport {
        self.evidence.push(evidence);
        self
    }

    /// Adds a finding in place.
    pub fn push(&mut self, evidence: Evidence) {
        self.evidence.push(evidence);
    }

    /// The line the report concerns.
    pub fn line(&self) -> Line {
        self.line
    }

    /// All findings.
    pub fn evidence(&self) -> &[Evidence] {
        &self.evidence
    }

    /// True when any evidence was found.
    pub fn is_tampered(&self) -> bool {
        !self.evidence.is_empty()
    }
}

impl fmt::Display for TamperReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.evidence.is_empty() {
            return write!(f, "{}: intact", self.line);
        }
        writeln!(
            f,
            "{}: TAMPER EVIDENCE ({} finding(s))",
            self.line,
            self.evidence.len()
        )?;
        for e in &self.evidence {
            writeln!(f, "  - [{}] {}", e.kind(), e)?;
        }
        Ok(())
    }
}

/// Outcome of verifying a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The heated hash matches the data at its recorded addresses.
    Intact {
        /// The payload read from the hash block.
        payload: crate::layout::HashBlockPayload,
    },
    /// The line's hash block is blank: the line was never heated, so
    /// there is nothing to verify against.
    NotHeated,
    /// Evidence of tampering was found.
    Tampered(TamperReport),
}

impl VerifyOutcome {
    /// True for [`VerifyOutcome::Intact`].
    pub fn is_intact(&self) -> bool {
        matches!(self, VerifyOutcome::Intact { .. })
    }

    /// True for [`VerifyOutcome::Tampered`].
    pub fn is_tampered(&self) -> bool {
        matches!(self, VerifyOutcome::Tampered(_))
    }

    /// The report, when tampered.
    pub fn report(&self) -> Option<&TamperReport> {
        match self {
            VerifyOutcome::Tampered(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sero_crypto::sha256;

    #[test]
    fn report_accumulates() {
        let line = Line::new(4, 2).unwrap();
        let mut report = TamperReport::new(line);
        assert!(!report.is_tampered());
        report.push(Evidence::HashMismatch {
            stored: sha256(b"a"),
            computed: sha256(b"b"),
        });
        report.push(Evidence::UnreadableDataBlock {
            pba: 6,
            reason: "uncorrectable".into(),
        });
        assert!(report.is_tampered());
        assert_eq!(report.evidence().len(), 2);
        assert_eq!(report.line(), line);
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            Evidence::TamperedHashCells { cells: vec![] },
            Evidence::MalformedHashBlock {
                reason: String::new(),
            },
            Evidence::HashMismatch {
                stored: Digest::ZERO,
                computed: Digest::ZERO,
            },
            Evidence::UnreadableDataBlock {
                pba: 0,
                reason: String::new(),
            },
            Evidence::RelocatedPayload {
                claimed: Line::new(0, 1).unwrap(),
                actual: Line::new(2, 1).unwrap(),
            },
        ];
        let kinds: std::collections::HashSet<&str> = all.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), all.len());
        for e in &all {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn display_intact_and_tampered() {
        let line = Line::new(0, 1).unwrap();
        let clean = TamperReport::new(line);
        assert!(format!("{clean}").contains("intact"));
        let dirty = clean.with(Evidence::TamperedHashCells { cells: vec![9] });
        let text = format!("{dirty}");
        assert!(text.contains("TAMPER"));
        assert!(text.contains("hash-cells-HH"));
    }

    #[test]
    fn outcome_accessors() {
        let line = Line::new(0, 1).unwrap();
        let t = VerifyOutcome::Tampered(TamperReport::new(line));
        assert!(t.is_tampered());
        assert!(!t.is_intact());
        assert!(t.report().is_some());
        assert!(!VerifyOutcome::NotHeated.is_tampered());
        assert!(VerifyOutcome::NotHeated.report().is_none());
    }
}
