//! A heatable instruction journal — §8's self-securing storage hook.
//!
//! The paper: "the idea of self-securing storage takes the view that the
//! storage system should place only limited trust in the host that
//! controls it … Thus the storage system itself maintains a log of the
//! instructions it is given … Our approach could strengthen the defences
//! of a self-securing storage device because **the logs can be heated**."
//!
//! [`InstructionJournal`] appends operation records into the data blocks
//! of a reserved region; whenever a line's worth of blocks fills, the line
//! is heated — from then on that slice of history is physically immutable.
//! After any compromise, [`InstructionJournal::replay`] reconstructs the
//! sealed history from the bare medium and verifies every batch.
//!
//! # Examples
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_core::journal::{InstructionJournal, JournalEntry};
//!
//! let mut dev = SeroDevice::with_blocks(64);
//! let mut journal = InstructionJournal::new(32, 32, 2)?;
//! journal.record(&mut dev, JournalEntry::new(1, "host-a", "WRITE lba 7"))?;
//! journal.seal(&mut dev, 100)?; // force-seal the partial batch
//! let (batches, findings) = journal.verify_all(&mut dev)?;
//! assert_eq!(batches, 1);
//! assert!(findings.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::device::{ScrubStateRestore, SeroDevice, SeroError};
use crate::line::{Line, LineError};
use crate::scrub::ScrubSummary;
use core::fmt;
use sero_probe::sector::SECTOR_DATA_BYTES;

/// Magic marking a journal block ("SJRN" truncated).
const JOURNAL_MAGIC: u32 = 0x534A524E;

/// Maximum operation-text bytes per entry.
pub const MAX_OP_BYTES: usize = 200;

/// Maximum actor-name bytes per entry.
pub const MAX_ACTOR_BYTES: usize = 40;

/// One logged instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// When the instruction arrived (seconds since the epoch).
    pub timestamp: u64,
    /// Which host/principal issued it.
    pub actor: String,
    /// The instruction itself, free text.
    pub operation: String,
}

impl JournalEntry {
    /// Builds an entry, truncating oversized fields.
    pub fn new(timestamp: u64, actor: &str, operation: &str) -> JournalEntry {
        JournalEntry {
            timestamp,
            actor: actor.chars().take(MAX_ACTOR_BYTES).collect(),
            operation: operation.chars().take(MAX_OP_BYTES).collect(),
        }
    }

    fn encoded_len(&self) -> usize {
        8 + 1 + self.actor.len() + 2 + self.operation.len()
    }
}

impl fmt::Display for JournalEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={}] {}: {}",
            self.timestamp, self.actor, self.operation
        )
    }
}

/// Errors from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The reserved region is exhausted: all lines sealed.
    RegionFull,
    /// Bad region geometry (not line-aligned or too small).
    BadRegion {
        /// Explanation.
        reason: String,
    },
    /// Device failure.
    Device(SeroError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::RegionFull => f.write_str("journal region exhausted"),
            JournalError::BadRegion { reason } => write!(f, "bad journal region: {reason}"),
            JournalError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeroError> for JournalError {
    fn from(e: SeroError) -> JournalError {
        JournalError::Device(e)
    }
}

impl From<LineError> for JournalError {
    fn from(e: LineError) -> JournalError {
        JournalError::BadRegion {
            reason: e.to_string(),
        }
    }
}

/// An append-only, incrementally heated instruction log.
#[derive(Debug, Clone)]
pub struct InstructionJournal {
    region_start: u64,
    region_blocks: u64,
    order: u32,
    /// Index of the next line slot to seal.
    next_slot: u64,
    /// Entries not yet flushed to a block.
    pending: Vec<JournalEntry>,
    /// Blocks already written within the open line.
    open_blocks: u64,
    sealed: Vec<Line>,
}

impl InstructionJournal {
    /// Creates a journal over `region_blocks` blocks starting at
    /// `region_start`, sealing batches as lines of order `order`.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadRegion`] unless the region is aligned to and a
    /// multiple of the line size.
    pub fn new(
        region_start: u64,
        region_blocks: u64,
        order: u32,
    ) -> Result<InstructionJournal, JournalError> {
        let line_len = 1u64 << order;
        if region_start % line_len != 0 || region_blocks % line_len != 0 || region_blocks == 0 {
            return Err(JournalError::BadRegion {
                reason: format!(
                    "region {region_start}+{region_blocks} not aligned to 2^{order} lines"
                ),
            });
        }
        Ok(InstructionJournal {
            region_start,
            region_blocks,
            order,
            next_slot: 0,
            pending: Vec::new(),
            open_blocks: 0,
            sealed: Vec::new(),
        })
    }

    /// Lines sealed so far.
    pub fn sealed_lines(&self) -> &[Line] {
        &self.sealed
    }

    /// Entries buffered but not yet durable.
    pub fn pending_entries(&self) -> usize {
        self.pending.len()
    }

    fn current_line(&self) -> Result<Line, JournalError> {
        let line_len = 1u64 << self.order;
        let start = self.region_start + self.next_slot * line_len;
        if start + line_len > self.region_start + self.region_blocks {
            return Err(JournalError::RegionFull);
        }
        Ok(Line::new(start, self.order)?)
    }

    /// Records one instruction. Entries are buffered until a block fills,
    /// then flushed; when the open line's last data block flushes, the
    /// line is heated automatically. Returns the sealed line when that
    /// happens.
    ///
    /// # Errors
    ///
    /// [`JournalError::RegionFull`] once every line is sealed; device
    /// errors.
    pub fn record(
        &mut self,
        dev: &mut SeroDevice,
        entry: JournalEntry,
    ) -> Result<Option<Line>, JournalError> {
        // Would this entry overflow the current block? Flush first.
        let used: usize = 6 + self
            .pending
            .iter()
            .map(JournalEntry::encoded_len)
            .sum::<usize>();
        if used + entry.encoded_len() > SECTOR_DATA_BYTES {
            self.flush_block(dev)?;
        }
        self.pending.push(entry);

        // Seal if the line just completed.
        let line = self.current_line()?;
        if self.open_blocks == line.data_len() {
            return Ok(Some(
                self.seal(dev, self.pending.last().map_or(0, |e| e.timestamp))?,
            ));
        }
        Ok(None)
    }

    fn flush_block(&mut self, dev: &mut SeroDevice) -> Result<(), JournalError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let line = self.current_line()?;
        let target = line.start() + 1 + self.open_blocks;
        let mut block = [0u8; SECTOR_DATA_BYTES];
        block[..4].copy_from_slice(&JOURNAL_MAGIC.to_le_bytes());
        block[4..6].copy_from_slice(&(self.pending.len() as u16).to_le_bytes());
        let mut pos = 6;
        for e in &self.pending {
            block[pos..pos + 8].copy_from_slice(&e.timestamp.to_le_bytes());
            pos += 8;
            block[pos] = e.actor.len() as u8;
            pos += 1;
            block[pos..pos + e.actor.len()].copy_from_slice(e.actor.as_bytes());
            pos += e.actor.len();
            block[pos..pos + 2].copy_from_slice(&(e.operation.len() as u16).to_le_bytes());
            pos += 2;
            block[pos..pos + e.operation.len()].copy_from_slice(e.operation.as_bytes());
            pos += e.operation.len();
        }
        dev.write_block(target, &block)?;
        self.pending.clear();
        self.open_blocks += 1;
        Ok(())
    }

    /// Seals the open batch now: flushes pending entries, zero-fills the
    /// line's remaining blocks, heats the line.
    ///
    /// # Errors
    ///
    /// [`JournalError::RegionFull`]; device errors.
    pub fn seal(&mut self, dev: &mut SeroDevice, timestamp: u64) -> Result<Line, JournalError> {
        self.flush_block(dev)?;
        let line = self.current_line()?;
        for pba in line.start() + 1 + self.open_blocks..line.end() {
            dev.write_block(pba, &[0u8; SECTOR_DATA_BYTES])?;
        }
        dev.heat_line(line, b"instruction journal batch".to_vec(), timestamp)?;
        self.sealed.push(line);
        self.next_slot += 1;
        self.open_blocks = 0;
        Ok(line)
    }

    /// Verifies every sealed batch; returns (intact count, findings).
    ///
    /// # Errors
    ///
    /// Device errors only.
    pub fn verify_all(
        &mut self,
        dev: &mut SeroDevice,
    ) -> Result<(usize, Vec<String>), JournalError> {
        let mut intact = 0;
        let mut findings = Vec::new();
        for &line in &self.sealed {
            match dev.verify_line(line)? {
                crate::tamper::VerifyOutcome::Intact { .. } => intact += 1,
                other => findings.push(format!("{line}: {other:?}")),
            }
        }
        Ok((intact, findings))
    }

    /// Records the completion of a scrub pass as a sealed-history audit
    /// entry: "who verified what, when" becomes tamper-evident alongside
    /// the host instructions. The background scheduler (or any scrub
    /// driver) calls this after [`crate::scrub::scrub_device`] /
    /// [`crate::sched::ScrubScheduler`] finishes a pass.
    ///
    /// # Errors
    ///
    /// [`JournalError::RegionFull`]; device errors.
    pub fn record_scrub_pass(
        &mut self,
        dev: &mut SeroDevice,
        summary: &ScrubSummary,
        timestamp: u64,
    ) -> Result<Option<Line>, JournalError> {
        let entry = JournalEntry::new(
            timestamp,
            "scrub",
            &format!(
                "SCRUB epoch={} mode={:?} verified={} skipped={} tampered={} device_ns={}",
                summary.epoch,
                summary.mode,
                summary.lines,
                summary.skipped,
                summary.tampered,
                summary.device_ns
            ),
        );
        self.record(dev, entry)
    }

    /// Reconstructs all sealed history directly from the medium — works
    /// with zero in-memory state, after any host compromise.
    ///
    /// # Errors
    ///
    /// Device errors only; undecodable blocks are skipped.
    pub fn replay(
        dev: &mut SeroDevice,
        region_start: u64,
        region_blocks: u64,
    ) -> Result<Vec<JournalEntry>, JournalError> {
        dev.rebuild_registry()?;
        let lines: Vec<Line> = dev
            .heated_lines()
            .map(|r| r.line)
            .filter(|l| l.start() >= region_start && l.end() <= region_start + region_blocks)
            .collect();
        let mut out = Vec::new();
        for line in lines {
            for pba in line.data_blocks() {
                let Ok(sector) = dev.probe_mut().mrs(pba) else {
                    continue;
                };
                let data = sector.data;
                if u32::from_le_bytes(data[..4].try_into().expect("4")) != JOURNAL_MAGIC {
                    continue;
                }
                let count = u16::from_le_bytes(data[4..6].try_into().expect("2")) as usize;
                let mut pos = 6;
                for _ in 0..count {
                    if pos + 11 > SECTOR_DATA_BYTES {
                        break;
                    }
                    let timestamp = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("8"));
                    pos += 8;
                    let alen = data[pos] as usize;
                    pos += 1;
                    let actor = String::from_utf8_lossy(&data[pos..pos + alen]).into_owned();
                    pos += alen;
                    let olen =
                        u16::from_le_bytes(data[pos..pos + 2].try_into().expect("2")) as usize;
                    pos += 2;
                    let operation = String::from_utf8_lossy(&data[pos..pos + olen]).into_owned();
                    pos += olen;
                    out.push(JournalEntry {
                        timestamp,
                        actor,
                        operation,
                    });
                }
            }
        }
        out.sort_by_key(|e| e.timestamp);
        Ok(out)
    }
}

/// Magic framing a [`ScrubStateStore`] region ("SSST" truncated).
const SCRUB_STORE_MAGIC: u32 = 0x53535354;

/// A rewritable WMRM home for the device's scrub bookkeeping.
///
/// Registry *membership* is recovered from the burned hash blocks, but
/// the mutable scrub bookkeeping (completed-pass epoch, per-line
/// `verified_epoch`/`flagged`) lives in volatile memory — PR 3's open
/// ROADMAP item: a detach forgot it, so every remount fell back to a
/// full pass. This store persists
/// [`SeroDevice::export_scrub_state`] into a reserved magnetic region
/// (magnetic writes stay rewritable, so the record can be refreshed
/// after every pass) and feeds it back through
/// [`SeroDevice::import_scrub_state`] on attach. `SeroFs` embeds the
/// same record in its checkpoint instead; this store is for raw-device
/// deployments (and keeps the two paths honest against each other in
/// the cross-layer property tests).
///
/// # Examples
///
/// ```
/// use sero_core::device::SeroDevice;
/// use sero_core::journal::ScrubStateStore;
/// use sero_core::line::Line;
/// use sero_core::scrub::{scrub_device, ScrubConfig};
///
/// let mut dev = SeroDevice::with_blocks(64);
/// let line = Line::new(0, 3)?;
/// for pba in line.data_blocks() {
///     dev.write_block(pba, &[7u8; 512])?;
/// }
/// dev.heat_line(line, vec![], 0)?;
/// scrub_device(&mut dev, &ScrubConfig::with_workers(1))?;
///
/// let store = ScrubStateStore::new(32, 4)?;
/// store.save(&mut dev)?;
/// dev.forget_registry(); // detach
/// dev.rebuild_registry()?; // attach
/// let restore = store.load(&mut dev)?.expect("state present");
/// assert_eq!(restore.restored, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubStateStore {
    region_start: u64,
    region_blocks: u64,
}

impl ScrubStateStore {
    /// A store over `region_blocks` WMRM blocks starting at
    /// `region_start`.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadRegion`] for an empty region.
    pub fn new(region_start: u64, region_blocks: u64) -> Result<ScrubStateStore, JournalError> {
        if region_blocks == 0 {
            return Err(JournalError::BadRegion {
                reason: "scrub-state region needs at least one block".to_string(),
            });
        }
        Ok(ScrubStateStore {
            region_start,
            region_blocks,
        })
    }

    /// Bytes of scrub state the region can frame.
    pub fn capacity(&self) -> usize {
        self.region_blocks as usize * SECTOR_DATA_BYTES - 8
    }

    /// Serializes the device's scrub bookkeeping into the region
    /// (framed as magic ‖ length ‖ record, chunked into blocks). Call
    /// after every completed pass — magnetic writes are rewritable, so
    /// each save replaces the last.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadRegion`] when the record outgrows the region;
    /// device errors (the region must stay WMRM — a heated block inside
    /// it refuses the write).
    pub fn save(&self, dev: &mut SeroDevice) -> Result<(), JournalError> {
        let state = dev.export_scrub_state();
        if state.len() > self.capacity() {
            return Err(JournalError::BadRegion {
                reason: format!(
                    "scrub state of {} bytes exceeds region capacity {}",
                    state.len(),
                    self.capacity()
                ),
            });
        }
        let mut framed = Vec::with_capacity(8 + state.len());
        framed.extend_from_slice(&SCRUB_STORE_MAGIC.to_le_bytes());
        framed.extend_from_slice(&(state.len() as u32).to_le_bytes());
        framed.extend_from_slice(&state);
        let blocks_needed = framed.len().div_ceil(SECTOR_DATA_BYTES) as u64;
        let pbas: Vec<u64> = (self.region_start..self.region_start + blocks_needed).collect();
        let mut sectors = Vec::with_capacity(pbas.len());
        for chunk in framed.chunks(SECTOR_DATA_BYTES) {
            let mut sector = [0u8; SECTOR_DATA_BYTES];
            sector[..chunk.len()].copy_from_slice(chunk);
            sectors.push(sector);
        }
        dev.write_blocks(&pbas, &sectors)?;
        Ok(())
    }

    /// Reads the region and applies any persisted scrub state to the
    /// (already populated) registry. `Ok(None)` means the region holds no
    /// state — a fresh device; the next pass simply runs full.
    ///
    /// # Errors
    ///
    /// Device errors, and [`SeroError::BadScrubState`] (wrapped) for a
    /// region that frames a record which then fails its own CRC — loud,
    /// because a half-written or vandalised record is worth knowing
    /// about even though the safe fallback is just a full pass.
    pub fn load(&self, dev: &mut SeroDevice) -> Result<Option<ScrubStateRestore>, JournalError> {
        let first = match dev.read_block(self.region_start) {
            Ok(data) => data,
            // A virgin region decodes as noise, not as a sector — that is
            // simply "no state yet", not an error.
            Err(SeroError::Sector(_)) => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if u32::from_le_bytes(first[..4].try_into().expect("4")) != SCRUB_STORE_MAGIC {
            return Ok(None);
        }
        let len = u32::from_le_bytes(first[4..8].try_into().expect("4")) as usize;
        if len > self.capacity() {
            return Ok(None);
        }
        let mut framed = first[8..].to_vec();
        let mut next = self.region_start + 1;
        while framed.len() < len {
            framed.extend_from_slice(&dev.read_block(next)?);
            next += 1;
        }
        framed.truncate(len);
        Ok(Some(dev.import_scrub_state(&framed)?))
    }
}

/// A bounds-checked pager over a reserved WMRM block range — the
/// rewritable journal-region primitive under record stores like
/// [`ScrubStateStore`] and the fs metadata index's WAL/segment region.
///
/// The one semantic it adds over raw block access: *virgin sectors read
/// as zeros*. A patterned-media sector that was never magnetically
/// written decodes as noise ([`SeroError::Sector`]); for a journal
/// region that is simply "nothing here yet", so this pager maps it to a
/// zero page instead of an error — exactly as [`ScrubStateStore::load`]
/// treats its first virgin block as "no state". Every other device
/// failure (a heated block inside the region, out-of-range addresses)
/// stays loud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WmrmRegion {
    start: u64,
    blocks: u64,
}

impl WmrmRegion {
    /// A pager over `blocks` WMRM blocks starting at `start`.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadRegion`] for an empty region.
    pub fn new(start: u64, blocks: u64) -> Result<WmrmRegion, JournalError> {
        if blocks == 0 {
            return Err(JournalError::BadRegion {
                reason: "WMRM region needs at least one block".to_string(),
            });
        }
        Ok(WmrmRegion { start, blocks })
    }

    /// First block of the region.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Blocks (= pages) in the region.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Reads one page; a virgin (never-written) sector reads as zeros.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadRegion`] for a page outside the region; device
    /// errors other than a virgin-sector decode.
    pub fn read_page(
        &self,
        dev: &mut SeroDevice,
        page: u64,
    ) -> Result<[u8; SECTOR_DATA_BYTES], JournalError> {
        if page >= self.blocks {
            return Err(JournalError::BadRegion {
                reason: format!("page {page} outside a {}-block region", self.blocks),
            });
        }
        match dev.read_block(self.start + page) {
            Ok(data) => Ok(data),
            Err(SeroError::Sector(_)) => Ok([0u8; SECTOR_DATA_BYTES]),
            Err(e) => Err(e.into()),
        }
    }

    /// Writes one page.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadRegion`] for a page outside the region; device
    /// errors (a heated block inside the region refuses the write).
    pub fn write_page(
        &self,
        dev: &mut SeroDevice,
        page: u64,
        data: &[u8; SECTOR_DATA_BYTES],
    ) -> Result<(), JournalError> {
        if page >= self.blocks {
            return Err(JournalError::BadRegion {
                reason: format!("page {page} outside a {}-block region", self.blocks),
            });
        }
        dev.write_block(self.start + page, data)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SeroDevice, InstructionJournal) {
        let dev = SeroDevice::with_blocks(64);
        let journal = InstructionJournal::new(32, 32, 2).unwrap();
        (dev, journal)
    }

    #[test]
    fn wmrm_region_pages_round_trip_and_virgin_reads_zero() {
        let mut dev = SeroDevice::with_blocks(64);
        let region = WmrmRegion::new(8, 4).unwrap();
        // Virgin pages read as zeros, not as a sector error.
        assert_eq!(
            region.read_page(&mut dev, 0).unwrap(),
            [0u8; SECTOR_DATA_BYTES]
        );
        let mut page = [0u8; SECTOR_DATA_BYTES];
        page[..4].copy_from_slice(b"SWAL");
        region.write_page(&mut dev, 2, &page).unwrap();
        assert_eq!(region.read_page(&mut dev, 2).unwrap(), page);
        // Bounds are enforced on both sides of the API.
        assert!(matches!(
            region.read_page(&mut dev, 4),
            Err(JournalError::BadRegion { .. })
        ));
        assert!(matches!(
            region.write_page(&mut dev, 4, &page),
            Err(JournalError::BadRegion { .. })
        ));
        assert!(WmrmRegion::new(0, 0).is_err());
    }

    #[test]
    fn record_and_seal_round_trip() {
        let (mut dev, mut journal) = setup();
        for i in 0..5 {
            journal
                .record(
                    &mut dev,
                    JournalEntry::new(i, "host-a", &format!("WRITE lba {i}")),
                )
                .unwrap();
        }
        journal.seal(&mut dev, 5).unwrap();
        assert_eq!(journal.sealed_lines().len(), 1);
        let (intact, findings) = journal.verify_all(&mut dev).unwrap();
        assert_eq!(intact, 1);
        assert!(findings.is_empty());
    }

    #[test]
    fn auto_seal_when_line_fills() {
        let (mut dev, mut journal) = setup();
        // Entries of ~60 bytes: ~8 per block; line order 2 -> 3 data
        // blocks; so ~25 entries force an automatic seal.
        let mut sealed = None;
        for i in 0..200 {
            let entry = JournalEntry::new(i, "host-b", "READ lba 00000000 len 4096 flags none");
            if let Some(line) = journal.record(&mut dev, entry).unwrap() {
                sealed = Some((i, line));
                break;
            }
        }
        let (at, line) = sealed.expect("line should have filled");
        assert!(at > 8, "several blocks of entries before sealing");
        assert!(dev.verify_line(line).unwrap().is_intact());
    }

    #[test]
    fn replay_recovers_history_from_bare_medium() {
        let (mut dev, mut journal) = setup();
        let mut written = Vec::new();
        for i in 0..12 {
            let e = JournalEntry::new(i, "ceo-laptop", &format!("DELETE file {i}"));
            written.push(e.clone());
            journal.record(&mut dev, e).unwrap();
        }
        journal.seal(&mut dev, 99).unwrap();

        // Host compromise: all in-memory state gone; replay from medium.
        let replayed = InstructionJournal::replay(&mut dev, 32, 32).unwrap();
        assert_eq!(replayed, written);
    }

    #[test]
    fn tampering_with_sealed_batch_detected() {
        let (mut dev, mut journal) = setup();
        journal
            .record(&mut dev, JournalEntry::new(1, "host", "SHRED everything"))
            .unwrap();
        let line = journal.seal(&mut dev, 1).unwrap();
        // The embarrassed operator rewrites the journal block raw.
        dev.probe_mut().mws(line.start() + 1, &[0u8; 512]).unwrap();
        let (intact, findings) = journal.verify_all(&mut dev).unwrap();
        assert_eq!(intact, 0);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn region_exhaustion_reported() {
        let mut dev = SeroDevice::with_blocks(64);
        // Region of exactly one order-2 line.
        let mut journal = InstructionJournal::new(32, 4, 2).unwrap();
        journal
            .record(&mut dev, JournalEntry::new(1, "h", "op"))
            .unwrap();
        journal.seal(&mut dev, 1).unwrap();
        let err = journal
            .record(&mut dev, JournalEntry::new(2, "h", "op"))
            .unwrap_err();
        assert_eq!(err, JournalError::RegionFull);
    }

    #[test]
    fn bad_region_rejected() {
        assert!(InstructionJournal::new(33, 32, 2).is_err()); // misaligned
        assert!(InstructionJournal::new(32, 30, 2).is_err()); // not a multiple
        assert!(InstructionJournal::new(32, 0, 2).is_err());
    }

    #[test]
    fn device_errors_keep_their_source_chain() {
        let inner = SeroError::HashBlockAccess { pba: 40 };
        let err = JournalError::Device(inner.clone());
        // The wrapped device error stays reachable for error-report
        // walkers, and its text survives in the Display.
        let source = std::error::Error::source(&err).expect("Device carries a source");
        assert_eq!(source.to_string(), inner.to_string());
        assert!(err.to_string().contains(&inner.to_string()));
        assert!(std::error::Error::source(&JournalError::RegionFull).is_none());
    }

    #[test]
    fn scrub_pass_audit_entry_round_trips() {
        let (mut dev, mut journal) = setup();
        let line = Line::new(0, 2).unwrap();
        for pba in line.data_blocks() {
            dev.write_block(pba, &[3u8; 512]).unwrap();
        }
        dev.heat_line(line, vec![], 7).unwrap();
        let report =
            crate::scrub::scrub_device(&mut dev, &crate::scrub::ScrubConfig::with_workers(1))
                .unwrap();
        journal
            .record_scrub_pass(&mut dev, &report.summary, 8)
            .unwrap();
        journal.seal(&mut dev, 8).unwrap();

        let replayed = InstructionJournal::replay(&mut dev, 32, 32).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].actor, "scrub");
        assert!(replayed[0].operation.starts_with("SCRUB epoch=1"));
        assert!(replayed[0].operation.contains("verified=1"));
    }

    #[test]
    fn scrub_state_store_persists_the_delta_across_detach() {
        let mut dev = SeroDevice::with_blocks(96);
        let store = ScrubStateStore::new(64, 8).unwrap();
        let lines = [Line::new(0, 3).unwrap(), Line::new(16, 3).unwrap()];
        for &line in &lines {
            for pba in line.data_blocks() {
                dev.write_block(pba, &[5u8; 512]).unwrap();
            }
            dev.heat_line(line, vec![], 1).unwrap();
        }
        // Blank region: no state yet.
        assert_eq!(store.load(&mut dev).unwrap(), None);

        crate::scrub::scrub_device(&mut dev, &crate::scrub::ScrubConfig::with_workers(1)).unwrap();
        assert!(dev.write_block(lines[1].start() + 2, &[0u8; 512]).is_err());
        let delta_before = crate::scrub::pass_work_list(&dev, crate::scrub::ScrubMode::Incremental);
        store.save(&mut dev).unwrap();

        dev.forget_registry();
        dev.rebuild_registry().unwrap();
        let restore = store.load(&mut dev).unwrap().expect("state saved");
        assert_eq!(restore.restored, 2);
        assert_eq!(dev.scrub_epoch(), 1);
        let delta_after = crate::scrub::pass_work_list(&dev, crate::scrub::ScrubMode::Incremental);
        assert_eq!(delta_after, delta_before);
        assert_eq!(delta_after, vec![lines[1]]);
    }

    #[test]
    fn scrub_state_store_rejects_empty_and_overflowing_regions() {
        assert!(ScrubStateStore::new(0, 0).is_err());
        // A one-block region cannot hold a big scrubbed registry's record
        // (only verified/flagged lines are exported, so scrub first).
        let mut dev = SeroDevice::with_blocks(512);
        for i in 0..32u64 {
            let line = Line::new(i * 8, 3).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &[i as u8; 512]).unwrap();
            }
            dev.heat_line(line, vec![], 1).unwrap();
        }
        crate::scrub::scrub_device(&mut dev, &crate::scrub::ScrubConfig::with_workers(1)).unwrap();
        // Any WMRM block past the heated population works as a region.
        let store = ScrubStateStore::new(dev.block_count() - 8, 1).unwrap();
        assert!(matches!(
            store.save(&mut dev),
            Err(JournalError::BadRegion { .. })
        ));
    }

    #[test]
    fn oversized_fields_truncated() {
        let e = JournalEntry::new(0, &"a".repeat(100), &"b".repeat(500));
        assert_eq!(e.actor.len(), MAX_ACTOR_BYTES);
        assert_eq!(e.operation.len(), MAX_OP_BYTES);
        assert!(!e.to_string().is_empty());
    }
}
