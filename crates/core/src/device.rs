//! The SERO device: WMRM storage whose parts become tamper-evident RO.
//!
//! [`SeroDevice`] wraps the probe device with the protocol §3 of the paper
//! requires:
//!
//! * **Proper read/write segregation** — "magnetically written data must
//!   only be read magnetically and … electrically written data must only be
//!   read electrically". Magnetic access to a registered hash block is a
//!   protocol violation; writes to any block of a heated line are refused
//!   (the line is read-only now).
//! * **heat a line** — the paper's atomic four-step sequence: read the data
//!   blocks, hash them *with their physical addresses*, burn the Manchester
//!   encoding of the hash (plus Figure 3 metadata) into block 0, and verify
//!   it reads back.
//! * **verify a line** — recompute the hash and compare against the heated
//!   one, reporting physical and cryptographic [`Evidence`] rather than a
//!   bare boolean.
//! * **registry recovery** — the hash-block payload is self-describing, so
//!   a full device scan rebuilds the registry after restart, directory
//!   destruction, or bulk erasure (§5.2's fsck argument).
//!
//! # Examples
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_core::line::Line;
//!
//! let mut dev = SeroDevice::with_blocks(16);
//! let line = Line::new(8, 2)?; // blocks 8..12
//! for pba in line.data_blocks() {
//!     dev.write_block(pba, &[pba as u8; 512])?;
//! }
//! dev.heat_line(line, b"quarterly audit".to_vec(), 1_199_145_600)?;
//! assert!(dev.verify_line(line)?.is_intact());
//! // The line is read-only now.
//! assert!(dev.write_block(9, &[0u8; 512]).is_err());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::faults::RetryPolicy;
use crate::layout::{HashBlockPayload, PayloadError};
use crate::line::{Line, LineError};
use crate::tamper::{Evidence, TamperReport, VerifyOutcome};
use core::fmt;
use sero_codec::crc32::crc32;
use sero_codec::manchester::Scan;
use sero_crypto::{Digest, Sha256};
use sero_probe::device::ProbeDevice;
use sero_probe::sector::{DecodedSector, SectorError, SECTOR_DATA_BYTES};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Domain-separation tag for line digests.
const LINE_HASH_DOMAIN: &[u8] = b"SERO-line-v1";

/// Errors surfaced by the SERO device layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeroError {
    /// An underlying sector-level failure.
    Sector(SectorError),
    /// An invalid line description.
    Line(LineError),
    /// Magnetic access to a heated hash block — the protocol forbids
    /// reading electrical data magnetically.
    HashBlockAccess {
        /// The hash block address.
        pba: u64,
    },
    /// Write refused: the block belongs to a heated (read-only) line.
    ReadOnly {
        /// The protecting line.
        line: Line,
        /// The refused block.
        pba: u64,
    },
    /// The requested line overlaps an already heated line without being
    /// identical to it.
    OverlapsHeatedLine {
        /// The requested line.
        line: Line,
        /// The registered line it collides with.
        existing: Line,
    },
    /// A data block could not be read while computing the line hash.
    DataUnreadable {
        /// The failing block.
        pba: u64,
        /// The device error.
        source: SectorError,
    },
    /// Step 4 of the heat operation failed: the hash does not read back
    /// (conflicting earlier heat, damaged cells, …). The medium now carries
    /// the physical evidence.
    HeatVerifyFailed {
        /// The line being heated.
        line: Line,
        /// What the read-back produced.
        reason: String,
    },
    /// A magnetic write did not take on some dots — unexpected heat damage
    /// in a supposedly writable block.
    WriteDegraded {
        /// The block written.
        pba: u64,
        /// Number of dots that refused the write.
        unwritable_dots: usize,
    },
    /// A serialized scrub-state record failed to parse (bad magic,
    /// truncated, or CRC mismatch).
    BadScrubState {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for SeroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeroError::Sector(e) => write!(f, "sector error: {e}"),
            SeroError::Line(e) => write!(f, "line error: {e}"),
            SeroError::HashBlockAccess { pba } => {
                write!(
                    f,
                    "magnetic access to heated hash block {pba} violates the protocol"
                )
            }
            SeroError::ReadOnly { line, pba } => {
                write!(f, "block {pba} is read-only: protected by heated {line}")
            }
            SeroError::OverlapsHeatedLine { line, existing } => {
                write!(f, "{line} overlaps already heated {existing}")
            }
            SeroError::DataUnreadable { pba, source } => {
                write!(f, "data block {pba} unreadable while hashing: {source}")
            }
            SeroError::HeatVerifyFailed { line, reason } => {
                write!(f, "heat verification failed for {line}: {reason}")
            }
            SeroError::WriteDegraded {
                pba,
                unwritable_dots,
            } => {
                write!(
                    f,
                    "write to block {pba} degraded: {unwritable_dots} unwritable dots"
                )
            }
            SeroError::BadScrubState { reason } => {
                write!(f, "scrub state unusable: {reason}")
            }
        }
    }
}

impl std::error::Error for SeroError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeroError::Sector(e) => Some(e),
            SeroError::Line(e) => Some(e),
            SeroError::DataUnreadable { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SectorError> for SeroError {
    fn from(e: SectorError) -> SeroError {
        SeroError::Sector(e)
    }
}

impl From<LineError> for SeroError {
    fn from(e: LineError) -> SeroError {
        SeroError::Line(e)
    }
}

/// Splits an address list into maximal runs of consecutive ascending
/// blocks, returned as `(start, count)` pairs in input order. The batch
/// I/O paths use this to turn scattered block lists into extent transfers.
///
/// # Examples
///
/// ```
/// use sero_core::device::contiguous_runs;
///
/// assert_eq!(contiguous_runs(&[4, 5, 6, 9, 10, 2]), vec![(4, 3), (9, 2), (2, 1)]);
/// assert!(contiguous_runs(&[]).is_empty());
/// ```
pub fn contiguous_runs(pbas: &[u64]) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &pba in pbas {
        match runs.last_mut() {
            Some((start, count)) if start.checked_add(*count) == Some(pba) => *count += 1,
            _ => runs.push((pba, 1)),
        }
    }
    runs
}

/// Lightweight foreground-load estimate, fed by the protocol block-I/O
/// paths ([`SeroDevice::read_block`], [`SeroDevice::write_block`] and
/// their batched forms) and read by scrub-budget controllers.
///
/// Each successful foreground request is one *arrival*; the probe keeps
/// exponentially weighted moving averages of the inter-arrival gap and of
/// the per-request busy time, both on the simulated device clock. Their
/// ratio is the observed utilisation, and `1 − utilisation` is the idle
/// fraction an adaptive scrub budget
/// ([`crate::fleet::AdaptiveBudget`]) may soak up. Verification traffic
/// (scrub's [`SeroDevice::verify_line`]) is deliberately *not* counted —
/// the scrub must never mistake its own load for foreground demand and
/// throttle itself into starvation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadProbe {
    arrivals: u64,
    last_arrival_ns: u128,
    ewma_gap_ns: u64,
    ewma_busy_ns: u64,
}

impl LoadProbe {
    /// EWMA weight: `new = (3·old + sample) / 4`, seeded by the first
    /// sample — the same quarter-weight the slice-cost estimator in
    /// [`crate::sched`] uses.
    fn ewma(old: u64, sample: u64) -> u64 {
        if old == 0 {
            sample
        } else {
            (3 * old + sample) / 4
        }
    }

    /// Records one foreground request spanning `[start_ns, end_ns]` on
    /// the device clock.
    pub(crate) fn note(&mut self, start_ns: u128, end_ns: u128) {
        if self.arrivals > 0 && start_ns > self.last_arrival_ns {
            let gap = (start_ns - self.last_arrival_ns) as u64;
            self.ewma_gap_ns = Self::ewma(self.ewma_gap_ns, gap);
        }
        self.ewma_busy_ns = Self::ewma(self.ewma_busy_ns, (end_ns - start_ns) as u64);
        self.last_arrival_ns = start_ns;
        self.arrivals += 1;
    }

    /// Foreground requests observed since attach.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// EWMA of the gap between consecutive foreground arrivals, device ns
    /// (`0` until two arrivals have been seen).
    pub fn ewma_gap_ns(&self) -> u64 {
        self.ewma_gap_ns
    }

    /// EWMA of per-request device busy time, ns (`0` before the first
    /// arrival).
    pub fn ewma_busy_ns(&self) -> u64 {
        self.ewma_busy_ns
    }

    /// Observed foreground utilisation in `[0, 1]`: EWMA busy time over
    /// EWMA inter-arrival gap. A device that has seen fewer than two
    /// arrivals reports `0.0` (idle until proven busy); a gap shorter
    /// than the work it delivers saturates at `1.0`.
    pub fn utilization(&self) -> f64 {
        if self.arrivals < 2 || self.ewma_gap_ns == 0 {
            return 0.0;
        }
        (self.ewma_busy_ns as f64 / self.ewma_gap_ns as f64).min(1.0)
    }
}

/// A registered heated line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineRecord {
    /// The heated line.
    pub line: Line,
    /// Heat timestamp from the payload.
    pub timestamp: u64,
    /// The digest burned into the hash block.
    pub digest: Digest,
    /// The scrub epoch this line was last verified in (`0` = never
    /// verified by a completed scrub pass — freshly heated or freshly
    /// rediscovered). Incremental scrubs use this to skip lines already
    /// covered by the last pass.
    pub verified_epoch: u64,
    /// Suspicious-activity flag: set when verification found tamper
    /// evidence or when a refused protocol access (write into the line,
    /// magnetic read of its hash block) touched it. Flagged lines are
    /// re-verified by every incremental scrub until a pass finds them
    /// intact.
    pub flagged: bool,
}

/// Result of a full-device registry rebuild.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistryScan {
    /// Lines recovered from valid hash blocks.
    pub lines_found: usize,
    /// Already-registered lines whose blocks the incremental scan skipped
    /// (always 0 for a full [`SeroDevice::rebuild_registry`]).
    pub lines_skipped: usize,
    /// Blocks whose electrical area is written but tampered or malformed —
    /// each one is standing evidence.
    pub suspicious_blocks: Vec<u64>,
    /// Pairs of discovered lines that overlap. Two valid hash payloads can
    /// only overlap if someone heated a line *inside* an existing one — the
    /// §5.1 splitting/coalescing attack — so every pair is evidence.
    pub overlapping_lines: Vec<(Line, Line)>,
}

/// Outcome of [`SeroDevice::import_scrub_state`]: how much persisted
/// scrub bookkeeping could actually be applied to the live registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubStateRestore {
    /// Records applied: the line is registered with the same coordinates
    /// and digest, so its epoch/flag were restored.
    pub restored: usize,
    /// Records whose line is registered but with a different digest (the
    /// line was replaced since the state was saved) — left unverified.
    pub stale: usize,
    /// Records naming lines the registry does not know — skipped.
    pub unknown: usize,
}

/// Capacity accounting of a SERO device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeroStats {
    /// Total blocks on the device.
    pub total_blocks: u64,
    /// Blocks inside heated (read-only) lines, hash blocks included.
    pub read_only_blocks: u64,
    /// Blocks still available for write-many use.
    pub wmrm_blocks: u64,
    /// Number of heated lines.
    pub heated_lines: usize,
}

/// Number of leading Manchester cells the registry pre-probe reads: hash
/// payloads are prefix-contiguous, so an all-blank prefix means a blank
/// block at a fraction of the full `ers` cost.
pub const REGISTRY_PREFIX_CELLS: usize = 16;

/// Magic framing a serialized scrub-state record ("SEPC").
const SCRUB_STATE_MAGIC: u32 = 0x53455043;

/// Version byte of the scrub-state record format.
const SCRUB_STATE_VERSION: u8 = 1;

/// A tamper-evident SERO storage device.
#[derive(Debug, Clone)]
pub struct SeroDevice {
    probe: ProbeDevice,
    registry: BTreeMap<u64, LineRecord>,
    /// Number of completed scrub passes (see [`crate::scrub`]); epoch `N`
    /// means `N` passes have finished since attach.
    scrub_epoch: u64,
    /// Foreground arrival/busy estimate for adaptive scrub budgets.
    load: LoadProbe,
    /// Bounded-retry policy for transient sector faults.
    retry: RetryPolicy,
    /// Blocks that exhausted their retries — suspect hardware the layers
    /// above must route around (see [`crate::faults`]).
    quarantined: BTreeSet<u64>,
}

impl SeroDevice {
    /// Wraps an existing probe device.
    pub fn new(probe: ProbeDevice) -> SeroDevice {
        SeroDevice {
            probe,
            registry: BTreeMap::new(),
            scrub_epoch: 0,
            load: LoadProbe::default(),
            retry: RetryPolicy::default(),
            quarantined: BTreeSet::new(),
        }
    }

    /// Convenience constructor: a default probe device with `blocks`
    /// 512-byte blocks.
    pub fn with_blocks(blocks: u64) -> SeroDevice {
        SeroDevice::new(ProbeDevice::builder().blocks(blocks).build())
    }

    /// Number of blocks.
    pub fn block_count(&self) -> u64 {
        self.probe.block_count()
    }

    /// The underlying probe device (clock, counters, medium inspection).
    pub fn probe(&self) -> &ProbeDevice {
        &self.probe
    }

    /// Mutable access to the underlying probe device.
    ///
    /// This deliberately bypasses every SERO protocol check — it is the
    /// §5 threat model's "connect it to a laptop with the appropriate
    /// interface". Normal clients never need it.
    pub fn probe_mut(&mut self) -> &mut ProbeDevice {
        &mut self.probe
    }

    /// The registered heated lines, in address order.
    pub fn heated_lines(&self) -> impl Iterator<Item = &LineRecord> {
        self.registry.values()
    }

    /// The heated line containing `pba`, if any is registered.
    pub fn line_of(&self, pba: u64) -> Option<Line> {
        self.registry
            .range(..=pba)
            .next_back()
            .map(|(_, r)| r.line)
            .filter(|l| l.contains(pba))
    }

    /// True when `pba` may no longer be written through the SERO protocol.
    pub fn is_read_only(&self, pba: u64) -> bool {
        self.line_of(pba).is_some()
    }

    /// Capacity accounting: how much of the device has aged into RO.
    pub fn stats(&self) -> SeroStats {
        let ro: u64 = self.registry.values().map(|r| r.line.len()).sum();
        SeroStats {
            total_blocks: self.block_count(),
            read_only_blocks: ro,
            wmrm_blocks: self.block_count() - ro,
            heated_lines: self.registry.len(),
        }
    }

    /// Number of completed scrub passes over this device.
    pub fn scrub_epoch(&self) -> u64 {
        self.scrub_epoch
    }

    /// The foreground-load estimate scrub-budget controllers read (see
    /// [`LoadProbe`]).
    #[must_use]
    pub fn load_probe(&self) -> &LoadProbe {
        &self.load
    }

    // --- fault tolerance --------------------------------------------------

    /// The bounded-retry policy in force for transient sector faults.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the retry policy (see [`crate::faults::RetryPolicy`]).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = RetryPolicy::attempts(policy.max_attempts);
    }

    /// Blocks that exhausted their retries, in address order.
    pub fn quarantined_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.quarantined.iter().copied()
    }

    /// Number of quarantined blocks.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// True when `pba` has been quarantined.
    pub fn is_quarantined(&self, pba: u64) -> bool {
        self.quarantined.contains(&pba)
    }

    /// True when any block is quarantined — the trigger for the file
    /// system's degraded mode (serve reads and `Verify`, refuse writes).
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Clears `pba` from quarantine after out-of-band repair (or a scrub
    /// pass that found the region healthy again). Returns whether the
    /// block was quarantined.
    pub fn clear_quarantine(&mut self, pba: u64) -> bool {
        self.quarantined.remove(&pba)
    }

    /// Quarantines `pba` after exhausted retries: the block is recorded
    /// suspect and, if it lies inside a registered line, the line is
    /// flagged so the next incremental scrub chases it — the same delta
    /// refused protocol accesses feed.
    fn quarantine_block(&mut self, pba: u64) {
        self.quarantined.insert(pba);
        if let Some(line) = self.line_of(pba) {
            self.flag_line(line);
        }
    }

    /// Bounded re-read of `pba` after a first failure `first`: up to
    /// `retry.max_attempts` total tries, returning the first success or
    /// the last error. Each attempt pays its own seek — a retry is a real
    /// sled trip, not a free replay.
    fn retry_read(&mut self, pba: u64, first: SectorError) -> Result<DecodedSector, SectorError> {
        let mut last = first;
        for _ in 1..self.retry.max_attempts {
            match self.probe.mrs(pba) {
                Ok(sector) => return Ok(sector),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Bounded re-write of `pba` after a degraded first attempt reporting
    /// `first_dots` unwritable dots. Magnetic writes are idempotent, so a
    /// rewrite of the same data is safe; returns `Ok` once a clean report
    /// comes back, or the final [`SeroError::WriteDegraded`].
    fn retry_write(
        &mut self,
        pba: u64,
        data: &[u8; SECTOR_DATA_BYTES],
        first_dots: usize,
    ) -> Result<(), SeroError> {
        let mut dots = first_dots;
        for _ in 1..self.retry.max_attempts {
            match self.probe.mws(pba, data) {
                Ok(report) if report.unwritable_dots == 0 => return Ok(()),
                Ok(report) => dots = report.unwritable_dots,
                Err(e) => return Err(SeroError::Sector(e)),
            }
        }
        Err(SeroError::WriteDegraded {
            pba,
            unwritable_dots: dots,
        })
    }

    /// Marks `line` as suspicious: the next incremental scrub will
    /// re-verify it even though it was covered by the last pass. The
    /// protocol paths call this automatically on refused accesses; external
    /// monitors (an intrusion detector, the file system) may call it for
    /// anything else they find fishy. Returns whether a registered line was
    /// actually flagged.
    pub fn flag_line(&mut self, line: Line) -> bool {
        match self.registry.get_mut(&line.start()) {
            Some(record) if record.line == line => {
                record.flagged = true;
                true
            }
            _ => false,
        }
    }

    /// Stamps a line's scrub bookkeeping after a completed pass verified
    /// it: records the epoch and the (possibly cleared) suspicion flag.
    pub(crate) fn stamp_scrubbed(&mut self, line: Line, epoch: u64, flagged: bool) {
        if let Some(record) = self.registry.get_mut(&line.start()) {
            if record.line == line {
                record.verified_epoch = epoch;
                record.flagged = flagged;
            }
        }
    }

    /// Advances the completed-pass counter (called by the scrub controller
    /// when a pass finishes).
    pub(crate) fn complete_scrub_pass(&mut self, epoch: u64) {
        self.scrub_epoch = self.scrub_epoch.max(epoch);
    }

    /// Serializes the scrub bookkeeping — the completed-pass epoch plus
    /// every line's `verified_epoch`/`flagged` and a digest prefix to
    /// guard against replaced lines — into a self-checking byte record
    /// (magic ‖ version ‖ payload ‖ CRC-32).
    ///
    /// The registry itself is recovered from the *medium* (the hash-block
    /// payloads are physically self-describing), but those payloads are
    /// burned once and immutable, so the mutable scrub bookkeeping has to
    /// live elsewhere: callers embed this record in rewritable WMRM
    /// storage — the file system's checkpoint
    /// (`sero-fs`), or a raw region via
    /// [`crate::journal::ScrubStateStore`] — and feed it back through
    /// [`SeroDevice::import_scrub_state`] after a remount, so the next
    /// incremental scrub resumes from the persisted delta instead of
    /// falling back to a full pass.
    ///
    /// The record is an *availability* optimization, not an integrity
    /// root: an attacker who forges it can at most delay re-verification
    /// of a line until the next [`crate::scrub::ScrubConfig::full_every`]
    /// full pass, exactly the window the incremental design already
    /// accepts.
    ///
    /// Only *informative* records are exported: a line with
    /// `verified_epoch == 0 && !flagged` is exactly what a registry
    /// rebuild produces anyway, so persisting it would say nothing.
    pub fn export_scrub_state(&self) -> Vec<u8> {
        self.export_scrub_state_capped(usize::MAX)
    }

    /// [`SeroDevice::export_scrub_state`] bounded to `max_bytes`: when
    /// the informative records do not all fit (a fixed checkpoint region,
    /// say), the export degrades by *dropping* records instead of
    /// overflowing — flagged lines are kept in preference to merely
    /// verified ones (losing a flag loses evidence-chasing state; losing
    /// a verified record merely costs one redundant re-verify), and a cap
    /// too small for even the empty record yields an empty `Vec` (no
    /// state; the next pass runs full).
    pub fn export_scrub_state_capped(&self, max_bytes: usize) -> Vec<u8> {
        const HEADER_BYTES: usize = 4 + 1 + 8 + 4;
        const RECORD_BYTES: usize = 8 + 1 + 8 + 1 + 8;
        const CRC_BYTES: usize = 4;
        if max_bytes < HEADER_BYTES + CRC_BYTES {
            return Vec::new();
        }
        let mut records: Vec<&LineRecord> = self
            .registry
            .values()
            .filter(|r| r.verified_epoch != 0 || r.flagged)
            .collect();
        let max_records = (max_bytes - HEADER_BYTES - CRC_BYTES) / RECORD_BYTES;
        if records.len() > max_records {
            records.sort_by_key(|r| (!r.flagged, r.line.start()));
            records.truncate(max_records);
            records.sort_by_key(|r| r.line.start());
        }
        let mut buf = Vec::with_capacity(HEADER_BYTES + records.len() * RECORD_BYTES + CRC_BYTES);
        buf.extend_from_slice(&SCRUB_STATE_MAGIC.to_le_bytes());
        buf.push(SCRUB_STATE_VERSION);
        buf.extend_from_slice(&self.scrub_epoch.to_le_bytes());
        buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
        for record in records {
            buf.extend_from_slice(&record.line.start().to_le_bytes());
            buf.push(record.line.order() as u8);
            buf.extend_from_slice(&record.verified_epoch.to_le_bytes());
            buf.push(record.flagged as u8);
            buf.extend_from_slice(&record.digest.as_bytes()[..8]);
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Applies a record produced by [`SeroDevice::export_scrub_state`] to
    /// the live registry: restores `verified_epoch`/`flagged` for every
    /// line still registered with the same coordinates and digest prefix,
    /// and advances the completed-pass epoch to the persisted value.
    /// Call *after* the registry is populated (mount's
    /// [`SeroDevice::refresh_registry`]); lines the record does not match
    /// stay unverified and are simply due in the next pass.
    ///
    /// # Errors
    ///
    /// [`SeroError::BadScrubState`] when the record is truncated, carries
    /// the wrong magic/version, or fails its CRC — the caller should
    /// treat that as "no usable state" and let the next pass run full.
    pub fn import_scrub_state(&mut self, bytes: &[u8]) -> Result<ScrubStateRestore, SeroError> {
        let bad = |reason: &str| SeroError::BadScrubState {
            reason: reason.to_string(),
        };
        if bytes.len() < 4 + 1 + 8 + 4 + 4 {
            return Err(bad("record truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4"));
        if crc32(body) != stored_crc {
            return Err(bad("crc mismatch"));
        }
        if u32::from_le_bytes(body[..4].try_into().expect("4")) != SCRUB_STATE_MAGIC {
            return Err(bad("bad magic"));
        }
        if body[4] != SCRUB_STATE_VERSION {
            return Err(bad("unknown version"));
        }
        let epoch = u64::from_le_bytes(body[5..13].try_into().expect("8"));
        let count = u32::from_le_bytes(body[13..17].try_into().expect("4")) as usize;
        const RECORD_BYTES: usize = 8 + 1 + 8 + 1 + 8;
        if body.len() != 17 + count * RECORD_BYTES {
            return Err(bad("length disagrees with record count"));
        }
        let mut restore = ScrubStateRestore::default();
        for i in 0..count {
            let at = 17 + i * RECORD_BYTES;
            let start = u64::from_le_bytes(body[at..at + 8].try_into().expect("8"));
            let order = body[at + 8] as u32;
            let verified_epoch = u64::from_le_bytes(body[at + 9..at + 17].try_into().expect("8"));
            let flagged = body[at + 17] != 0;
            let digest8 = &body[at + 18..at + 26];
            match self.registry.get_mut(&start) {
                Some(record) if record.line.order() == order => {
                    if &record.digest.as_bytes()[..8] == digest8 {
                        record.verified_epoch = verified_epoch;
                        record.flagged = record.flagged || flagged;
                        restore.restored += 1;
                    } else {
                        restore.stale += 1;
                    }
                }
                Some(_) => restore.stale += 1,
                None => restore.unknown += 1,
            }
        }
        self.scrub_epoch = self.scrub_epoch.max(epoch);
        Ok(restore)
    }

    /// Inserts or refreshes a registry record, preserving the scrub
    /// bookkeeping of an existing identical line (re-verifying a line must
    /// not reset its epoch; re-heating or replacing it must).
    fn register(&mut self, line: Line, timestamp: u64, digest: Digest, reset_epoch: bool) {
        let entry = self
            .registry
            .entry(line.start())
            .or_insert_with(|| LineRecord {
                line,
                timestamp,
                digest,
                verified_epoch: 0,
                flagged: false,
            });
        if entry.line != line || reset_epoch {
            entry.verified_epoch = 0;
            entry.flagged = false;
        }
        entry.line = line;
        entry.timestamp = timestamp;
        entry.digest = digest;
    }

    /// Reads a WMRM or heated-data block magnetically.
    ///
    /// # Errors
    ///
    /// [`SeroError::HashBlockAccess`] for registered hash blocks (the
    /// protocol requires `ers` there); the refused line is flagged for the
    /// next incremental scrub. Sector errors otherwise.
    pub fn read_block(&mut self, pba: u64) -> Result<[u8; SECTOR_DATA_BYTES], SeroError> {
        if let Some(line) = self.line_of(pba) {
            if line.hash_block() == pba {
                self.flag_line(line);
                return Err(SeroError::HashBlockAccess { pba });
            }
        }
        let start = self.probe.clock().elapsed_ns();
        let sector = match self.probe.mrs(pba) {
            Ok(sector) => sector,
            Err(first) => match self.retry_read(pba, first) {
                Ok(sector) => sector,
                Err(e) => {
                    self.quarantine_block(pba);
                    return Err(SeroError::Sector(e));
                }
            },
        };
        self.load.note(start, self.probe.clock().elapsed_ns());
        Ok(sector.data)
    }

    /// Writes a block magnetically.
    ///
    /// # Errors
    ///
    /// [`SeroError::ReadOnly`] inside heated lines (the refused line is
    /// flagged for the next incremental scrub — an attempted write into
    /// frozen data is exactly the activity a scrub should chase);
    /// [`SeroError::WriteDegraded`] when heat damage kept dots from
    /// accepting the write; sector errors otherwise.
    pub fn write_block(
        &mut self,
        pba: u64,
        data: &[u8; SECTOR_DATA_BYTES],
    ) -> Result<(), SeroError> {
        if let Some(line) = self.line_of(pba) {
            self.flag_line(line);
            return Err(SeroError::ReadOnly { line, pba });
        }
        let start = self.probe.clock().elapsed_ns();
        let report = self.probe.mws(pba, data)?;
        let result = if report.unwritable_dots > 0 {
            self.retry_write(pba, data, report.unwritable_dots)
        } else {
            Ok(())
        };
        self.load.note(start, self.probe.clock().elapsed_ns());
        if result.is_err() {
            self.quarantine_block(pba);
        }
        result
    }

    /// Reads many blocks with the same protocol checks as
    /// [`SeroDevice::read_block`], batching consecutive addresses into
    /// extent transfers (one seek per run instead of one per block).
    ///
    /// The returned sectors are in `pbas` order. Addresses need not be
    /// sorted or contiguous; each maximal ascending run becomes one
    /// transfer.
    ///
    /// # Errors
    ///
    /// [`SeroError::HashBlockAccess`] if *any* requested block is a
    /// registered hash block (checked up front, before any I/O); sector
    /// errors abort at the failing block, as the single-block loop would.
    pub fn read_blocks(&mut self, pbas: &[u64]) -> Result<Vec<[u8; SECTOR_DATA_BYTES]>, SeroError> {
        for &pba in pbas {
            if let Some(line) = self.line_of(pba) {
                if line.hash_block() == pba {
                    self.flag_line(line);
                    return Err(SeroError::HashBlockAccess { pba });
                }
            }
        }
        let t0 = self.probe.clock().elapsed_ns();
        let mut out = Vec::with_capacity(pbas.len());
        for (start, count) in contiguous_runs(pbas) {
            // Stream the run; on a sector fault, retry the failing block
            // alone, then resume the stream right after it. Only a block
            // that exhausts its retries aborts the batch (quarantined),
            // exactly where the single-block loop would have stopped.
            let mut done = 0u64;
            while done < count {
                let mut failure: Option<(u64, SectorError)> = None;
                self.probe.read_blocks_with(
                    start + done,
                    count - done,
                    |pba, sector| match sector {
                        Ok(sector) => {
                            out.push(sector.data);
                            true
                        }
                        Err(e) => {
                            failure = Some((pba, e));
                            false
                        }
                    },
                )?;
                match failure {
                    None => break,
                    Some((pba, first)) => {
                        done = pba - start;
                        match self.retry_read(pba, first) {
                            Ok(sector) => {
                                out.push(sector.data);
                                done += 1;
                            }
                            Err(e) => {
                                self.quarantine_block(pba);
                                return Err(SeroError::Sector(e));
                            }
                        }
                    }
                }
            }
        }
        // One batched request is one foreground arrival, however many
        // extents it spanned.
        self.load.note(t0, self.probe.clock().elapsed_ns());
        Ok(out)
    }

    /// Reads many blocks like [`SeroDevice::read_blocks`], but serves
    /// *all* the extent runs in one elevator sweep, in whichever
    /// direction starts nearer the sled: ascending, one head-of-batch
    /// seek then settle-free streaming over the gaps between runs; or
    /// descending, run by run from the top, so a batch that follows an
    /// ascending one needs no cross-span backtrack seek. Consecutive
    /// queue batches therefore alternate direction like a real elevator.
    /// This is the admission scheduler's coalesced-read path — callers
    /// pass the sorted, deduplicated union of a whole queue batch;
    /// sectors come back in `pbas` order either way.
    ///
    /// # Errors
    ///
    /// Same contract as [`SeroDevice::read_blocks`]: hash-block touches
    /// are refused (and flagged) up front; sector errors abort at the
    /// failing block.
    pub fn read_blocks_sweep(
        &mut self,
        pbas: &[u64],
    ) -> Result<Vec<[u8; SECTOR_DATA_BYTES]>, SeroError> {
        for &pba in pbas {
            if let Some(line) = self.line_of(pba) {
                if line.hash_block() == pba {
                    self.flag_line(line);
                    return Err(SeroError::HashBlockAccess { pba });
                }
            }
        }
        let t0 = self.probe.clock().elapsed_ns();
        let runs = contiguous_runs(pbas);
        let descending = match (runs.first(), runs.last()) {
            (Some(&(first, _)), Some(&(last_start, last_len))) => {
                let pos = self.probe.position_block();
                pos.abs_diff(last_start + last_len - 1) < pos.abs_diff(first)
            }
            _ => false,
        };
        let mut by_pba: HashMap<u64, [u8; SECTOR_DATA_BYTES]> = HashMap::with_capacity(pbas.len());
        let mut failure: Option<(u64, SectorError)> = None;
        fn drain(
            by_pba: &mut HashMap<u64, [u8; SECTOR_DATA_BYTES]>,
            failure: &mut Option<(u64, SectorError)>,
            pba: u64,
            sector: Result<DecodedSector, SectorError>,
        ) -> bool {
            match sector {
                Ok(sector) => {
                    by_pba.insert(pba, sector.data);
                    true
                }
                Err(e) => {
                    *failure = Some((pba, e));
                    false
                }
            }
        }
        if descending {
            // Top-down: each run is its own short descent (a seek per
            // run, ascending streaming within it); total travel is one
            // span instead of a backtrack seek plus a full sweep.
            for run in runs.iter().rev() {
                self.probe
                    .read_block_runs_with(std::slice::from_ref(run), |pba, sector| {
                        drain(&mut by_pba, &mut failure, pba, sector)
                    })?;
                if failure.is_some() {
                    break;
                }
            }
        } else {
            self.probe.read_block_runs_with(&runs, |pba, sector| {
                drain(&mut by_pba, &mut failure, pba, sector)
            })?;
        }
        // Recovery: retry the failing block alone, then sweep whatever is
        // still missing (the aborted tail) in ascending runs. Only a block
        // that exhausts its retries aborts the batch — quarantined, as the
        // single-block loop would have left it.
        while let Some((pba, first)) = failure.take() {
            match self.retry_read(pba, first) {
                Ok(sector) => {
                    by_pba.insert(pba, sector.data);
                }
                Err(e) => {
                    self.quarantine_block(pba);
                    return Err(SeroError::Sector(e));
                }
            }
            let missing: Vec<u64> = pbas
                .iter()
                .copied()
                .filter(|p| !by_pba.contains_key(p))
                .collect();
            if missing.is_empty() {
                break;
            }
            self.probe
                .read_block_runs_with(&contiguous_runs(&missing), |pba, sector| {
                    drain(&mut by_pba, &mut failure, pba, sector)
                })?;
        }
        let out = pbas.iter().map(|p| by_pba[p]).collect();
        self.load.note(t0, self.probe.clock().elapsed_ns());
        Ok(out)
    }

    /// Writes many blocks like [`SeroDevice::write_blocks`], but streams
    /// all the extent runs in one sled sweep — the admission scheduler's
    /// coalesced-write path. `data[i]` lands on `pbas[i]`; pass ascending
    /// addresses for the settle-free streaming to pay off.
    ///
    /// # Errors
    ///
    /// Same contract as [`SeroDevice::write_blocks`]: heated-line targets
    /// are refused (and flagged) up front; the sweep stops at the first
    /// degraded block with the remaining blocks untouched.
    ///
    /// # Panics
    ///
    /// Panics when `pbas` and `data` differ in length — a caller bug.
    pub fn write_blocks_sweep(
        &mut self,
        pbas: &[u64],
        data: &[[u8; SECTOR_DATA_BYTES]],
    ) -> Result<(), SeroError> {
        assert_eq!(
            pbas.len(),
            data.len(),
            "write_blocks_sweep needs one sector per address"
        );
        for &pba in pbas {
            if let Some(line) = self.line_of(pba) {
                self.flag_line(line);
                return Err(SeroError::ReadOnly { line, pba });
            }
        }
        let t0 = self.probe.clock().elapsed_ns();
        let runs = contiguous_runs(pbas);
        let mut degraded: Option<(u64, usize)> = None;
        self.probe
            .write_block_runs_with(&runs, data, |pba, report| {
                if report.unwritable_dots > 0 {
                    degraded = Some((pba, report.unwritable_dots));
                    return false;
                }
                true
            })?;
        // Recovery: rewrite the degraded block alone (magnetic writes are
        // idempotent), then resume the sweep over the untouched tail. A
        // block that stays degraded after its retries aborts the batch,
        // quarantined, with the tail unwritten — as before.
        while let Some((pba, dots)) = degraded.take() {
            let at = pbas
                .iter()
                .position(|&p| p == pba)
                .expect("degraded block is in the batch");
            if let Err(e) = self.retry_write(pba, &data[at], dots) {
                self.quarantine_block(pba);
                return Err(e);
            }
            let tail_pbas = &pbas[at + 1..];
            if tail_pbas.is_empty() {
                break;
            }
            self.probe.write_block_runs_with(
                &contiguous_runs(tail_pbas),
                &data[at + 1..],
                |pba, report| {
                    if report.unwritable_dots > 0 {
                        degraded = Some((pba, report.unwritable_dots));
                        return false;
                    }
                    true
                },
            )?;
        }
        self.load.note(t0, self.probe.clock().elapsed_ns());
        Ok(())
    }

    /// Writes many blocks with the same protocol checks as
    /// [`SeroDevice::write_block`], batching consecutive addresses into
    /// extent transfers. `data[i]` lands on `pbas[i]`.
    ///
    /// # Errors
    ///
    /// [`SeroError::ReadOnly`] if *any* target sits in a heated line
    /// (checked up front, before any block is written);
    /// [`SeroError::WriteDegraded`] at the first degraded block; sector
    /// errors otherwise.
    ///
    /// # Panics
    ///
    /// Panics when `pbas` and `data` differ in length — a caller bug, not
    /// a device condition.
    pub fn write_blocks(
        &mut self,
        pbas: &[u64],
        data: &[[u8; SECTOR_DATA_BYTES]],
    ) -> Result<(), SeroError> {
        assert_eq!(
            pbas.len(),
            data.len(),
            "write_blocks needs one sector per address"
        );
        for &pba in pbas {
            if let Some(line) = self.line_of(pba) {
                self.flag_line(line);
                return Err(SeroError::ReadOnly { line, pba });
            }
        }
        let t0 = self.probe.clock().elapsed_ns();
        let mut offset = 0usize;
        for (start, count) in contiguous_runs(pbas) {
            let count = count as usize;
            let run_data = &data[offset..offset + count];
            // Stream the run; a degraded block is rewritten alone (the
            // write is idempotent) and the stream resumes after it. Only
            // a block that stays degraded past its retries stops the
            // transfer — quarantined, trailing blocks untouched, exactly
            // where the single-block loop would have stopped.
            let mut done = 0usize;
            while done < count {
                let mut degraded: Option<(u64, usize)> = None;
                self.probe.write_blocks_with(
                    start + done as u64,
                    &run_data[done..],
                    |pba, report| {
                        if report.unwritable_dots > 0 {
                            degraded = Some((pba, report.unwritable_dots));
                            return false;
                        }
                        true
                    },
                )?;
                match degraded {
                    None => break,
                    Some((pba, dots)) => {
                        done = (pba - start) as usize;
                        if let Err(e) = self.retry_write(pba, &run_data[done], dots) {
                            self.quarantine_block(pba);
                            return Err(e);
                        }
                        done += 1;
                    }
                }
            }
            offset += count;
        }
        // One batched request is one foreground arrival.
        self.load.note(t0, self.probe.clock().elapsed_ns());
        Ok(())
    }

    /// Computes the line digest: SHA-256 over a domain tag, the line
    /// coordinates, and each data block's physical address and contents —
    /// "a secure hash … of the blocks and their addresses" (§3).
    ///
    /// The data blocks are streamed through the hasher directly from the
    /// probe's extent read — one seek for the whole line, no intermediate
    /// per-block copies, and the transfer stops at the first failure.
    ///
    /// # Errors
    ///
    /// [`SeroError::DataUnreadable`] when a data block fails to read.
    pub fn compute_line_digest(&mut self, line: Line) -> Result<Digest, SeroError> {
        let mut hasher = Sha256::new();
        hasher.update(LINE_HASH_DOMAIN);
        hasher.update(&[line.order() as u8]);
        hasher.update(&line.start().to_le_bytes());
        let first = line.start() + 1;
        let total = line.len() - 1;
        // Stream the data blocks through the hasher; a faulting block is
        // retried alone and, on recovery, hashed in place so the digest
        // stays position-exact. Exhausted retries quarantine the block
        // and surface as `DataUnreadable`.
        let mut done = 0u64;
        while done < total {
            let mut failure: Option<(u64, SectorError)> = None;
            self.probe.read_blocks_with(
                first + done,
                total - done,
                |pba, sector| match sector {
                    Ok(sector) => {
                        hasher.update(&pba.to_le_bytes());
                        hasher.update(&sector.data);
                        true
                    }
                    Err(e) => {
                        failure = Some((pba, e));
                        false
                    }
                },
            )?;
            match failure {
                None => break,
                Some((pba, e)) => {
                    done = pba - first;
                    match self.retry_read(pba, e) {
                        Ok(sector) => {
                            hasher.update(&pba.to_le_bytes());
                            hasher.update(&sector.data);
                            done += 1;
                        }
                        Err(source) => {
                            self.quarantine_block(pba);
                            return Err(SeroError::DataUnreadable { pba, source });
                        }
                    }
                }
            }
        }
        Ok(hasher.finalize())
    }

    /// Heats `line`: the paper's atomic sequence — read, hash, burn,
    /// verify. On success the line is registered read-only and the payload
    /// is returned.
    ///
    /// Re-heating a line whose data is unchanged is harmless and
    /// idempotent; re-heating with changed data fails verification and
    /// leaves `HH` evidence on the medium.
    ///
    /// # Errors
    ///
    /// See [`SeroError`]; notably [`SeroError::OverlapsHeatedLine`] for
    /// straddling requests and [`SeroError::HeatVerifyFailed`] when the
    /// read-back check of step 4 fails.
    pub fn heat_line(
        &mut self,
        line: Line,
        metadata: Vec<u8>,
        timestamp: u64,
    ) -> Result<HashBlockPayload, SeroError> {
        if line.end() > self.block_count() {
            return Err(SeroError::Sector(SectorError::OutOfRange {
                pba: line.end() - 1,
                blocks: self.block_count(),
            }));
        }
        for record in self.registry.values() {
            if record.line.overlaps(&line) && record.line != line {
                return Err(SeroError::OverlapsHeatedLine {
                    line,
                    existing: record.line,
                });
            }
        }

        // Steps 1-2: read the data blocks and hash them with addresses.
        let digest = self.compute_line_digest(line)?;
        let payload = HashBlockPayload::new(line, digest, timestamp, metadata).map_err(|e| {
            SeroError::HeatVerifyFailed {
                line,
                reason: e.to_string(),
            }
        })?;

        // Step 3: burn the Manchester encoding into block 0.
        self.probe.ews(line.hash_block(), &payload.to_bits())?;

        // Step 4: check the hash reads back, "or else fail".
        let scan = self.probe.ers(line.hash_block())?;
        match HashBlockPayload::from_scan(&scan) {
            Ok(read_back) if read_back == payload => {
                self.register(line, timestamp, digest, true);
                Ok(payload)
            }
            Ok(read_back) => Err(SeroError::HeatVerifyFailed {
                line,
                reason: format!(
                    "read-back payload disagrees (heated at {} for {})",
                    read_back.timestamp(),
                    read_back.line()
                ),
            }),
            Err(e) => Err(SeroError::HeatVerifyFailed {
                line,
                reason: e.to_string(),
            }),
        }
    }

    /// Verifies `line` against its heated hash.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (line out of range) are errors; every
    /// tamper finding is reported in the [`VerifyOutcome`].
    pub fn verify_line(&mut self, line: Line) -> Result<VerifyOutcome, SeroError> {
        if line.end() > self.block_count() {
            return Err(SeroError::Sector(SectorError::OutOfRange {
                pba: line.end() - 1,
                blocks: self.block_count(),
            }));
        }
        let mut report = TamperReport::new(line);

        let scan = self.probe.ers(line.hash_block())?;
        let payload = match HashBlockPayload::from_scan(&scan) {
            Ok(p) => p,
            Err(PayloadError::Blank) => return Ok(VerifyOutcome::NotHeated),
            Err(PayloadError::Tampered { cells }) => {
                report.push(Evidence::TamperedHashCells { cells });
                self.flag_line(line);
                return Ok(VerifyOutcome::Tampered(report));
            }
            Err(e) => {
                report.push(Evidence::MalformedHashBlock {
                    reason: e.to_string(),
                });
                self.flag_line(line);
                return Ok(VerifyOutcome::Tampered(report));
            }
        };

        if payload.line() != line {
            report.push(Evidence::RelocatedPayload {
                claimed: payload.line(),
                actual: line,
            });
            self.flag_line(line);
            return Ok(VerifyOutcome::Tampered(report));
        }

        // Recompute the digest, streaming the data blocks through the
        // hasher and collecting unreadable blocks as evidence. A faulting
        // block is retried alone before any evidence is minted — a
        // transient fault must not masquerade as tampering — and only a
        // block that exhausts its retries becomes `UnreadableDataBlock`
        // evidence (and quarantined hardware).
        let mut hasher = Sha256::new();
        hasher.update(LINE_HASH_DOMAIN);
        hasher.update(&[line.order() as u8]);
        hasher.update(&line.start().to_le_bytes());
        let first = line.start() + 1;
        let total = line.len() - 1;
        let mut unreadable = false;
        let mut done = 0u64;
        while done < total {
            let mut failure: Option<(u64, SectorError)> = None;
            self.probe.read_blocks_with(
                first + done,
                total - done,
                |pba, sector| match sector {
                    Ok(sector) => {
                        hasher.update(&pba.to_le_bytes());
                        hasher.update(&sector.data);
                        true
                    }
                    Err(e) => {
                        failure = Some((pba, e));
                        false
                    }
                },
            )?;
            match failure {
                None => break,
                Some((pba, e)) => {
                    done = pba - first;
                    match self.retry_read(pba, e) {
                        Ok(sector) => {
                            hasher.update(&pba.to_le_bytes());
                            hasher.update(&sector.data);
                        }
                        Err(e) => {
                            self.quarantine_block(pba);
                            unreadable = true;
                            report.push(Evidence::UnreadableDataBlock {
                                pba,
                                reason: e.to_string(),
                            });
                        }
                    }
                    done += 1;
                }
            }
        }
        if unreadable {
            self.flag_line(line);
            return Ok(VerifyOutcome::Tampered(report));
        }
        let computed = hasher.finalize();
        if computed != *payload.digest() {
            report.push(Evidence::HashMismatch {
                stored: *payload.digest(),
                computed,
            });
            self.flag_line(line);
            return Ok(VerifyOutcome::Tampered(report));
        }

        // Verified: make sure the registry knows this line. An existing
        // record keeps its scrub epoch — a spot verify is not a pass.
        self.register(line, payload.timestamp(), computed, false);
        Ok(VerifyOutcome::Intact { payload })
    }

    /// Steps 1–2 of the heat protocol for one request: range and overlap
    /// validation, the streamed digest read, and payload assembly — no
    /// medium mutation yet.
    fn stage_heat(
        &mut self,
        line: Line,
        metadata: Vec<u8>,
        timestamp: u64,
    ) -> Result<HashBlockPayload, SeroError> {
        if line.end() > self.block_count() {
            return Err(SeroError::Sector(SectorError::OutOfRange {
                pba: line.end() - 1,
                blocks: self.block_count(),
            }));
        }
        for record in self.registry.values() {
            if record.line.overlaps(&line) && record.line != line {
                return Err(SeroError::OverlapsHeatedLine {
                    line,
                    existing: record.line,
                });
            }
        }
        let digest = self.compute_line_digest(line)?;
        HashBlockPayload::new(line, digest, timestamp, metadata).map_err(|e| {
            SeroError::HeatVerifyFailed {
                line,
                reason: e.to_string(),
            }
        })
    }

    /// Steps 3–4 for a group of staged disjoint ascending requests: burn
    /// every hash block in one streaming [`sero_probe`] `ews_blocks` sweep,
    /// read them all back in one `ers_blocks_at` sweep, and register the
    /// survivors. Fills `results` at each staged request's index.
    fn flush_heat_batch(
        &mut self,
        staged: &mut Vec<(usize, Line, HashBlockPayload)>,
        results: &mut [Option<Result<HashBlockPayload, SeroError>>],
    ) {
        if staged.is_empty() {
            return;
        }
        let burns: Vec<(u64, Vec<bool>)> = staged
            .iter()
            .map(|(_, line, payload)| (line.hash_block(), payload.to_bits()))
            .collect();
        if let Err(e) = self.probe.ews_blocks(&burns) {
            for (i, _, _) in staged.drain(..) {
                results[i] = Some(Err(SeroError::Sector(e.clone())));
            }
            return;
        }
        let hash_blocks: Vec<u64> = staged
            .iter()
            .map(|(_, line, _)| line.hash_block())
            .collect();
        let scans = match self.probe.ers_blocks_at(&hash_blocks) {
            Ok(scans) => scans,
            Err(e) => {
                for (i, _, _) in staged.drain(..) {
                    results[i] = Some(Err(SeroError::Sector(e.clone())));
                }
                return;
            }
        };
        for ((i, line, payload), scan) in staged.drain(..).zip(scans) {
            results[i] = Some(match HashBlockPayload::from_scan(&scan) {
                Ok(read_back) if read_back == payload => {
                    self.register(line, payload.timestamp(), *payload.digest(), true);
                    Ok(payload)
                }
                Ok(read_back) => Err(SeroError::HeatVerifyFailed {
                    line,
                    reason: format!(
                        "read-back payload disagrees (heated at {} for {})",
                        read_back.timestamp(),
                        read_back.line()
                    ),
                }),
                Err(e) => Err(SeroError::HeatVerifyFailed {
                    line,
                    reason: e.to_string(),
                }),
            });
        }
    }

    /// Heats a batch of lines with the bulk electrical fast path, returning
    /// per-request results in request order.
    ///
    /// Consecutive requests whose lines are disjoint and ascending — the
    /// shape every bulk producer (archival ingest, the scrub benchmarks,
    /// `SeroFs` freezes of a log region) emits — are *staged*: validated
    /// and digested first, then all their hash blocks are burned in one
    /// streaming `ews` sweep and read back in one streaming `ers` sweep,
    /// paying two sled trips for the whole group instead of two seeks per
    /// line. A request that is not strictly after the previous staged line
    /// flushes the group first, so outcomes and registry state match the
    /// serial [`SeroDevice::heat_line`] loop request for request.
    pub fn heat_lines(
        &mut self,
        requests: Vec<(Line, Vec<u8>, u64)>,
    ) -> Vec<Result<HashBlockPayload, SeroError>> {
        let mut results: Vec<Option<Result<HashBlockPayload, SeroError>>> =
            requests.iter().map(|_| None).collect();
        let mut staged: Vec<(usize, Line, HashBlockPayload)> = Vec::new();
        for (i, (line, metadata, timestamp)) in requests.into_iter().enumerate() {
            if staged
                .last()
                .is_some_and(|(_, prev, _)| line.start() < prev.end())
            {
                self.flush_heat_batch(&mut staged, &mut results);
            }
            match self.stage_heat(line, metadata, timestamp) {
                Ok(payload) => staged.push((i, line, payload)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        self.flush_heat_batch(&mut staged, &mut results);
        results
            .into_iter()
            .map(|r| r.expect("every request resolved"))
            .collect()
    }

    /// Verifies a batch of lines serially on this device, returning
    /// `(line, outcome)` pairs in input order. This is the reference serial
    /// loop the parallel [`crate::scrub`] path is benchmarked against.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (a line out of range); every tamper
    /// finding is data in its [`VerifyOutcome`].
    pub fn verify_lines(
        &mut self,
        lines: &[Line],
    ) -> Result<Vec<(Line, VerifyOutcome)>, SeroError> {
        let mut out = Vec::with_capacity(lines.len());
        for &line in lines {
            out.push((line, self.verify_line(line)?));
        }
        Ok(out)
    }

    /// Physically shreds every block of `line` — the §8 retention
    /// mechanism: "physically destroy the expired data by precise local
    /// heating". The line's registry entry (if any) is retained: the shred
    /// leaves all-`HH` cells behind, so verification keeps reporting what
    /// happened rather than pretending the line never existed.
    ///
    /// # Errors
    ///
    /// Sector-level errors for out-of-range lines.
    pub fn shred_line(&mut self, line: Line) -> Result<(), SeroError> {
        if line.end() > self.block_count() {
            return Err(SeroError::Sector(SectorError::OutOfRange {
                pba: line.end() - 1,
                blocks: self.block_count(),
            }));
        }
        for pba in line.blocks() {
            self.probe.shred(pba)?;
        }
        Ok(())
    }

    /// Scans one block's electrical area and decodes a payload if present.
    ///
    /// # Errors
    ///
    /// Sector-level errors only; payload findings are in the `Result`'s
    /// `Ok` layer.
    pub fn scan_block(
        &mut self,
        pba: u64,
    ) -> Result<Result<HashBlockPayload, PayloadError>, SeroError> {
        let scan = self.probe.ers(pba)?;
        Ok(HashBlockPayload::from_scan(&scan))
    }

    /// Drops every in-memory line record — simulating a restart (or an
    /// attacker clearing volatile state) without touching the medium. The
    /// physical truth is recoverable with
    /// [`SeroDevice::rebuild_registry`].
    pub fn forget_registry(&mut self) {
        self.registry.clear();
    }

    /// Rebuilds the registry from scratch by scanning every block — the
    /// recovery path after restart or after an attacker "clears the
    /// directory structure" (§5.2: a fsck-style scan recovers all heated
    /// files, slowly). The scan runs on the batched electrical fast path
    /// (see [`SeroDevice::refresh_registry`]).
    ///
    /// # Errors
    ///
    /// Propagates sector-level errors (out-of-range cannot occur here).
    pub fn rebuild_registry(&mut self) -> Result<RegistryScan, SeroError> {
        self.registry.clear();
        self.refresh_registry()
    }

    /// The per-block reference rebuild: [`SeroDevice::rebuild_registry`]
    /// with the one-seek-per-block crawl of
    /// [`SeroDevice::refresh_registry_crawl`]. Result-identical to the
    /// batched path but pays a full seek (and settle) per block —
    /// `exp_registry` benchmarks the two against each other and the
    /// property tests pin the equivalence.
    ///
    /// # Errors
    ///
    /// Propagates sector-level errors (out-of-range cannot occur here).
    pub fn rebuild_registry_crawl(&mut self) -> Result<RegistryScan, SeroError> {
        self.registry.clear();
        self.refresh_registry_crawl()
    }

    /// Admits one fully scanned candidate head into the registry, or files
    /// it as evidence. Shared by the batched and crawl scan paths so their
    /// results cannot drift apart.
    fn admit_scanned_block(
        &mut self,
        pba: u64,
        payload: Result<HashBlockPayload, PayloadError>,
        result: &mut RegistryScan,
    ) {
        match payload {
            Ok(payload) => {
                // Trust only payloads physically located at their own
                // hash block and describing a line that fits the
                // device — a forged payload claiming a line that runs
                // off the end could otherwise poison the registry and
                // error every later scrub.
                if payload.line().hash_block() == pba && payload.line().end() <= self.block_count()
                {
                    self.register(payload.line(), payload.timestamp(), *payload.digest(), true);
                    result.lines_found += 1;
                } else {
                    result.suspicious_blocks.push(pba);
                }
            }
            Err(PayloadError::Blank) => {}
            Err(_) => result.suspicious_blocks.push(pba),
        }
    }

    /// Flags every overlapping pair of registered lines as
    /// splitting/coalescing evidence — overlapping valid lines are
    /// physically impossible through the protocol.
    fn collect_overlaps(&self, result: &mut RegistryScan) {
        let lines: Vec<Line> = self.registry.values().map(|r| r.line).collect();
        for (i, a) in lines.iter().enumerate() {
            for b in lines.iter().skip(i + 1) {
                if a.overlaps(b) {
                    result.overlapping_lines.push((*a, *b));
                }
            }
        }
    }

    /// Incrementally refreshes the registry on the batched electrical fast
    /// path: blocks covered by already-registered lines are skipped
    /// outright (their hash payloads were validated when they entered the
    /// registry), and each remaining WMRM gap is *sieved* in one
    /// settle-free sweep ([`sero_probe`]'s `ers_sieve_blocks_with`): one
    /// seek per gap, a prefix probe per block, and candidate heads
    /// escalated to a full scan on the spot — the sled is already on their
    /// track, so no second sweep and no re-seek. On a mostly-blank device
    /// this cuts the dominant per-block cost from seek + settle + probe to
    /// step + probe (`BENCH_registry.json` tracks the ratio); on a
    /// populated registry it additionally shrinks the scan to the unheated
    /// remainder — the mount-time fast path.
    ///
    /// # Errors
    ///
    /// Propagates sector-level errors (out-of-range cannot occur here).
    pub fn refresh_registry(&mut self) -> Result<RegistryScan, SeroError> {
        let mut result = RegistryScan::default();
        // Snapshot the lines known *before* the scan: only those may be
        // skipped. Lines discovered during this scan get their interior
        // blocks probed exactly like a full rebuild would, so rebuild ≡
        // clear + refresh.
        let known: Vec<Line> = self.registry.values().map(|r| r.line).collect();
        let mut next_known = known.iter().copied().peekable();

        // Pure bookkeeping first: split the device into known-line skips
        // and unknown gaps, walking exactly like the reference crawl.
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        let mut gap_start = 0u64;
        let mut pba = 0u64;
        while pba < self.block_count() {
            while next_known.peek().is_some_and(|l| l.end() <= pba) {
                next_known.next();
            }
            match next_known.peek() {
                Some(&line) if line.contains(pba) => {
                    if pba > gap_start {
                        gaps.push((gap_start, pba - gap_start));
                    }
                    result.lines_skipped += 1;
                    pba = line.end();
                    gap_start = pba;
                    next_known.next();
                }
                Some(&line) => pba = line.start().min(self.block_count()),
                None => pba = self.block_count(),
            }
        }
        if self.block_count() > gap_start {
            gaps.push((gap_start, self.block_count() - gap_start));
        }

        // One streamed sieve per gap: payloads are prefix-contiguous, so a
        // block whose first cells are all blank cannot be a line head (and
        // a tampered head shows up in the prefix too). Candidates are
        // escalated to a full scan on the spot — the sled is already on
        // their track — so the whole gap costs one seek plus one sweep.
        let mut full_scans: Vec<(u64, Scan)> = Vec::new();
        for &(start, count) in &gaps {
            self.probe.ers_sieve_blocks_with(
                start,
                count,
                REGISTRY_PREFIX_CELLS,
                |_, prefix| prefix.blank_cells().len() != REGISTRY_PREFIX_CELLS,
                |pba, scan| full_scans.push((pba, scan)),
            )?;
        }
        for (pba, scan) in full_scans {
            self.admit_scanned_block(pba, HashBlockPayload::from_scan(&scan), &mut result);
        }
        self.collect_overlaps(&mut result);
        Ok(result)
    }

    /// The per-block reference refresh: identical decisions to
    /// [`SeroDevice::refresh_registry`], but every pre-probe and candidate
    /// scan pays its own full seek. Kept as the benchmark baseline and the
    /// property-test oracle for the batched path.
    ///
    /// # Errors
    ///
    /// Propagates sector-level errors (out-of-range cannot occur here).
    pub fn refresh_registry_crawl(&mut self) -> Result<RegistryScan, SeroError> {
        let mut result = RegistryScan::default();
        let known: Vec<Line> = self.registry.values().map(|r| r.line).collect();
        let mut next_known = known.iter().copied().peekable();

        let mut pba = 0u64;
        while pba < self.block_count() {
            while next_known.peek().is_some_and(|l| l.end() <= pba) {
                next_known.next();
            }
            if let Some(&line) = next_known.peek() {
                if line.contains(pba) {
                    result.lines_skipped += 1;
                    pba = line.end();
                    next_known.next();
                    continue;
                }
            }
            let prefix = self.probe.ers_cells(pba, REGISTRY_PREFIX_CELLS)?;
            if prefix.blank_cells().len() == REGISTRY_PREFIX_CELLS {
                pba += 1;
                continue;
            }
            let payload = self.scan_block(pba)?;
            self.admit_scanned_block(pba, payload, &mut result);
            pba += 1;
        }
        self.collect_overlaps(&mut result);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_device(blocks: u64) -> SeroDevice {
        let mut dev = SeroDevice::with_blocks(blocks);
        for pba in 0..blocks {
            dev.write_block(pba, &[pba as u8; SECTOR_DATA_BYTES])
                .unwrap();
        }
        dev
    }

    const T0: u64 = 1_199_145_600; // 2008-01-01

    #[test]
    fn heat_then_verify_intact() {
        let mut dev = filled_device(16);
        let line = Line::new(8, 2).unwrap();
        let payload = dev.heat_line(line, b"meta".to_vec(), T0).unwrap();
        assert_eq!(payload.line(), line);
        let outcome = dev.verify_line(line).unwrap();
        assert!(outcome.is_intact(), "{outcome:?}");
        assert_eq!(dev.stats().read_only_blocks, 4);
        assert_eq!(dev.stats().heated_lines, 1);
    }

    #[test]
    fn data_blocks_still_readable_after_heat() {
        // §3: "Blocks 1..2^N−1 of a heated line can still be read
        // magnetically, hence efficiently, and as often as needed."
        let mut dev = filled_device(16);
        let line = Line::new(4, 2).unwrap();
        dev.heat_line(line, vec![], T0).unwrap();
        for pba in line.data_blocks() {
            assert_eq!(dev.read_block(pba).unwrap(), [pba as u8; 512]);
        }
    }

    #[test]
    fn hash_block_magnetic_access_forbidden() {
        let mut dev = filled_device(8);
        let line = Line::new(0, 2).unwrap();
        dev.heat_line(line, vec![], T0).unwrap();
        assert!(matches!(
            dev.read_block(0),
            Err(SeroError::HashBlockAccess { pba: 0 })
        ));
    }

    #[test]
    fn heated_line_is_read_only() {
        let mut dev = filled_device(8);
        let line = Line::new(4, 2).unwrap();
        dev.heat_line(line, vec![], T0).unwrap();
        for pba in line.blocks() {
            assert!(dev.is_read_only(pba));
            assert!(matches!(
                dev.write_block(pba, &[0u8; 512]),
                Err(SeroError::ReadOnly { .. })
            ));
        }
        assert!(!dev.is_read_only(3));
        dev.write_block(3, &[9u8; 512]).unwrap();
    }

    #[test]
    fn reheat_unchanged_line_is_idempotent() {
        let mut dev = filled_device(8);
        let line = Line::new(0, 2).unwrap();
        let first = dev.heat_line(line, b"m".to_vec(), T0).unwrap();
        let second = dev.heat_line(line, b"m".to_vec(), T0).unwrap();
        assert_eq!(first, second);
        assert!(dev.verify_line(line).unwrap().is_intact());
    }

    #[test]
    fn reheat_with_different_metadata_fails_and_marks() {
        let mut dev = filled_device(8);
        let line = Line::new(0, 2).unwrap();
        dev.heat_line(line, b"original".to_vec(), T0).unwrap();
        let err = dev
            .heat_line(line, b"rewrite!".to_vec(), T0 + 5)
            .unwrap_err();
        assert!(matches!(err, SeroError::HeatVerifyFailed { .. }));
        // The conflicting heat left HH cells behind.
        let outcome = dev.verify_line(line).unwrap();
        let report = outcome.report().expect("tampered");
        assert!(report
            .evidence()
            .iter()
            .any(|e| e.kind() == "hash-cells-HH"));
    }

    #[test]
    fn overlapping_heat_rejected() {
        let mut dev = filled_device(16);
        dev.heat_line(Line::new(0, 3).unwrap(), vec![], T0).unwrap();
        let err = dev
            .heat_line(Line::new(4, 2).unwrap(), vec![], T0)
            .unwrap_err();
        assert!(matches!(err, SeroError::OverlapsHeatedLine { .. }));
    }

    #[test]
    fn verify_detects_magnetic_data_rewrite() {
        // §5.1 "mwb inode/data": changing magnetically written data is
        // detected by the verify operation.
        let mut dev = filled_device(16);
        let line = Line::new(8, 2).unwrap();
        dev.heat_line(line, vec![], T0).unwrap();
        // The attacker bypasses the SERO layer and rewrites block 9 via the
        // raw probe device.
        dev.probe_mut().mws(9, &[0xEE; 512]).unwrap();
        let outcome = dev.verify_line(line).unwrap();
        let report = outcome.report().expect("tampered");
        assert!(report
            .evidence()
            .iter()
            .any(|e| e.kind() == "hash-mismatch"));
    }

    #[test]
    fn verify_not_heated_for_blank_line() {
        let mut dev = filled_device(8);
        let line = Line::new(4, 2).unwrap();
        assert_eq!(dev.verify_line(line).unwrap(), VerifyOutcome::NotHeated);
    }

    #[test]
    fn out_of_range_line_rejected() {
        let mut dev = filled_device(8);
        let line = Line::new(8, 2).unwrap();
        assert!(dev.heat_line(line, vec![], T0).is_err());
        assert!(dev.verify_line(line).is_err());
    }

    #[test]
    fn registry_rebuild_recovers_lines() {
        let mut dev = filled_device(32);
        let lines = [
            Line::new(0, 2).unwrap(),
            Line::new(8, 3).unwrap(),
            Line::new(24, 1).unwrap(),
        ];
        for (i, &line) in lines.iter().enumerate() {
            dev.heat_line(line, format!("line-{i}").into_bytes(), T0 + i as u64)
                .unwrap();
        }
        // Simulate restart: forget everything.
        dev.registry.clear();
        assert!(!dev.is_read_only(0));
        let scan = dev.rebuild_registry().unwrap();
        assert_eq!(scan.lines_found, 3);
        assert!(scan.suspicious_blocks.is_empty());
        for line in lines {
            assert!(dev.is_read_only(line.start()));
            assert!(dev.verify_line(line).unwrap().is_intact());
        }
    }

    #[test]
    fn line_of_finds_containing_line() {
        let mut dev = filled_device(16);
        let line = Line::new(8, 3).unwrap();
        dev.heat_line(line, vec![], T0).unwrap();
        assert_eq!(dev.line_of(8), Some(line));
        assert_eq!(dev.line_of(15), Some(line));
        assert_eq!(dev.line_of(7), None);
        assert_eq!(dev.line_of(0), None);
    }

    #[test]
    fn stats_track_aging() {
        // §8: "over the lifetime of the device, the read/write area
        // gradually shrinks".
        let mut dev = filled_device(32);
        assert_eq!(dev.stats().wmrm_blocks, 32);
        dev.heat_line(Line::new(0, 3).unwrap(), vec![], T0).unwrap();
        assert_eq!(dev.stats().wmrm_blocks, 24);
        dev.heat_line(Line::new(16, 3).unwrap(), vec![], T0)
            .unwrap();
        assert_eq!(dev.stats().wmrm_blocks, 16);
        assert_eq!(dev.stats().read_only_blocks, 16);
    }

    #[test]
    fn error_display_nonempty() {
        let line = Line::new(0, 1).unwrap();
        for e in [
            SeroError::HashBlockAccess { pba: 1 },
            SeroError::ReadOnly { line, pba: 1 },
            SeroError::OverlapsHeatedLine {
                line,
                existing: line,
            },
            SeroError::HeatVerifyFailed {
                line,
                reason: "x".into(),
            },
            SeroError::WriteDegraded {
                pba: 0,
                unwritable_dots: 3,
            },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn torn_heat_is_recoverable_by_reheating() {
        // Power loss mid-heat: only a prefix of the payload's cells were
        // burned. Because heating identical cells is idempotent, re-running
        // the heat with unchanged data completes the pattern and the line
        // verifies — the operation is crash-safe.
        let mut dev = filled_device(8);
        let line = Line::new(0, 2).unwrap();
        let digest = dev.compute_line_digest(line).unwrap();
        let payload =
            crate::layout::HashBlockPayload::new(line, digest, T0, b"meta".to_vec()).unwrap();
        let bits = payload.to_bits();

        // The torn write: only the first 40% of the cells land.
        let partial = &bits[..bits.len() * 2 / 5];
        dev.probe_mut().ews(line.hash_block(), partial).unwrap();

        // Before recovery the block reads as malformed (torn) — evidence,
        // not a valid line.
        match dev.scan_block(0).unwrap() {
            Err(crate::layout::PayloadError::Malformed { .. }) => {}
            other => panic!("torn heat should scan malformed, got {other:?}"),
        }

        // Recovery: run the same heat again (same data, same timestamp,
        // same metadata). Prefix cells re-heat idempotently.
        let healed = dev.heat_line(line, b"meta".to_vec(), T0).unwrap();
        assert_eq!(healed, payload);
        assert!(dev.verify_line(line).unwrap().is_intact());
    }

    #[test]
    fn torn_heat_with_changed_data_still_fails_loudly() {
        // If the data changed between the torn heat and the retry, the
        // retry conflicts with the burned prefix and leaves HH evidence.
        let mut dev = filled_device(8);
        let line = Line::new(0, 2).unwrap();
        let digest = dev.compute_line_digest(line).unwrap();
        let payload = crate::layout::HashBlockPayload::new(line, digest, T0, vec![]).unwrap();
        let bits = payload.to_bits();
        dev.probe_mut()
            .ews(line.hash_block(), &bits[..bits.len() / 2])
            .unwrap();

        // Data block rewritten before the retry.
        dev.probe_mut().mws(1, &[0xCC; 512]).unwrap();
        let err = dev.heat_line(line, vec![], T0).unwrap_err();
        assert!(matches!(err, SeroError::HeatVerifyFailed { .. }));
        let outcome = dev.verify_line(line).unwrap();
        assert!(outcome.is_tampered());
    }

    #[test]
    fn batch_read_matches_single_block_loop() {
        let mut dev = filled_device(32);
        dev.heat_line(Line::new(8, 2).unwrap(), vec![], T0).unwrap();
        // A scattered list spanning a heated-line boundary (data blocks of
        // the heated line are still magnetically readable).
        let pbas = [2u64, 3, 4, 9, 10, 11, 20, 7];
        let batch = dev.read_blocks(&pbas).unwrap();
        let mut serial = dev.clone();
        for (i, &pba) in pbas.iter().enumerate() {
            assert_eq!(batch[i], serial.read_block(pba).unwrap(), "pba {pba}");
        }
    }

    #[test]
    fn batch_read_refuses_hash_block_upfront() {
        let mut dev = filled_device(16);
        dev.heat_line(Line::new(4, 2).unwrap(), vec![], T0).unwrap();
        let before = dev.probe().counters().mrs;
        let err = dev.read_blocks(&[0, 1, 4]).unwrap_err();
        assert!(matches!(err, SeroError::HashBlockAccess { pba: 4 }));
        assert_eq!(dev.probe().counters().mrs, before, "no I/O before refusal");
    }

    #[test]
    fn batch_write_round_trips_and_respects_read_only() {
        let mut dev = filled_device(16);
        let pbas = [2u64, 3, 4, 8];
        let data: Vec<[u8; SECTOR_DATA_BYTES]> = (0..4)
            .map(|i| [0xA0 + i as u8; SECTOR_DATA_BYTES])
            .collect();
        dev.write_blocks(&pbas, &data).unwrap();
        for (i, &pba) in pbas.iter().enumerate() {
            assert_eq!(dev.read_block(pba).unwrap(), data[i]);
        }
        dev.heat_line(Line::new(8, 1).unwrap(), vec![], T0).unwrap();
        let err = dev.write_blocks(&[2, 9], &data[..2]).unwrap_err();
        assert!(matches!(err, SeroError::ReadOnly { pba: 9, .. }));
        // The up-front check means block 2 was not touched either.
        assert_eq!(dev.read_block(2).unwrap(), data[0]);
    }

    #[test]
    fn batch_write_stops_at_first_degraded_block() {
        let mut dev = filled_device(16);
        // Vandalise a few dots of block 5's data area so a magnetic write
        // reports unwritable dots there (no heated line registered).
        for k in 0..4 {
            let dot = dev.probe().block_first_dot(5)
                + sero_probe::sector::DATA_AREA_FIRST_DOT as u64
                + k * 16;
            dev.probe_mut().ewb(dot);
        }
        let data: Vec<[u8; SECTOR_DATA_BYTES]> = (0..3)
            .map(|i| [0xC0 + i as u8; SECTOR_DATA_BYTES])
            .collect();
        let err = dev.write_blocks(&[4, 5, 6], &data).unwrap_err();
        assert!(matches!(err, SeroError::WriteDegraded { pba: 5, .. }));
        // The block before the failure was written; the block after was
        // not touched — exactly where the single-block loop would stop.
        assert_eq!(dev.read_block(4).unwrap(), data[0]);
        assert_eq!(dev.read_block(6).unwrap(), [6u8; SECTOR_DATA_BYTES]);
    }

    #[test]
    fn heat_lines_and_verify_lines_batch() {
        let mut dev = filled_device(32);
        let lines = [Line::new(0, 2).unwrap(), Line::new(8, 2).unwrap()];
        let results = dev.heat_lines(vec![
            (lines[0], b"a".to_vec(), T0),
            (lines[1], b"b".to_vec(), T0 + 1),
        ]);
        assert!(results.iter().all(|r| r.is_ok()));
        let outcomes = dev.verify_lines(&lines).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|(_, o)| o.is_intact()));
        // Tamper one line; only it flips.
        dev.probe_mut().mws(9, &[0xEE; 512]).unwrap();
        let outcomes = dev.verify_lines(&lines).unwrap();
        assert!(outcomes[0].1.is_intact());
        assert!(outcomes[1].1.is_tampered());
    }

    #[test]
    fn refresh_registry_skips_known_lines() {
        let mut dev = filled_device(64);
        let lines = [Line::new(0, 3).unwrap(), Line::new(16, 3).unwrap()];
        for &line in &lines {
            dev.heat_line(line, vec![], T0).unwrap();
        }
        // Full rebuild cost from scratch.
        let mut cold = dev.clone();
        cold.registry.clear();
        let erb_before = cold.probe().counters().erb;
        let scan = cold.rebuild_registry().unwrap();
        assert_eq!((scan.lines_found, scan.lines_skipped), (2, 0));
        let full_cost = cold.probe().counters().erb - erb_before;

        // Incremental refresh on the populated registry.
        let erb_before = dev.probe().counters().erb;
        let scan = dev.refresh_registry().unwrap();
        assert_eq!((scan.lines_found, scan.lines_skipped), (0, 2));
        let incr_cost = dev.probe().counters().erb - erb_before;
        assert!(
            incr_cost < full_cost,
            "incremental {incr_cost} erb should be below full {full_cost}"
        );
        // The registry still knows both lines and they still verify.
        for line in lines {
            assert!(dev.verify_line(line).unwrap().is_intact());
        }
    }

    #[test]
    fn refresh_registry_discovers_new_lines() {
        let mut dev = filled_device(32);
        dev.heat_line(Line::new(0, 2).unwrap(), vec![], T0).unwrap();
        dev.refresh_registry().unwrap();
        // A second line heated behind the registry's back (e.g. via a
        // clone that was written elsewhere).
        let mut other = dev.clone();
        other.registry.clear();
        other
            .heat_line(Line::new(16, 2).unwrap(), vec![], T0)
            .unwrap();
        *dev.probe_mut() = other.probe().clone();
        let scan = dev.refresh_registry().unwrap();
        assert_eq!((scan.lines_found, scan.lines_skipped), (1, 1));
        assert!(dev.is_read_only(16));
    }

    #[test]
    fn contiguous_runs_splits_correctly() {
        assert_eq!(contiguous_runs(&[1, 2, 3]), vec![(1, 3)]);
        assert_eq!(contiguous_runs(&[3, 2, 1]), vec![(3, 1), (2, 1), (1, 1)]);
        assert_eq!(contiguous_runs(&[5]), vec![(5, 1)]);
        assert_eq!(contiguous_runs(&[7, 8, 8]), vec![(7, 2), (8, 1)]);
        // Pointers near the address-space end must not overflow the
        // run-extension arithmetic.
        assert_eq!(contiguous_runs(&[u64::MAX, 0]), vec![(u64::MAX, 1), (0, 1)]);
    }

    #[test]
    fn registry_rejects_payload_overrunning_device() {
        // 80-block device; an attacker burns a well-formed payload at the
        // aligned block 64 claiming an order-5 line (64..96, overruns).
        let mut dev = filled_device(80);
        let line = Line::new(64, 5).unwrap();
        let payload = HashBlockPayload::new(line, digest_of(b"forged"), T0, vec![]).unwrap();
        dev.probe_mut().ews(64, &payload.to_bits()).unwrap();

        let scan = dev.rebuild_registry().unwrap();
        assert_eq!(scan.lines_found, 0, "overrunning line must not register");
        assert!(scan.suspicious_blocks.contains(&64));
        assert!(!dev.is_read_only(64));
    }

    fn digest_of(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    #[test]
    fn batched_rebuild_matches_crawl_with_forged_and_shredded_blocks() {
        let mut dev = filled_device(80);
        for (i, &(start, order)) in [(0u64, 2u32), (16, 3), (40, 1)].iter().enumerate() {
            dev.heat_line(Line::new(start, order).unwrap(), vec![i as u8], T0)
                .unwrap();
        }
        // A forged payload claiming a line that overruns the 80-block
        // device (64..96)…
        let forged = Line::new(64, 5).unwrap();
        let payload = HashBlockPayload::new(forged, digest_of(b"forged"), T0, vec![]).unwrap();
        dev.probe_mut().ews(64, &payload.to_bits()).unwrap();
        // …and a shredded block (all-HH evidence).
        dev.probe_mut().shred(70).unwrap();

        let mut crawl_dev = dev.clone();
        let batched = dev.rebuild_registry().unwrap();
        let crawl = crawl_dev.rebuild_registry_crawl().unwrap();
        assert_eq!(batched, crawl, "batched scan diverged from the crawl");
        assert_eq!(batched.lines_found, 3);
        assert_eq!(batched.suspicious_blocks, vec![64, 70]);
        assert_eq!(
            dev.registry, crawl_dev.registry,
            "identical registries either way"
        );
    }

    #[test]
    fn batched_rebuild_is_cheaper_than_crawl() {
        let mut dev = filled_device(128);
        dev.heat_line(Line::new(0, 3).unwrap(), vec![], T0).unwrap();
        let mut crawl_dev = dev.clone();

        let t0 = dev.probe().clock().elapsed_ns();
        dev.rebuild_registry().unwrap();
        let batched_ns = dev.probe().clock().elapsed_ns() - t0;

        let t0 = crawl_dev.probe().clock().elapsed_ns();
        crawl_dev.rebuild_registry_crawl().unwrap();
        let crawl_ns = crawl_dev.probe().clock().elapsed_ns() - t0;

        assert!(
            batched_ns * 3 < crawl_ns,
            "batched {batched_ns} ns should beat the crawl {crawl_ns} ns by >3x"
        );
    }

    #[test]
    fn batched_heat_lines_matches_serial_heat_line() {
        let mut batch_dev = filled_device(64);
        let mut serial_dev = batch_dev.clone();
        let lines = [
            Line::new(0, 2).unwrap(),
            Line::new(8, 3).unwrap(),
            Line::new(32, 2).unwrap(),
        ];
        let requests: Vec<(Line, Vec<u8>, u64)> = lines
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, vec![i as u8], T0 + i as u64))
            .collect();

        let batched = batch_dev.heat_lines(requests.clone());
        let serial: Vec<_> = requests
            .into_iter()
            .map(|(l, m, t)| serial_dev.heat_line(l, m, t))
            .collect();
        assert_eq!(batched, serial);
        assert_eq!(batch_dev.registry, serial_dev.registry);
        // The batch paid two sweeps (burn + read-back) instead of two
        // seeks per line, on top of one digest extent read per line.
        assert!(batch_dev.probe().counters().seeks < serial_dev.probe().counters().seeks);
        for &line in &lines {
            assert!(batch_dev.verify_line(line).unwrap().is_intact());
        }
    }

    #[test]
    fn heat_lines_flushes_on_non_ascending_and_overlapping_requests() {
        let mut dev = filled_device(64);
        let a = Line::new(8, 2).unwrap();
        let inside_a = Line::new(8, 1).unwrap();
        let before_a = Line::new(0, 2).unwrap();
        let results = dev.heat_lines(vec![
            (a, vec![], T0),
            (inside_a, vec![], T0), // overlaps the just-staged line
            (before_a, vec![], T0), // non-ascending, forces its own group
        ]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SeroError::OverlapsHeatedLine { .. })
        ));
        assert!(results[2].is_ok());
        assert!(dev.verify_line(a).unwrap().is_intact());
        assert!(dev.verify_line(before_a).unwrap().is_intact());
    }

    #[test]
    fn refused_accesses_flag_the_line() {
        let mut dev = filled_device(32);
        let line = Line::new(8, 2).unwrap();
        dev.heat_line(line, vec![], T0).unwrap();
        assert!(!dev.heated_lines().next().unwrap().flagged);

        assert!(dev.write_block(9, &[0u8; 512]).is_err());
        assert!(dev.heated_lines().next().unwrap().flagged);

        // flag_line is also the external-monitor hook.
        let mut fresh = filled_device(32);
        fresh.heat_line(line, vec![], T0).unwrap();
        assert!(fresh.read_block(line.hash_block()).is_err());
        assert!(fresh.heated_lines().next().unwrap().flagged);
        assert!(!fresh.flag_line(Line::new(0, 1).unwrap()), "unregistered");
    }

    #[test]
    fn scrub_state_round_trips_across_forget_and_rebuild() {
        let mut dev = filled_device(64);
        let lines = [Line::new(0, 3).unwrap(), Line::new(16, 3).unwrap()];
        for &line in &lines {
            dev.heat_line(line, vec![], T0).unwrap();
        }
        crate::scrub::scrub_device(&mut dev, &crate::scrub::ScrubConfig::with_workers(1)).unwrap();
        // A third line heated after the pass, and a flag raised on the
        // second: the incremental delta pre-detach is {line[1], new}.
        let fresh = Line::new(32, 3).unwrap();
        dev.heat_line(fresh, vec![], T0).unwrap();
        assert!(dev.write_block(lines[1].start() + 1, &[0u8; 512]).is_err());
        let state = dev.export_scrub_state();

        // Detach: all volatile bookkeeping gone; remount rebuilds the
        // registry (epochs reset) and imports the persisted state.
        dev.forget_registry();
        dev.rebuild_registry().unwrap();
        assert!(dev.heated_lines().all(|r| r.verified_epoch == 0));
        assert_eq!(dev.scrub_epoch(), 1, "epoch counter itself survives");
        let restore = dev.import_scrub_state(&state).unwrap();
        // Two informative records restored; the freshly heated line's
        // all-default record (epoch 0, unflagged) is not exported at all.
        assert_eq!(restore.restored, 2);
        assert_eq!((restore.stale, restore.unknown), (0, 0));

        // The restored delta matches the pre-detach delta exactly.
        let delta = crate::scrub::pass_work_list(&dev, crate::scrub::ScrubMode::Incremental);
        assert_eq!(delta, vec![lines[1], fresh]);
    }

    #[test]
    fn capped_scrub_state_drops_records_but_keeps_flags() {
        let mut dev = filled_device(128);
        let lines: Vec<Line> = (0..8).map(|i| Line::new(i * 8, 3).unwrap()).collect();
        for &line in &lines {
            dev.heat_line(line, vec![], T0).unwrap();
        }
        crate::scrub::scrub_device(&mut dev, &crate::scrub::ScrubConfig::with_workers(1)).unwrap();
        assert!(dev.write_block(lines[6].start() + 1, &[0u8; 512]).is_err());

        // Room for only two of the eight informative records.
        let state = dev.export_scrub_state_capped(17 + 2 * 26 + 4);
        dev.forget_registry();
        dev.rebuild_registry().unwrap();
        let restore = dev.import_scrub_state(&state).unwrap();
        assert_eq!(restore.restored, 2);
        // The flagged line survived the cap; dropped lines just land in
        // the next incremental delta (safe degradation).
        let flagged = dev.heated_lines().find(|r| r.line == lines[6]).unwrap();
        assert!(flagged.flagged);
        assert_eq!(flagged.verified_epoch, 1);

        // A cap below even the empty record yields no state at all.
        assert!(dev.export_scrub_state_capped(10).is_empty());
    }

    #[test]
    fn scrub_state_import_rejects_corruption_and_skips_stale_lines() {
        let mut dev = filled_device(64);
        dev.heat_line(Line::new(0, 3).unwrap(), vec![], T0).unwrap();
        crate::scrub::scrub_device(&mut dev, &crate::scrub::ScrubConfig::with_workers(1)).unwrap();
        let mut state = dev.export_scrub_state();

        // A flipped payload byte fails the CRC.
        state[10] ^= 0xFF;
        assert!(matches!(
            dev.import_scrub_state(&state),
            Err(SeroError::BadScrubState { .. })
        ));
        assert!(dev.import_scrub_state(&[1, 2, 3]).is_err(), "truncated");

        // A record for a line the registry no longer knows is counted,
        // not applied; a digest mismatch is stale.
        state[10] ^= 0xFF;
        let mut target = {
            let mut d = filled_device(64);
            // Different data under the same coordinates => different digest.
            d.write_block(1, &[0xAB; 512]).unwrap();
            d.heat_line(Line::new(0, 3).unwrap(), vec![], T0).unwrap();
            d
        };
        let restore = target.import_scrub_state(&state).unwrap();
        assert_eq!(restore.restored, 0);
        assert_eq!(restore.stale, 1);
        assert_eq!(
            target
                .heated_lines()
                .find(|r| r.line.start() == 0)
                .unwrap()
                .verified_epoch,
            0,
            "stale record must not mark the replacement line verified"
        );
    }

    #[test]
    fn load_probe_counts_foreground_not_scrub() {
        let mut dev = filled_device(64);
        let after_fill = dev.load_probe().arrivals();
        assert_eq!(after_fill, 64, "every write_block is one arrival");
        assert!(dev.load_probe().ewma_busy_ns() > 0);
        assert!(dev.load_probe().ewma_gap_ns() > 0);

        // Scrub-side verification must not masquerade as foreground.
        let line = Line::new(0, 3).unwrap();
        dev.heat_line(line, vec![], T0).unwrap();
        let arrivals = dev.load_probe().arrivals();
        dev.verify_line(line).unwrap();
        assert_eq!(dev.load_probe().arrivals(), arrivals, "verify not counted");

        // A batched request is one arrival, however many blocks it moves.
        dev.read_blocks(&[16, 17, 18, 40]).unwrap();
        assert_eq!(dev.load_probe().arrivals(), arrivals + 1);
        let u = dev.load_probe().utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn load_probe_utilization_tracks_duty_cycle() {
        // Back-to-back requests (no idle gaps) read as saturated; the
        // same requests spread over long idle gaps read as mostly idle.
        let mut busy = SeroDevice::with_blocks(64);
        for pba in 0..32 {
            busy.write_block(pba, &[1u8; 512]).unwrap();
        }
        assert!(busy.load_probe().utilization() > 0.9);

        let mut idle = SeroDevice::with_blocks(64);
        for pba in 0..32 {
            idle.write_block(pba, &[1u8; 512]).unwrap();
            idle.probe_mut().advance_clock(100_000_000); // 100 ms of idle
        }
        assert!(idle.load_probe().utilization() < 0.1);

        // A fresh device has seen nothing and claims full idleness.
        assert_eq!(SeroDevice::with_blocks(8).load_probe().utilization(), 0.0);
    }

    #[test]
    fn shredded_line_fails_verification_with_evidence() {
        let mut dev = filled_device(8);
        let line = Line::new(4, 2).unwrap();
        dev.heat_line(line, vec![], T0).unwrap();
        dev.shred_line(line).unwrap();
        let outcome = dev.verify_line(line).unwrap();
        let report = outcome.report().expect("shred is loud");
        assert!(report
            .evidence()
            .iter()
            .any(|e| e.kind() == "hash-cells-HH"));
    }
}
