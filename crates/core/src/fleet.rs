//! Fleet-wide scrub orchestration: staggered, adaptively budgeted
//! background passes across many devices.
//!
//! A single device's [`crate::sched::ScrubScheduler`] makes one pass
//! polite; a *store* is a fleet of devices, and the paper's
//! tamper-evidence guarantee is fleet-wide — an attacker only needs one
//! device whose last verified pass is stale. The security metric is
//! therefore **detection latency**: the device time between tampering and
//! the verified pass that surfaces it. [`FleetScheduler`] minimises it
//! three ways:
//!
//! * **Staggered passes** — at most
//!   [`FleetConfig::max_concurrent`] devices run full passes at once, the
//!   way Venti-style archival stores rotate verification across arenas
//!   instead of lighting up every spindle simultaneously. The rest wait
//!   in priority order and are admitted as slots free up, so aggregate
//!   scrub load on the backing fabric stays bounded while every pass
//!   still completes.
//! * **A shared global budget** — one fleet-wide scrub allowance per
//!   scheduling quantum, *re-divided on every retune* across the active
//!   devices: the grant walk follows the fleet's priority order and
//!   stops when the global allowance runs out, so the sum of per-device
//!   budgets can never exceed the cap (the interleaving property tests
//!   pin this invariant).
//! * **Suspicion-first ordering** — devices carrying *flagged* lines
//!   (tamper evidence, refused protocol accesses) outrank clean ones:
//!   their passes are admitted first and their budget grants are filled
//!   first, so the flagged device's pass finishes before any clean
//!   peer's and the detection latency for the device most likely to be
//!   under attack is the fleet's minimum, not its maximum.
//!
//! Budgets come from measurement, not static knobs: each device's
//! [`crate::device::LoadProbe`] tracks EWMA foreground inter-arrival gaps
//! and busy time, and the [`AdaptiveBudget`] controller converts the
//! observed idle fraction into that device's per-quantum scrub budget —
//! scrub soaks up the idle time that actually exists, instead of a duty
//! cycle someone guessed at deploy time.
//!
//! Each member pass is an ordinary [`ScrubScheduler`], so everything
//! PR 4 proved still holds per device: slices end at line boundaries,
//! pause/resume/cancel work between slices, a cancelled pass never
//! advances the completed epoch, and evidence is byte-identical to an
//! exclusive pass (`tests/fleet_props.rs` extends that equivalence to
//! arbitrary cross-device interleavings). Fleet slices run un-locked
//! ([`ScrubScheduler::run_slice`]): the fleet driver owns its member
//! devices exclusively between foreground phases. A device served
//! concurrently through `sero-fs`'s combiner instead takes the locked
//! path ([`ScrubScheduler::run_slice_locked`]) so in-flight foreground
//! writes defer scrub per line — see the concurrency model in
//! `docs/ARCHITECTURE.md`.
//!
//! # Examples
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_core::fleet::{FleetConfig, FleetScheduler};
//! use sero_core::line::Line;
//!
//! let mut fleet: Vec<SeroDevice> = (0..3).map(|_| SeroDevice::with_blocks(64)).collect();
//! for dev in &mut fleet {
//!     let line = Line::new(0, 3)?;
//!     for pba in line.data_blocks() {
//!         dev.write_block(pba, &[7u8; 512])?;
//!     }
//!     dev.heat_line(line, vec![], 0)?;
//! }
//! let mut sched = FleetScheduler::start(fleet.iter(), FleetConfig::default())?;
//! sched.run_to_completion(&mut fleet)?;
//! assert!(sched.is_complete());
//! assert!(fleet.iter().all(|d| d.scrub_epoch() == 1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::device::{LoadProbe, SeroDevice, SeroError};
use crate::sched::{SchedConfig, SchedConfigError, SchedProgress, ScrubScheduler, SliceOutcome};
use crate::scrub::{ScrubConfig, ScrubMode, ScrubReport};

/// Converts a device's observed foreground load into its per-quantum
/// scrub budget: `budget = quantum × idle_fraction × headroom`, clamped
/// to `[min_budget_ns, max_budget_ns]` (and never above the quantum).
///
/// The idle fraction comes from the device's [`LoadProbe`] — EWMA busy
/// time over EWMA inter-arrival gap — so a device drowning in foreground
/// traffic contributes only its floor budget (scrub creeps, never
/// starves), while an idle device offers most of its quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveBudget {
    /// Floor grant: scrub always makes progress, even on a saturated
    /// device (a pass that never runs is a tamper-evidence hole).
    pub min_budget_ns: u64,
    /// Ceiling grant, additionally clamped to the quantum.
    pub max_budget_ns: u64,
    /// Fraction of the measured idle time handed to scrub; the rest
    /// stays in reserve for foreground bursts.
    pub headroom: f64,
}

impl Default for AdaptiveBudget {
    /// 0.2 ms floor, quantum-bounded ceiling, half of measured idle.
    fn default() -> AdaptiveBudget {
        AdaptiveBudget {
            min_budget_ns: 200_000,
            max_budget_ns: u64::MAX,
            headroom: 0.5,
        }
    }
}

impl AdaptiveBudget {
    /// The per-quantum budget for a device whose foreground looks like
    /// `load`. Always in `[1, quantum_ns]` for a non-zero quantum.
    pub fn budget_for(&self, load: &LoadProbe, quantum_ns: u64) -> u64 {
        let idle = (1.0 - load.utilization()).clamp(0.0, 1.0);
        let raw = (quantum_ns as f64 * idle * self.headroom.clamp(0.0, 1.0)) as u64;
        let hi = self.max_budget_ns.min(quantum_ns).max(1);
        let lo = self.min_budget_ns.min(hi).max(1);
        raw.clamp(lo, hi)
    }
}

/// How the fleet ranks its members for pass admission and budget grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetOrdering {
    /// Devices with flagged lines first (more flags outrank fewer; ties
    /// go to the lower index) — the detection-latency-minimising order.
    #[default]
    SuspicionFirst,
    /// Plain index order, ignoring suspicion — the round-robin reference
    /// the detection-latency claim test compares against.
    RoundRobin,
}

/// Tuning knobs for a [`FleetScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Mode and full-pass cadence of each member pass (the `workers`
    /// field is ignored, as in [`SchedConfig`]).
    pub scrub: ScrubConfig,
    /// Per-device scheduling quantum, ns.
    pub quantum_ns: u64,
    /// Fleet-wide scrub allowance per quantum, ns of device time summed
    /// over all concurrently granted budgets. May exceed one quantum —
    /// it spans many devices.
    pub global_budget_ns: u64,
    /// At most this many member passes run concurrently (`0` is treated
    /// as `1`); the rest are staggered behind them in priority order.
    pub max_concurrent: usize,
    /// Adaptive per-device budgets from measured load; `None` divides
    /// the global budget statically (global / max_concurrent each).
    pub adaptive: Option<AdaptiveBudget>,
    /// Member ranking (see [`FleetOrdering`]).
    pub ordering: FleetOrdering,
}

impl Default for FleetConfig {
    /// Incremental member passes, a 10 ms quantum, a 4 ms global budget,
    /// two concurrent passes, adaptive budgets, suspicion-first.
    fn default() -> FleetConfig {
        FleetConfig {
            scrub: ScrubConfig {
                workers: 1,
                mode: ScrubMode::Incremental,
                full_every: 8,
            },
            quantum_ns: 10_000_000,
            global_budget_ns: 4_000_000,
            max_concurrent: 2,
            adaptive: Some(AdaptiveBudget::default()),
            ordering: FleetOrdering::default(),
        }
    }
}

impl FleetConfig {
    /// Validates the knobs (zero quantum or zero global budget would
    /// silently flip the fleet into a regime nobody asked for — the same
    /// loudness rule as [`SchedConfig::budgeted`]).
    ///
    /// # Errors
    ///
    /// [`SchedConfigError::ZeroQuantum`] / [`SchedConfigError::ZeroBudget`].
    pub fn validate(&self) -> Result<(), SchedConfigError> {
        if self.quantum_ns == 0 {
            return Err(SchedConfigError::ZeroQuantum);
        }
        if self.global_budget_ns == 0 {
            return Err(SchedConfigError::ZeroBudget);
        }
        Ok(())
    }

    /// The concurrency slot count actually used.
    fn slots(&self) -> usize {
        self.max_concurrent.max(1)
    }
}

/// Lifecycle of one fleet member's pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetMemberState {
    /// Waiting for a concurrency slot.
    Pending,
    /// Pass in flight, accepting slices.
    Running,
    /// Paused by the operator (a paused *active* member keeps its slot;
    /// a paused pending member is skipped at admission).
    Paused,
    /// Cancelled; the device's completed-pass epoch was not advanced.
    Cancelled,
    /// Pass drained and the device's epoch advanced.
    Complete,
}

/// What one [`FleetScheduler::tick_member`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetSliceOutcome {
    /// Verified `lines` lines in `device_ns` of this device's time.
    Ran {
        /// Lines verified in this slice.
        lines: usize,
        /// Device time the slice consumed.
        device_ns: u128,
    },
    /// The member's per-quantum budget is spent; scrub may run again at
    /// `resume_at_ns` on *that device's* clock.
    Throttled {
        /// Device-clock time at which the member's next quantum opens.
        resume_at_ns: u128,
    },
    /// Higher-priority members consumed the whole global budget this
    /// round; the member idles until a re-grant frees allowance.
    Starved,
    /// The member is pending and no concurrency slot (or priority) is
    /// available yet.
    Waiting,
    /// The member is paused; nothing ran.
    Paused,
    /// Nothing to do: the member completed or was cancelled.
    Idle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemberPhase {
    Pending,
    Active,
    Complete,
    Cancelled,
}

#[derive(Debug, Clone)]
struct FleetMember {
    phase: MemberPhase,
    paused: bool,
    flagged_at_start: usize,
    sched: Option<ScrubScheduler>,
}

/// Point-in-time fleet totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetProgress {
    /// Member passes currently active (running or paused-active).
    pub active: usize,
    /// Most passes ever active at once — must never exceed the
    /// configured concurrency ceiling.
    pub peak_active: usize,
    /// Members whose pass completed.
    pub completed: usize,
    /// Members cancelled.
    pub cancelled: usize,
    /// Members still waiting for a slot.
    pub pending: usize,
    /// Lines verified fleet-wide so far.
    pub verified: usize,
    /// Tamper findings fleet-wide so far.
    pub tampered: usize,
}

/// A scrub coordinator over a fleet of [`SeroDevice`]s.
///
/// The scheduler holds per-member pass state only; the devices stay with
/// the caller, who passes them (all of them, in the same order as at
/// [`FleetScheduler::start`]) into [`FleetScheduler::tick`] — or one at a
/// time into [`FleetScheduler::tick_member`], the shape a per-device I/O
/// loop wants. See the module docs for the scheduling model.
#[derive(Debug, Clone)]
pub struct FleetScheduler {
    config: FleetConfig,
    members: Vec<FleetMember>,
    /// Member indices in grant/admission priority order.
    order: Vec<usize>,
    /// Last budget grant per member (`0` = inactive or starved).
    grants: Vec<u64>,
    /// Load samples from the last retune, per member.
    loads: Vec<LoadProbe>,
    active: usize,
    peak_active: usize,
    completion_order: Vec<usize>,
}

impl FleetScheduler {
    /// Plans a coordinated pass over `devs` (their order defines member
    /// indices): snapshots each device's suspicion level, ranks the
    /// members, and leaves every pass *pending* — each member's work
    /// list is snapshotted by its own [`ScrubScheduler::start`] at
    /// admission time, so flags and heats that land while a member waits
    /// for a slot are still covered by its pass.
    ///
    /// # Errors
    ///
    /// [`SchedConfigError`] for degenerate knobs
    /// (see [`FleetConfig::validate`]).
    pub fn start<'a, I>(devs: I, config: FleetConfig) -> Result<FleetScheduler, SchedConfigError>
    where
        I: IntoIterator<Item = &'a SeroDevice>,
    {
        config.validate()?;
        let mut members = Vec::new();
        let mut loads = Vec::new();
        for dev in devs {
            members.push(FleetMember {
                phase: MemberPhase::Pending,
                paused: false,
                flagged_at_start: dev.heated_lines().filter(|r| r.flagged).count(),
                sched: None,
            });
            loads.push(*dev.load_probe());
        }
        let mut order: Vec<usize> = (0..members.len()).collect();
        if config.ordering == FleetOrdering::SuspicionFirst {
            order.sort_by_key(|&i| (std::cmp::Reverse(members[i].flagged_at_start), i));
        }
        let grants = vec![0u64; members.len()];
        Ok(FleetScheduler {
            config,
            members,
            order,
            grants,
            loads,
            active: 0,
            peak_active: 0,
            completion_order: Vec::new(),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for a fleet with no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member indices in admission/grant priority order.
    pub fn priority_order(&self) -> &[usize] {
        &self.order
    }

    /// The budget grants from the last re-division, per member (`0` for
    /// inactive, paused, or starved members). Their sum never exceeds
    /// [`FleetConfig::global_budget_ns`].
    pub fn last_grants(&self) -> &[u64] {
        &self.grants
    }

    /// Member indices in the order their passes completed.
    pub fn completion_order(&self) -> &[usize] {
        &self.completion_order
    }

    /// Most member passes ever active at once.
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Lifecycle state of member `idx`.
    pub fn member_state(&self, idx: usize) -> FleetMemberState {
        let m = &self.members[idx];
        match m.phase {
            MemberPhase::Cancelled => FleetMemberState::Cancelled,
            MemberPhase::Complete => FleetMemberState::Complete,
            _ if m.paused => FleetMemberState::Paused,
            MemberPhase::Pending => FleetMemberState::Pending,
            MemberPhase::Active => FleetMemberState::Running,
        }
    }

    /// Scheduling progress of member `idx`'s pass (`None` until it is
    /// admitted).
    pub fn member_progress(&self, idx: usize) -> Option<SchedProgress> {
        self.members[idx]
            .sched
            .as_ref()
            .map(ScrubScheduler::progress)
    }

    /// The pass report of member `idx` (`None` until admitted; partial
    /// until complete).
    pub fn member_report(&self, idx: usize) -> Option<ScrubReport> {
        self.members[idx].sched.as_ref().map(ScrubScheduler::report)
    }

    /// All member reports, indexed by member.
    pub fn reports(&self) -> Vec<Option<ScrubReport>> {
        (0..self.members.len())
            .map(|i| self.member_report(i))
            .collect()
    }

    /// Fleet-wide totals.
    pub fn progress(&self) -> FleetProgress {
        let mut p = FleetProgress {
            active: self.active,
            peak_active: self.peak_active,
            ..FleetProgress::default()
        };
        for m in &self.members {
            match m.phase {
                MemberPhase::Pending => p.pending += 1,
                MemberPhase::Complete => p.completed += 1,
                MemberPhase::Cancelled => p.cancelled += 1,
                MemberPhase::Active => {}
            }
            if let Some(sched) = &m.sched {
                let sp = sched.progress();
                p.verified += sp.verified;
                p.tampered += sp.tampered;
            }
        }
        p
    }

    /// True once every member is complete or cancelled.
    pub fn is_complete(&self) -> bool {
        self.members
            .iter()
            .all(|m| matches!(m.phase, MemberPhase::Complete | MemberPhase::Cancelled))
    }

    /// Pauses member `idx` between slices. A paused active member keeps
    /// its concurrency slot; a paused pending member is skipped at
    /// admission until resumed.
    pub fn pause(&mut self, idx: usize) {
        self.members[idx].paused = true;
        if let Some(sched) = &mut self.members[idx].sched {
            sched.pause();
        }
    }

    /// Resumes a paused member.
    pub fn resume(&mut self, idx: usize) {
        self.members[idx].paused = false;
        if let Some(sched) = &mut self.members[idx].sched {
            sched.resume();
        }
    }

    /// Cancels member `idx`'s pass between slices, freeing its
    /// concurrency slot for the next pending member. The device's
    /// completed-pass epoch stays untouched; partial outcomes remain
    /// readable via [`FleetScheduler::member_report`].
    pub fn cancel(&mut self, idx: usize) {
        let member = &mut self.members[idx];
        if matches!(member.phase, MemberPhase::Complete | MemberPhase::Cancelled) {
            return;
        }
        if member.phase == MemberPhase::Active {
            self.active -= 1;
        }
        member.phase = MemberPhase::Cancelled;
        self.grants[idx] = 0;
        if let Some(sched) = &mut member.sched {
            sched.cancel();
        }
    }

    /// Re-divides the global per-quantum budget across the active
    /// members from fresh load samples (one per member, in member
    /// order): each active, unpaused member's desired budget — adaptive
    /// from its load probe, or the static `global / max_concurrent`
    /// share — is granted in priority order until the global allowance
    /// runs out. [`FleetScheduler::tick`] retunes automatically; call
    /// this directly when driving members one at a time through
    /// [`FleetScheduler::tick_member`].
    ///
    /// # Panics
    ///
    /// Panics when `loads` does not carry exactly one sample per member.
    pub fn retune(&mut self, loads: &[LoadProbe]) {
        assert_eq!(
            loads.len(),
            self.members.len(),
            "retune needs one load sample per member"
        );
        self.loads.copy_from_slice(loads);
        self.recompute_grants();
    }

    /// The grant walk: priority order, desired budget each, stop at the
    /// global cap. Also pushes the new budgets into the active member
    /// schedulers.
    ///
    /// Under [`FleetOrdering::SuspicionFirst`], a member that carried
    /// flagged lines at fleet start desires the *full quantum* rather
    /// than its idle-derived share: detection latency on a device with
    /// standing suspicion outranks that device's foreground comfort, so
    /// its pass runs at the highest duty the global cap allows while
    /// clean peers soak up only measured idle time.
    fn recompute_grants(&mut self) {
        let quantum = self.config.quantum_ns;
        let static_share = (self.config.global_budget_ns / self.config.slots() as u64).max(1);
        let mut remaining = self.config.global_budget_ns;
        self.grants.iter_mut().for_each(|g| *g = 0);
        for idx in 0..self.order.len() {
            let i = self.order[idx];
            let member = &mut self.members[i];
            if member.phase != MemberPhase::Active || member.paused {
                continue;
            }
            let suspicious = self.config.ordering == FleetOrdering::SuspicionFirst
                && member.flagged_at_start > 0;
            let desired = if suspicious {
                quantum
            } else {
                match &self.config.adaptive {
                    Some(adaptive) => adaptive.budget_for(&self.loads[i], quantum),
                    None => static_share,
                }
            }
            .min(quantum.max(1));
            let grant = desired.min(remaining);
            self.grants[i] = grant;
            remaining -= grant;
            if grant > 0 {
                if let Some(sched) = &mut member.sched {
                    sched.set_budget_ns(grant);
                }
            }
        }
    }

    /// Admits pending member `idx` if a slot is free and no unpaused
    /// pending member outranks it. Returns whether it is now active.
    fn try_admit(&mut self, idx: usize, dev: &SeroDevice) -> bool {
        if self.active >= self.config.slots() {
            return false;
        }
        for &j in &self.order {
            if j == idx {
                break;
            }
            if self.members[j].phase == MemberPhase::Pending && !self.members[j].paused {
                return false; // a higher-priority member is owed the slot
            }
        }
        let config = SchedConfig {
            scrub: self.config.scrub,
            // Placeholder until the grant walk below assigns the real
            // share; a starved member is skipped before its first slice.
            budget_ns: 1,
            quantum_ns: self.config.quantum_ns,
        };
        self.members[idx].sched = Some(ScrubScheduler::start(dev, config));
        self.members[idx].phase = MemberPhase::Active;
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
        self.recompute_grants();
        true
    }

    /// Grants member `idx` one slice of device time on `dev` — *its*
    /// device, the same position it held at [`FleetScheduler::start`].
    /// Handles admission (staggering) and consults the last budget
    /// grants; interleave with foreground work on that device exactly
    /// like [`ScrubScheduler::run_slice`].
    ///
    /// # Errors
    ///
    /// Only infrastructure failures propagate; tamper findings are data
    /// in the member report.
    pub fn tick_member(
        &mut self,
        idx: usize,
        dev: &mut SeroDevice,
    ) -> Result<FleetSliceOutcome, SeroError> {
        self.loads[idx] = *dev.load_probe();
        match self.members[idx].phase {
            MemberPhase::Complete | MemberPhase::Cancelled => return Ok(FleetSliceOutcome::Idle),
            MemberPhase::Pending => {
                if self.members[idx].paused {
                    return Ok(FleetSliceOutcome::Paused);
                }
                if !self.try_admit(idx, dev) {
                    return Ok(FleetSliceOutcome::Waiting);
                }
            }
            MemberPhase::Active => {
                if self.members[idx].paused {
                    return Ok(FleetSliceOutcome::Paused);
                }
            }
        }
        if self.grants[idx] == 0 {
            // A slot or budget may have freed since the last walk.
            self.recompute_grants();
            if self.grants[idx] == 0 {
                return Ok(FleetSliceOutcome::Starved);
            }
        }
        let sched = self.members[idx]
            .sched
            .as_mut()
            .expect("active member has a scheduler");
        let outcome = sched.run_slice(dev)?;
        if sched.is_complete() {
            self.members[idx].phase = MemberPhase::Complete;
            self.active -= 1;
            self.grants[idx] = 0;
            self.completion_order.push(idx);
            self.recompute_grants(); // release this member's share
        }
        Ok(match outcome {
            SliceOutcome::Ran { lines, device_ns } => FleetSliceOutcome::Ran { lines, device_ns },
            SliceOutcome::Throttled { resume_at_ns } => {
                FleetSliceOutcome::Throttled { resume_at_ns }
            }
            SliceOutcome::Paused => FleetSliceOutcome::Paused,
            SliceOutcome::Idle => FleetSliceOutcome::Idle,
        })
    }

    /// One fleet round: samples every device's load probe, re-divides
    /// the global budget, then grants each member one slice in priority
    /// order. `devs` must be the full fleet in start order.
    ///
    /// # Errors
    ///
    /// The first infrastructure failure aborts the round; members not
    /// yet ticked simply run next round.
    pub fn tick(
        &mut self,
        devs: &mut [SeroDevice],
    ) -> Result<Vec<(usize, FleetSliceOutcome)>, SeroError> {
        assert_eq!(
            devs.len(),
            self.members.len(),
            "tick needs the full fleet in start order"
        );
        let loads: Vec<LoadProbe> = devs.iter().map(|d| *d.load_probe()).collect();
        self.retune(&loads);
        let order = self.order.clone();
        let mut outcomes = Vec::with_capacity(order.len());
        for &i in &order {
            outcomes.push((i, self.tick_member(i, &mut devs[i])?));
        }
        Ok(outcomes)
    }

    /// Drives the fleet to completion on otherwise-idle devices: ticks
    /// in priority order and idles each throttled or starved device
    /// forward on its own clock. Returns early (without error) if every
    /// remaining member is paused — nothing can progress until the
    /// operator resumes them.
    ///
    /// # Errors
    ///
    /// Infrastructure failures from any member slice.
    pub fn run_to_completion(&mut self, devs: &mut [SeroDevice]) -> Result<(), SeroError> {
        let mut guard = 0usize;
        while !self.is_complete() {
            guard += 1;
            assert!(guard < 1_000_000, "fleet scheduler failed to converge");
            let mut progressed = false;
            for (i, outcome) in self.tick(devs)? {
                match outcome {
                    FleetSliceOutcome::Ran { .. } => progressed = true,
                    FleetSliceOutcome::Throttled { resume_at_ns } => {
                        let now = devs[i].probe().clock().elapsed_ns();
                        if resume_at_ns > now {
                            devs[i]
                                .probe_mut()
                                .advance_clock((resume_at_ns - now) as u64);
                        }
                        progressed = true;
                    }
                    FleetSliceOutcome::Starved => {
                        // The device idles a quantum while peers hold the
                        // whole global budget; completion frees it.
                        devs[i].probe_mut().advance_clock(self.config.quantum_ns);
                        progressed = true;
                    }
                    FleetSliceOutcome::Waiting
                    | FleetSliceOutcome::Paused
                    | FleetSliceOutcome::Idle => {}
                }
            }
            if !progressed {
                return Ok(()); // everything left is paused
            }
        }
        Ok(())
    }
}

/// Advances every device's clock to the fleet-wide maximum. A fleet
/// lives on one wall: while one device scrubs, real time passes on its
/// idle peers too. Drivers with no foreground traffic (tests, the
/// detection-latency claim) call this between rounds so per-device
/// clocks stay comparable as one fleet timeline.
pub fn sync_clocks(devs: &mut [SeroDevice]) {
    let wall = devs
        .iter()
        .map(|d| d.probe().clock().elapsed_ns())
        .max()
        .unwrap_or(0);
    for dev in devs {
        let now = dev.probe().clock().elapsed_ns();
        if wall > now {
            dev.probe_mut().advance_clock((wall - now) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::Line;
    use crate::scrub::scrub_device;

    const T0: u64 = 1_199_145_600;

    fn heated_device(blocks: u64, lines: usize) -> SeroDevice {
        let mut dev = SeroDevice::with_blocks(blocks);
        for i in 0..lines as u64 {
            let line = Line::new(i * 8, 3).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &[pba as u8; 512]).unwrap();
            }
            dev.heat_line(line, vec![], T0 + i).unwrap();
        }
        dev
    }

    fn fleet(n: usize, lines: usize) -> Vec<SeroDevice> {
        (0..n).map(|_| heated_device(256, lines)).collect()
    }

    #[test]
    fn fleet_pass_matches_exclusive_per_device_passes() {
        let mut devs = fleet(3, 6);
        devs[1]
            .probe_mut()
            .mws(Line::new(16, 3).unwrap().start() + 1, &[0xEE; 512])
            .unwrap();
        let exclusive: Vec<ScrubReport> = devs
            .clone()
            .iter_mut()
            .map(|d| scrub_device(d, &ScrubConfig::with_workers(1)).unwrap())
            .collect();

        let mut sched = FleetScheduler::start(devs.iter(), FleetConfig::default()).unwrap();
        sched.run_to_completion(&mut devs).unwrap();
        assert!(sched.is_complete());
        for (i, expected) in exclusive.iter().enumerate() {
            let report = sched.member_report(i).expect("admitted");
            assert_eq!(report.outcomes, expected.outcomes, "member {i}");
            assert_eq!(devs[i].scrub_epoch(), 1);
        }
        assert_eq!(sched.progress().tampered, 1);
        assert_eq!(sched.completion_order().len(), 3);
    }

    #[test]
    fn staggering_caps_concurrent_passes() {
        let mut devs = fleet(4, 8);
        let config = FleetConfig {
            max_concurrent: 2,
            ..FleetConfig::default()
        };
        let mut sched = FleetScheduler::start(devs.iter(), config).unwrap();
        // First round: exactly the slot count admits; the rest wait.
        let outcomes = sched.tick(&mut devs).unwrap();
        let waiting = outcomes
            .iter()
            .filter(|(_, o)| *o == FleetSliceOutcome::Waiting)
            .count();
        assert_eq!(waiting, 2);
        assert_eq!(sched.progress().active, 2);
        sched.run_to_completion(&mut devs).unwrap();
        assert_eq!(sched.peak_active(), 2, "stagger ceiling held");
        assert_eq!(sched.completion_order().len(), 4);
    }

    #[test]
    fn suspicion_first_admits_flagged_device_first() {
        let mut devs = fleet(3, 6);
        // Flag device 2 via a refused protocol write.
        let frozen = Line::new(0, 3).unwrap();
        assert!(devs[2]
            .write_block(frozen.start() + 1, &[0u8; 512])
            .is_err());
        let config = FleetConfig {
            max_concurrent: 1,
            ..FleetConfig::default()
        };
        let mut sched = FleetScheduler::start(devs.iter(), config).unwrap();
        assert_eq!(sched.priority_order(), &[2, 0, 1]);
        sched.run_to_completion(&mut devs).unwrap();
        assert_eq!(
            sched.completion_order()[0],
            2,
            "flagged pass finishes first"
        );

        // Round-robin ignores the flag.
        let devs2 = fleet(3, 6);
        let rr = FleetScheduler::start(
            devs2.iter(),
            FleetConfig {
                ordering: FleetOrdering::RoundRobin,
                max_concurrent: 1,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(rr.priority_order(), &[0, 1, 2]);
    }

    #[test]
    fn grants_never_exceed_the_global_budget() {
        let mut devs = fleet(4, 4);
        let config = FleetConfig {
            global_budget_ns: 3_000_000,
            max_concurrent: 4,
            ..FleetConfig::default()
        };
        let mut sched = FleetScheduler::start(devs.iter(), config).unwrap();
        let mut guard = 0;
        while !sched.is_complete() {
            guard += 1;
            assert!(guard < 10_000);
            for (i, outcome) in sched.tick(&mut devs).unwrap() {
                let granted: u64 = sched.last_grants().iter().sum();
                assert!(
                    granted <= config.global_budget_ns,
                    "grants {granted} exceed global budget"
                );
                if let FleetSliceOutcome::Throttled { resume_at_ns } = outcome {
                    let now = devs[i].probe().clock().elapsed_ns();
                    devs[i]
                        .probe_mut()
                        .advance_clock((resume_at_ns - now) as u64);
                }
            }
        }
    }

    #[test]
    fn adaptive_budget_tracks_idleness() {
        let adaptive = AdaptiveBudget::default();
        let quantum = 10_000_000u64;

        // A never-used device claims the full headroom share.
        let idle = LoadProbe::default();
        assert_eq!(adaptive.budget_for(&idle, quantum), 5_000_000);

        // A saturated device (back-to-back arrivals) gets the floor.
        let mut busy = SeroDevice::with_blocks(64);
        for pba in 0..32 {
            busy.write_block(pba, &[1u8; 512]).unwrap();
        }
        assert_eq!(
            adaptive.budget_for(busy.load_probe(), quantum),
            adaptive.min_budget_ns
        );

        // A partially loaded device lands in between.
        let mut half = SeroDevice::with_blocks(64);
        for pba in 0..32 {
            half.write_block(pba, &[1u8; 512]).unwrap();
            half.probe_mut().advance_clock(4_200_000); // ≈ busy time again
        }
        let grant = adaptive.budget_for(half.load_probe(), quantum);
        assert!(
            grant > adaptive.min_budget_ns && grant < 5_000_000,
            "mid-load grant {grant}"
        );

        // The grant never exceeds the quantum, whatever the ceiling says.
        let greedy_ceiling = AdaptiveBudget {
            max_budget_ns: u64::MAX,
            min_budget_ns: u64::MAX,
            headroom: 1.0,
        };
        assert_eq!(greedy_ceiling.budget_for(&idle, quantum), quantum);
    }

    #[test]
    fn pause_resume_and_cancel_drive_member_states() {
        let mut devs = fleet(2, 4);
        let mut sched = FleetScheduler::start(devs.iter(), FleetConfig::default()).unwrap();
        sched.tick(&mut devs).unwrap();
        assert_eq!(sched.member_state(0), FleetMemberState::Running);

        sched.pause(0);
        assert_eq!(sched.member_state(0), FleetMemberState::Paused);
        let verified = sched.member_progress(0).unwrap().verified;
        assert_eq!(
            sched.tick_member(0, &mut devs[0]).unwrap(),
            FleetSliceOutcome::Paused
        );
        assert_eq!(sched.member_progress(0).unwrap().verified, verified);
        sched.resume(0);

        sched.cancel(1);
        assert_eq!(sched.member_state(1), FleetMemberState::Cancelled);
        assert_eq!(
            sched.tick_member(1, &mut devs[1]).unwrap(),
            FleetSliceOutcome::Idle
        );
        sched.run_to_completion(&mut devs).unwrap();
        assert_eq!(sched.member_state(0), FleetMemberState::Complete);
        assert_eq!(devs[0].scrub_epoch(), 1);
        assert_eq!(devs[1].scrub_epoch(), 0, "cancelled pass never counts");
    }

    #[test]
    fn cancelling_an_active_member_frees_its_slot() {
        let mut devs = fleet(3, 4);
        let config = FleetConfig {
            max_concurrent: 1,
            ..FleetConfig::default()
        };
        let mut sched = FleetScheduler::start(devs.iter(), config).unwrap();
        sched.tick(&mut devs).unwrap();
        assert_eq!(sched.member_state(0), FleetMemberState::Running);
        assert_eq!(sched.member_state(1), FleetMemberState::Pending);
        sched.cancel(0);
        sched.run_to_completion(&mut devs).unwrap();
        assert_eq!(sched.completion_order(), &[1, 2]);
        assert_eq!(sched.peak_active(), 1);
    }

    #[test]
    fn all_paused_fleet_returns_instead_of_spinning() {
        let mut devs = fleet(2, 2);
        let mut sched = FleetScheduler::start(devs.iter(), FleetConfig::default()).unwrap();
        sched.pause(0);
        sched.pause(1);
        sched.run_to_completion(&mut devs).unwrap();
        assert!(!sched.is_complete());
        assert_eq!(sched.member_state(0), FleetMemberState::Paused);
    }

    #[test]
    fn empty_fleet_is_trivially_complete() {
        let mut devs: Vec<SeroDevice> = Vec::new();
        let mut sched = FleetScheduler::start(devs.iter(), FleetConfig::default()).unwrap();
        assert!(sched.is_complete() && sched.is_empty());
        sched.run_to_completion(&mut devs).unwrap();
    }

    #[test]
    fn degenerate_fleet_configs_are_rejected() {
        let devs = fleet(1, 1);
        assert_eq!(
            FleetScheduler::start(
                devs.iter(),
                FleetConfig {
                    quantum_ns: 0,
                    ..FleetConfig::default()
                }
            )
            .err(),
            Some(SchedConfigError::ZeroQuantum)
        );
        assert_eq!(
            FleetScheduler::start(
                devs.iter(),
                FleetConfig {
                    global_budget_ns: 0,
                    ..FleetConfig::default()
                }
            )
            .err(),
            Some(SchedConfigError::ZeroBudget)
        );
    }

    #[test]
    fn sync_clocks_aligns_the_fleet_wall() {
        let mut devs = fleet(3, 1);
        devs[1].probe_mut().advance_clock(123_456_789);
        sync_clocks(&mut devs);
        let wall = devs[1].probe().clock().elapsed_ns();
        assert!(devs.iter().all(|d| d.probe().clock().elapsed_ns() == wall));
        sync_clocks(&mut []); // empty fleet is a no-op
    }
}
