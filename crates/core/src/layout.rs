//! The hash-block payload — Figure 3's on-medium layout.
//!
//! Block 0 of a heated line is written electrically. The paper's Figure 3
//! puts "the 512-bit Manchester encoding of the 256-bit hash in block 0 …
//! this leaves 4096−512=3584 bits of space for meta data, signatures, etc."
//! We structure that space as a self-describing record:
//!
//! ```text
//! magic u16 | version u8 | order u8 | start u64 | timestamp u64 |
//! digest [u8; 32] | meta_len u16 | metadata … | crc32 u32
//! ```
//!
//! The record carries the line's *own* start address and order: a payload
//! copied to a different physical location contradicts itself, which —
//! together with the physical addresses inside the hash — defeats the
//! §5.1 splitting/coalescing and §5.2 copy-masking attacks.
//!
//! Everything is Manchester-encoded two dots per bit, so the whole record
//! consumes at most the 4096-dot electrical area (2048 logical bits = 256
//! bytes).
//!
//! # Examples
//!
//! ```
//! use sero_core::layout::HashBlockPayload;
//! use sero_core::line::Line;
//! use sero_crypto::Digest;
//!
//! let line = Line::new(8, 3)?;
//! let payload = HashBlockPayload::new(line, Digest::ZERO, 1_200_000_000, b"db-snapshot".to_vec())?;
//! let bits = payload.to_bits();
//! assert!(bits.len() <= 2048);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::line::{Line, LineError};
use core::fmt;
use sero_codec::crc32::crc32;
use sero_codec::manchester::{self, Scan};
use sero_crypto::Digest;

/// Payload magic: distinguishes a heated hash block from random damage.
pub const PAYLOAD_MAGIC: u16 = 0x53E0;

/// Payload format version.
pub const PAYLOAD_VERSION: u8 = 1;

/// Logical bits available in a block's electrical area.
pub const PAYLOAD_CAPACITY_BITS: usize = 2048;

/// Fixed bytes: magic 2 + version 1 + order 1 + start 8 + timestamp 8 +
/// digest 32 + meta_len 2 + crc 4.
const FIXED_BYTES: usize = 58;

/// Maximum free-form metadata bytes.
pub const MAX_METADATA_BYTES: usize = PAYLOAD_CAPACITY_BITS / 8 - FIXED_BYTES;

/// Errors reading or building a hash-block payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    /// The electrical area contains no written cells at all: the block was
    /// never heated.
    Blank,
    /// One or more cells show the illegal `HH` code — physical evidence of
    /// tampering with the hash block itself.
    Tampered {
        /// Indices of the tampered cells.
        cells: Vec<usize>,
    },
    /// The cells decode but the record is inconsistent (bad magic, bad
    /// CRC, truncation, undecodable line). Raw damage and half-finished
    /// heat operations land here.
    Malformed {
        /// Human-readable reason.
        reason: String,
    },
    /// Metadata exceeds [`MAX_METADATA_BYTES`].
    MetadataTooLong {
        /// Supplied length.
        len: usize,
    },
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::Blank => f.write_str("electrical area is blank (never heated)"),
            PayloadError::Tampered { cells } => {
                write!(f, "{} tampered (HH) cells in hash block", cells.len())
            }
            PayloadError::Malformed { reason } => write!(f, "malformed hash payload: {reason}"),
            PayloadError::MetadataTooLong { len } => {
                write!(f, "metadata of {len} bytes exceeds {MAX_METADATA_BYTES}")
            }
        }
    }
}

impl std::error::Error for PayloadError {}

/// The decoded contents of a heated line's block 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashBlockPayload {
    line: Line,
    timestamp: u64,
    digest: Digest,
    metadata: Vec<u8>,
}

impl HashBlockPayload {
    /// Builds a payload for `line` with the given digest, heat timestamp
    /// (seconds since the epoch) and free-form metadata.
    ///
    /// # Errors
    ///
    /// [`PayloadError::MetadataTooLong`] when metadata exceeds
    /// [`MAX_METADATA_BYTES`].
    pub fn new(
        line: Line,
        digest: Digest,
        timestamp: u64,
        metadata: Vec<u8>,
    ) -> Result<HashBlockPayload, PayloadError> {
        if metadata.len() > MAX_METADATA_BYTES {
            return Err(PayloadError::MetadataTooLong {
                len: metadata.len(),
            });
        }
        Ok(HashBlockPayload {
            line,
            timestamp,
            digest,
            metadata,
        })
    }

    /// The line this payload describes.
    pub fn line(&self) -> Line {
        self.line
    }

    /// Heat timestamp, seconds since the epoch.
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// The SHA-256 digest of the line's data blocks and addresses.
    pub fn digest(&self) -> &Digest {
        &self.digest
    }

    /// The free-form metadata ("signatures, etc." per Figure 3).
    pub fn metadata(&self) -> &[u8] {
        &self.metadata
    }

    /// Serialises the payload to bytes (without Manchester encoding).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FIXED_BYTES + self.metadata.len());
        out.extend_from_slice(&PAYLOAD_MAGIC.to_le_bytes());
        out.push(PAYLOAD_VERSION);
        out.push(self.line.order() as u8);
        out.extend_from_slice(&self.line.start().to_le_bytes());
        out.extend_from_slice(&self.timestamp.to_le_bytes());
        out.extend_from_slice(self.digest.as_bytes());
        out.extend_from_slice(&(self.metadata.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.metadata);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// The logical bits to hand to `ews` — MSB-first bits of
    /// [`HashBlockPayload::to_bytes`].
    pub fn to_bits(&self) -> Vec<bool> {
        manchester::unpack_bits(&self.to_bytes())
    }

    /// Decodes a payload from an `ers` scan of a block's electrical area.
    ///
    /// # Errors
    ///
    /// * [`PayloadError::Blank`] — no cell was ever written.
    /// * [`PayloadError::Tampered`] — `HH` cells found in the written
    ///   region (or anywhere in a blank-looking block).
    /// * [`PayloadError::Malformed`] — magic/CRC/structure failures.
    pub fn from_scan(scan: &Scan) -> Result<HashBlockPayload, PayloadError> {
        let cells = scan.cells();

        // Tampering anywhere is conclusive physical evidence; report it
        // before attempting structure.
        let tampered = scan.tampered_cells();
        if !tampered.is_empty() {
            return Err(PayloadError::Tampered { cells: tampered });
        }

        // Completely blank: never heated.
        let written: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.value().map(|_| i))
            .collect();
        if written.is_empty() {
            return Err(PayloadError::Blank);
        }

        // The record is a prefix of the cells; bits after it must be blank.
        let take_bits = |from: usize, count: usize| -> Result<Vec<bool>, PayloadError> {
            if from + count > cells.len() {
                return Err(PayloadError::Malformed {
                    reason: format!(
                        "record needs {} cells, block has {}",
                        from + count,
                        cells.len()
                    ),
                });
            }
            cells[from..from + count]
                .iter()
                .map(|c| {
                    c.value().ok_or_else(|| PayloadError::Malformed {
                        reason: "written record interrupted by blank cell".to_string(),
                    })
                })
                .collect()
        };

        let header_bits = take_bits(0, (FIXED_BYTES - 4 - 32 - 2) * 8)?; // magic..timestamp
        let header = manchester::pack_bits(&header_bits);
        let magic = u16::from_le_bytes([header[0], header[1]]);
        if magic != PAYLOAD_MAGIC {
            return Err(PayloadError::Malformed {
                reason: format!("bad magic {magic:#06x}"),
            });
        }
        let version = header[2];
        if version != PAYLOAD_VERSION {
            return Err(PayloadError::Malformed {
                reason: format!("unsupported version {version}"),
            });
        }
        let order = header[3] as u32;
        let start = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let timestamp = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let line = Line::new(start, order).map_err(|e: LineError| PayloadError::Malformed {
            reason: format!("undecodable line: {e}"),
        })?;

        let mut cursor = header_bits.len();
        let digest_bits = take_bits(cursor, 32 * 8)?;
        cursor += 32 * 8;
        let digest_bytes: [u8; 32] = manchester::pack_bits(&digest_bits)
            .try_into()
            .expect("32 bytes");
        let digest = Digest::from_bytes(digest_bytes);

        let len_bits = take_bits(cursor, 16)?;
        cursor += 16;
        let meta_len = u16::from_le_bytes(
            manchester::pack_bits(&len_bits)
                .try_into()
                .expect("2 bytes"),
        ) as usize;
        if meta_len > MAX_METADATA_BYTES {
            return Err(PayloadError::Malformed {
                reason: format!("metadata length {meta_len} exceeds capacity"),
            });
        }
        let meta_bits = take_bits(cursor, meta_len * 8)?;
        cursor += meta_len * 8;
        let metadata = manchester::pack_bits(&meta_bits);

        let crc_bits = take_bits(cursor, 32)?;
        let stored_crc = u32::from_le_bytes(
            manchester::pack_bits(&crc_bits)
                .try_into()
                .expect("4 bytes"),
        );

        let payload = HashBlockPayload {
            line,
            timestamp,
            digest,
            metadata,
        };
        let bytes = payload.to_bytes();
        let computed_crc = crc32(&bytes[..bytes.len() - 4]);
        if computed_crc != stored_crc {
            return Err(PayloadError::Malformed {
                reason: format!(
                    "crc mismatch: stored {stored_crc:#010x}, computed {computed_crc:#010x}"
                ),
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sero_codec::manchester::decode as decode_dots;
    use sero_crypto::sha256;

    fn sample() -> HashBlockPayload {
        let line = Line::new(32, 4).unwrap();
        HashBlockPayload::new(
            line,
            sha256(b"the line data"),
            1_199_145_600, // 2008-01-01, the paper's year
            b"fast08".to_vec(),
        )
        .unwrap()
    }

    /// Encode to bits, "write" and "read" through Manchester dots.
    fn round_trip_through_dots(p: &HashBlockPayload) -> Result<HashBlockPayload, PayloadError> {
        let dots = manchester::encode(p.to_bits());
        // Pad to the full 4096-dot electrical area with blanks.
        let mut full = dots;
        full.resize(4096, false);
        HashBlockPayload::from_scan(&decode_dots(&full))
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let q = round_trip_through_dots(&p).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.line().start(), 32);
        assert_eq!(q.line().order(), 4);
        assert_eq!(q.timestamp(), 1_199_145_600);
        assert_eq!(q.metadata(), b"fast08");
    }

    #[test]
    fn fits_figure3_budget() {
        // Hash = 256 bits → 512 physical bits; whole record must fit the
        // 4096-dot area with room to spare.
        let p = sample();
        assert!(p.to_bits().len() <= PAYLOAD_CAPACITY_BITS);
        let max_meta = HashBlockPayload::new(
            Line::new(0, 1).unwrap(),
            Digest::ZERO,
            0,
            vec![0xaa; MAX_METADATA_BYTES],
        )
        .unwrap();
        assert_eq!(max_meta.to_bits().len(), PAYLOAD_CAPACITY_BITS);
    }

    #[test]
    fn metadata_limit_enforced() {
        let r = HashBlockPayload::new(
            Line::new(0, 1).unwrap(),
            Digest::ZERO,
            0,
            vec![0; MAX_METADATA_BYTES + 1],
        );
        assert!(matches!(r, Err(PayloadError::MetadataTooLong { .. })));
    }

    #[test]
    fn blank_area_reports_blank() {
        let scan = decode_dots(&vec![false; 4096]);
        assert_eq!(HashBlockPayload::from_scan(&scan), Err(PayloadError::Blank));
    }

    #[test]
    fn tampered_cell_reported_first() {
        let p = sample();
        let mut dots = manchester::encode(p.to_bits());
        dots.resize(4096, false);
        // Heat the complementary dot of cell 3: HH.
        let cell3 = 6;
        dots[cell3] = true;
        dots[cell3 + 1] = true;
        match HashBlockPayload::from_scan(&decode_dots(&dots)) {
            Err(PayloadError::Tampered { cells }) => assert_eq!(cells, vec![3]),
            other => panic!("expected tampered, got {other:?}"),
        }
    }

    #[test]
    fn truncated_record_is_malformed() {
        let p = sample();
        let bits = p.to_bits();
        let dots = manchester::encode(bits[..bits.len() - 40].iter().copied());
        let mut full = dots;
        full.resize(4096, false);
        match HashBlockPayload::from_scan(&decode_dots(&full)) {
            Err(PayloadError::Malformed { reason }) => {
                assert!(
                    reason.contains("blank") || reason.contains("crc"),
                    "{reason}"
                )
            }
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_is_malformed() {
        // Random coherent cells that do not start with the magic.
        let bits = manchester::unpack_bits(&[0xffu8; 58]);
        let mut dots = manchester::encode(bits);
        dots.resize(4096, false);
        match HashBlockPayload::from_scan(&decode_dots(&dots)) {
            Err(PayloadError::Malformed { reason }) => assert!(reason.contains("magic")),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn crc_catches_payload_damage() {
        // Flip one *cell value* (would require physically impossible
        // unheating, but the decoder must still catch inconsistencies, e.g.
        // from a mis-aimed second heat that made a blank cell valid).
        let p = sample();
        let mut bits = p.to_bits();
        let timestamp_bit = (2 + 1 + 1 + 8) * 8 + 3; // inside timestamp
        bits[timestamp_bit] = !bits[timestamp_bit];
        let mut dots = manchester::encode(bits);
        dots.resize(4096, false);
        match HashBlockPayload::from_scan(&decode_dots(&dots)) {
            Err(PayloadError::Malformed { reason }) => assert!(reason.contains("crc"), "{reason}"),
            other => panic!("expected crc failure, got {other:?}"),
        }
    }

    #[test]
    fn empty_metadata_ok() {
        let p = HashBlockPayload::new(Line::new(2, 1).unwrap(), sha256(b"x"), 42, vec![]).unwrap();
        let q = round_trip_through_dots(&p).unwrap();
        assert!(q.metadata().is_empty());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            PayloadError::Blank,
            PayloadError::Tampered { cells: vec![1] },
            PayloadError::Malformed { reason: "x".into() },
            PayloadError::MetadataTooLong { len: 999 },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
