//! Workload generators for the SERO experiments.
//!
//! §1 of the paper motivates SERO with concrete usage patterns: databases
//! that "write and rewrite data often until the moment has arrived to take
//! a snapshot for auditing and compliance purposes", append-heavy audit
//! logs, and general file populations that age. Each generator here emits
//! a deterministic, seeded stream of abstract [`Op`]s that the benchmark
//! harness replays against the file system — the generators know nothing
//! about `sero-fs`, so the same streams can drive baselines.
//!
//! # Examples
//!
//! ```
//! use sero_workload::{DbSnapshotWorkload, Workload};
//!
//! let ops = DbSnapshotWorkload::small().ops(42);
//! assert!(!ops.is_empty());
//! // Same seed, same stream.
//! assert_eq!(ops, DbSnapshotWorkload::small().ops(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One abstract file-system operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Create `name` with `data`; `archival` hints the §4.1 clustering.
    Create {
        /// File name.
        name: String,
        /// File contents.
        data: Vec<u8>,
        /// Heat-affinity hint.
        archival: bool,
    },
    /// Overwrite `name` with `data`.
    Overwrite {
        /// File name.
        name: String,
        /// New contents.
        data: Vec<u8>,
    },
    /// Delete `name`.
    Delete {
        /// File name.
        name: String,
    },
    /// Read `name` fully.
    Read {
        /// File name.
        name: String,
    },
    /// Heat `name` with `metadata`.
    Heat {
        /// File name.
        name: String,
        /// Metadata for the heated hash block.
        metadata: Vec<u8>,
    },
}

/// A deterministic workload generator.
pub trait Workload {
    /// A short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Generates the full operation stream for `seed`.
    fn ops(&self, seed: u64) -> Vec<Op>;
}

fn payload(rng: &mut StdRng, bytes: usize) -> Vec<u8> {
    let mut data = vec![0u8; bytes];
    rng.fill(&mut data[..]);
    data
}

/// The paper's §1 motivating pattern: random page updates punctuated by
/// heated snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbSnapshotWorkload {
    /// Number of database pages (each its own file).
    pub pages: usize,
    /// Bytes per page.
    pub page_bytes: usize,
    /// Random page updates between snapshots.
    pub updates_per_epoch: usize,
    /// Number of snapshot epochs.
    pub epochs: usize,
    /// Bytes per snapshot file.
    pub snapshot_bytes: usize,
}

impl DbSnapshotWorkload {
    /// A laptop-scale configuration used by tests and examples.
    pub fn small() -> DbSnapshotWorkload {
        DbSnapshotWorkload {
            pages: 16,
            page_bytes: 1024,
            updates_per_epoch: 24,
            epochs: 3,
            snapshot_bytes: 4096,
        }
    }
}

impl Workload for DbSnapshotWorkload {
    fn name(&self) -> &'static str {
        "db-snapshot"
    }

    fn ops(&self, seed: u64) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        for p in 0..self.pages {
            ops.push(Op::Create {
                name: format!("page-{p:04}"),
                data: payload(&mut rng, self.page_bytes),
                archival: false,
            });
        }
        for epoch in 0..self.epochs {
            for _ in 0..self.updates_per_epoch {
                let p = rng.random_range(0..self.pages);
                ops.push(Op::Overwrite {
                    name: format!("page-{p:04}"),
                    data: payload(&mut rng, self.page_bytes),
                });
            }
            let snap = format!("snapshot-{epoch:02}");
            ops.push(Op::Create {
                name: snap.clone(),
                data: payload(&mut rng, self.snapshot_bytes),
                archival: true,
            });
            ops.push(Op::Heat {
                name: snap,
                metadata: format!("epoch-{epoch}").into_bytes(),
            });
        }
        ops
    }
}

/// Compliance-style audit logging: append batches, heat each batch as it
/// closes (the WORM-like usage the paper's §2 surveys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditLogWorkload {
    /// Number of closed batches.
    pub batches: usize,
    /// Events per batch.
    pub events_per_batch: usize,
    /// Bytes per event record.
    pub event_bytes: usize,
}

impl AuditLogWorkload {
    /// A laptop-scale configuration.
    pub fn small() -> AuditLogWorkload {
        AuditLogWorkload {
            batches: 6,
            events_per_batch: 20,
            event_bytes: 96,
        }
    }
}

impl Workload for AuditLogWorkload {
    fn name(&self) -> &'static str {
        "audit-log"
    }

    fn ops(&self, seed: u64) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        for b in 0..self.batches {
            let mut batch = Vec::with_capacity(self.events_per_batch * self.event_bytes);
            for e in 0..self.events_per_batch {
                let mut event = format!("t={b:04}.{e:04} ").into_bytes();
                event.extend(payload(
                    &mut rng,
                    self.event_bytes.saturating_sub(event.len()),
                ));
                batch.extend(event);
            }
            let name = format!("audit-{b:04}");
            ops.push(Op::Create {
                name: name.clone(),
                data: batch,
                archival: true,
            });
            ops.push(Op::Heat {
                name,
                metadata: format!("batch-{b}").into_bytes(),
            });
        }
        ops
    }
}

/// General file aging with a hot/cold skew: a fraction of files absorbs
/// most rewrites while cold files are occasionally deleted and replaced —
/// the churn that makes LFS cleaning interesting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileAgingWorkload {
    /// Number of live files.
    pub files: usize,
    /// Total operations after creation.
    pub operations: usize,
    /// Fraction of files considered hot.
    pub hot_fraction: f64,
    /// Probability an operation hits the hot set.
    pub hot_bias: f64,
    /// File size in bytes.
    pub file_bytes: usize,
    /// Fraction of cold-file operations that heat instead of rewrite.
    pub heat_probability: f64,
}

impl FileAgingWorkload {
    /// A laptop-scale configuration.
    pub fn small() -> FileAgingWorkload {
        FileAgingWorkload {
            files: 24,
            operations: 120,
            hot_fraction: 0.25,
            hot_bias: 0.8,
            file_bytes: 1536,
            heat_probability: 0.15,
        }
    }
}

impl Workload for FileAgingWorkload {
    fn name(&self) -> &'static str {
        "file-aging"
    }

    fn ops(&self, seed: u64) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        let hot_count = ((self.files as f64 * self.hot_fraction) as usize).max(1);
        let mut heated = vec![false; self.files];
        let mut generation = vec![0usize; self.files];

        for f in 0..self.files {
            ops.push(Op::Create {
                name: format!("file-{f:04}.0"),
                data: payload(&mut rng, self.file_bytes),
                archival: false,
            });
        }
        for _ in 0..self.operations {
            let hot = rng.random_bool(self.hot_bias);
            let f = if hot {
                rng.random_range(0..hot_count)
            } else {
                rng.random_range(hot_count..self.files)
            };
            let name = format!("file-{f:04}.{}", generation[f]);
            if heated[f] {
                ops.push(Op::Read { name });
            } else if !hot && rng.random_bool(self.heat_probability) {
                ops.push(Op::Heat {
                    name,
                    metadata: b"aged-out".to_vec(),
                });
                heated[f] = true;
            } else if !hot && rng.random_bool(0.2) {
                ops.push(Op::Delete { name });
                generation[f] += 1;
                ops.push(Op::Create {
                    name: format!("file-{f:04}.{}", generation[f]),
                    data: payload(&mut rng, self.file_bytes),
                    archival: false,
                });
            } else {
                ops.push(Op::Overwrite {
                    name,
                    data: payload(&mut rng, self.file_bytes),
                });
            }
        }
        ops
    }
}

/// Live mixed read/write traffic over an aged store: a heated archival
/// population serving reads alongside hot rewritable files absorbing
/// reads and overwrites. This is the *steady-state* foreground load the
/// background scrub scheduler (`sero-core::sched`) must coexist with —
/// `exp_sched` measures foreground latency percentiles while a scrub
/// pass drains in the gaps.
///
/// Unlike the aging/snapshot generators, setup and traffic are split:
/// [`MixedTrafficWorkload::setup_ops`] builds the population (creates +
/// heats) and [`MixedTrafficWorkload::traffic_ops`] emits only
/// non-destructive steady-state operations (reads everywhere, overwrites
/// confined to the hot set), so the same traffic stream can be replayed
/// against clones with and without a concurrent scrub.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedTrafficWorkload {
    /// Heated archival files (each becomes one heated line).
    pub archival_files: usize,
    /// Bytes per archival file.
    pub archival_bytes: usize,
    /// Hot rewritable files.
    pub hot_files: usize,
    /// Bytes per hot file.
    pub hot_bytes: usize,
    /// Steady-state operations in the traffic stream.
    pub operations: usize,
    /// Probability a traffic operation is a read (the remainder are
    /// overwrites of hot files).
    pub read_fraction: f64,
}

impl MixedTrafficWorkload {
    /// A laptop-scale configuration.
    pub fn small() -> MixedTrafficWorkload {
        MixedTrafficWorkload {
            archival_files: 12,
            archival_bytes: 3 * 1024,
            hot_files: 6,
            hot_bytes: 2 * 1024,
            operations: 60,
            read_fraction: 0.7,
        }
    }

    /// Derives the seed for device `device` of a fleet experiment from a
    /// fleet-wide `seed`: each device replays its own decorrelated setup
    /// and traffic stream (different payload bytes, different
    /// read/overwrite choices and targets), while the whole fleet stays
    /// reproducible from the one seed. `exp_fleet` drives one
    /// [`MixedTrafficWorkload`] per device this way.
    pub fn device_seed(seed: u64, device: usize) -> u64 {
        // SplitMix-style odd multiplier: device 0 is NOT the identity, so
        // single-device experiments sharing `seed` stay distinct too.
        seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(device as u64 + 1)
    }

    fn archival_name(i: usize) -> String {
        format!("archive-{i:04}")
    }

    fn hot_name(i: usize) -> String {
        format!("hot-{i:04}")
    }

    /// The population-building prefix: create every file and heat the
    /// archival set.
    pub fn setup_ops(&self, seed: u64) -> Vec<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        for i in 0..self.archival_files {
            let name = Self::archival_name(i);
            ops.push(Op::Create {
                name: name.clone(),
                data: payload(&mut rng, self.archival_bytes),
                archival: true,
            });
            ops.push(Op::Heat {
                name,
                metadata: format!("mixed-{i}").into_bytes(),
            });
        }
        for i in 0..self.hot_files {
            ops.push(Op::Create {
                name: Self::hot_name(i),
                data: payload(&mut rng, self.hot_bytes),
                archival: false,
            });
        }
        ops
    }

    /// The steady-state traffic stream: reads over the whole namespace,
    /// overwrites over the hot set only — nothing that a heated file
    /// would refuse.
    pub fn traffic_ops(&self, seed: u64) -> Vec<Op> {
        // A distinct stream from setup's, so callers may reuse the seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6D69_7865_6474_7266); // "mixedtrf"
        let mut ops = Vec::with_capacity(self.operations);
        if self.archival_files + self.hot_files == 0 {
            return ops; // nothing to read, nothing to overwrite
        }
        for _ in 0..self.operations {
            // With no hot files every operation degrades to a read (the
            // rng draw is skipped, so populated configs are unaffected).
            if self.hot_files == 0 || rng.random_bool(self.read_fraction) {
                let total = self.archival_files + self.hot_files;
                let f = rng.random_range(0..total);
                let name = if f < self.archival_files {
                    Self::archival_name(f)
                } else {
                    Self::hot_name(f - self.archival_files)
                };
                ops.push(Op::Read { name });
            } else {
                let f = rng.random_range(0..self.hot_files);
                ops.push(Op::Overwrite {
                    name: Self::hot_name(f),
                    data: payload(&mut rng, self.hot_bytes),
                });
            }
        }
        ops
    }
}

impl Workload for MixedTrafficWorkload {
    fn name(&self) -> &'static str {
        "mixed-traffic"
    }

    fn ops(&self, seed: u64) -> Vec<Op> {
        let mut ops = self.setup_ops(seed);
        ops.extend(self.traffic_ops(seed));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<Box<dyn Workload>> {
        vec![
            Box::new(DbSnapshotWorkload::small()),
            Box::new(AuditLogWorkload::small()),
            Box::new(FileAgingWorkload::small()),
            Box::new(MixedTrafficWorkload::small()),
        ]
    }

    #[test]
    fn deterministic_per_seed() {
        for w in all() {
            assert_eq!(w.ops(7), w.ops(7), "{} not deterministic", w.name());
            assert_ne!(w.ops(7), w.ops(8), "{} ignores seed", w.name());
        }
    }

    #[test]
    fn db_snapshot_shape() {
        let w = DbSnapshotWorkload::small();
        let ops = w.ops(1);
        let heats = ops.iter().filter(|o| matches!(o, Op::Heat { .. })).count();
        assert_eq!(heats, w.epochs);
        let creates = ops
            .iter()
            .filter(|o| matches!(o, Op::Create { .. }))
            .count();
        assert_eq!(creates, w.pages + w.epochs);
        // Snapshots are archival; pages are not.
        for op in &ops {
            if let Op::Create { name, archival, .. } = op {
                assert_eq!(*archival, name.starts_with("snapshot"), "{name}");
            }
        }
    }

    #[test]
    fn audit_log_heats_every_batch() {
        let w = AuditLogWorkload::small();
        let ops = w.ops(2);
        let creates = ops
            .iter()
            .filter(|o| matches!(o, Op::Create { .. }))
            .count();
        let heats = ops.iter().filter(|o| matches!(o, Op::Heat { .. })).count();
        assert_eq!(creates, w.batches);
        assert_eq!(heats, w.batches);
        // Strict alternation: a batch is heated as soon as it closes.
        for pair in ops.chunks(2) {
            assert!(matches!(pair[0], Op::Create { .. }));
            assert!(matches!(pair[1], Op::Heat { .. }));
        }
    }

    #[test]
    fn aging_never_touches_heated_files_destructively() {
        let ops = FileAgingWorkload::small().ops(3);
        let mut heated = std::collections::HashSet::new();
        for op in &ops {
            match op {
                Op::Heat { name, .. } => {
                    heated.insert(name.clone());
                }
                Op::Overwrite { name, .. } | Op::Delete { name } => {
                    assert!(!heated.contains(name), "destructive op on heated {name}");
                }
                _ => {}
            }
        }
        assert!(!heated.is_empty(), "aging should heat some cold files");
    }

    #[test]
    fn mixed_traffic_is_steady_state_safe() {
        let w = MixedTrafficWorkload::small();
        let setup = w.setup_ops(11);
        let traffic = w.traffic_ops(11);
        assert_eq!(
            setup.len(),
            2 * w.archival_files + w.hot_files,
            "create+heat per archival file, create per hot file"
        );
        assert_eq!(traffic.len(), w.operations);
        // Traffic never creates, deletes, heats, or touches an archival
        // file destructively — every op replays cleanly forever.
        let mut reads = 0usize;
        for op in &traffic {
            match op {
                Op::Read { .. } => reads += 1,
                Op::Overwrite { name, .. } => {
                    assert!(name.starts_with("hot-"), "overwrite of {name}");
                }
                other => panic!("unexpected steady-state op {other:?}"),
            }
        }
        assert!(reads > 0 && reads < traffic.len(), "a genuine mix");
        // ops() is setup ++ traffic, so the Workload impl stays usable.
        assert_eq!(w.ops(11), {
            let mut all = setup;
            all.extend(traffic);
            all
        });
    }

    #[test]
    fn mixed_traffic_degenerate_configs_stay_safe() {
        // No hot files: everything becomes a read, nothing panics.
        let mut w = MixedTrafficWorkload::small();
        w.hot_files = 0;
        assert!(w
            .traffic_ops(3)
            .iter()
            .all(|op| matches!(op, Op::Read { .. })));
        // No files at all: an empty stream, not a panic.
        w.archival_files = 0;
        assert!(w.traffic_ops(3).is_empty());
    }

    #[test]
    fn fleet_device_seeds_decorrelate_but_stay_deterministic() {
        let w = MixedTrafficWorkload::small();
        let seeds: Vec<u64> = (0..4)
            .map(|d| MixedTrafficWorkload::device_seed(42, d))
            .collect();
        // Deterministic per (seed, device)…
        for (d, &s) in seeds.iter().enumerate() {
            assert_eq!(s, MixedTrafficWorkload::device_seed(42, d));
            assert_ne!(s, 42, "device stream must not alias the fleet seed");
        }
        // …and pairwise distinct streams.
        for a in 0..seeds.len() {
            for b in a + 1..seeds.len() {
                assert_ne!(seeds[a], seeds[b]);
                assert_ne!(w.traffic_ops(seeds[a]), w.traffic_ops(seeds[b]));
                assert_ne!(w.setup_ops(seeds[a]), w.setup_ops(seeds[b]));
            }
        }
    }

    #[test]
    fn op_sizes_match_config() {
        let w = FileAgingWorkload::small();
        for op in w.ops(4) {
            if let Op::Create { data, .. } | Op::Overwrite { data, .. } = op {
                assert_eq!(data.len(), w.file_bytes);
            }
        }
    }
}
