//! A fossilised index on SERO storage.
//!
//! §4.2 of the paper, after Zhu & Hsu's *fossilized index*: "builds a tree
//! from the root downwards. To insert a new node in the tree we start at
//! the root, visiting all nodes down to a leaf until a free slot is found
//! in which the hash of the new node can be inserted. The hash of the node
//! completely determines which slot in an existing node must be used, and
//! what path to traverse. The tamper evidence guarantee … relies on the
//! assumption that once all the slots of a node have been filled, the
//! storage device ensures that the node becomes RO. … A SERO device would
//! provide appropriate support … a completely filled node is simply
//! heated."
//!
//! Every index node occupies its own order-1 line (hash block + node
//! block). While a node has free slots, it is rewritten magnetically; the
//! moment its last slot fills, the line is heated and the node is
//! physically immutable. The slot for a key at depth `d` is bits
//! `[3d, 3d+3)` of its SHA-256 — the path is a pure function of the key,
//! so traversal needs no mutable metadata and the index is insert-only
//! (updates would be rewrites of history and are refused).
//!
//! # Examples
//!
//! ```
//! use sero_core::device::SeroDevice;
//! use sero_crypto::sha256;
//! use sero_fossil::FossilIndex;
//!
//! let mut index = FossilIndex::new(SeroDevice::with_blocks(64));
//! index.insert(sha256(b"record-1"), 41)?;
//! index.insert(sha256(b"record-2"), 42)?;
//! assert_eq!(index.lookup(&sha256(b"record-2"))?, Some(42));
//! assert_eq!(index.lookup(&sha256(b"record-9"))?, None);
//! # Ok::<(), sero_fossil::FossilError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use sero_core::device::{SeroDevice, SeroError};
use sero_core::line::Line;
use sero_crypto::Digest;
use std::collections::HashMap;

/// Slots per node (3 address bits per level).
pub const SLOTS: usize = 8;

/// Maximum tree depth: 3 bits per level over a 256-bit key.
pub const MAX_DEPTH: usize = 85;

/// Node-block magic ("FXNODE" truncated to 4).
const NODE_MAGIC: u32 = 0x46584E44;

/// Errors from the fossilised index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FossilError {
    /// The key is already present (fossilised indexes are insert-only and
    /// history independent; updates would be rewrites of history).
    Duplicate {
        /// The offending key.
        key: Digest,
    },
    /// The device has no room for another node line.
    NoSpace,
    /// A node block failed to parse.
    Corrupt {
        /// What failed.
        reason: String,
    },
    /// Device-level failure.
    Device(SeroError),
}

impl fmt::Display for FossilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FossilError::Duplicate { key } => write!(f, "key {key} already present"),
            FossilError::NoSpace => f.write_str("no space for another index node"),
            FossilError::Corrupt { reason } => write!(f, "corrupt index node: {reason}"),
            FossilError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for FossilError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FossilError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeroError> for FossilError {
    fn from(e: SeroError) -> FossilError {
        FossilError::Device(e)
    }
}

/// One slot: a key digest and its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    key: Digest,
    value: u64,
}

/// An in-memory node image (mirrored on the device).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Node {
    slots: [Option<Entry>; SLOTS],
}

impl Node {
    fn filled(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn is_full(&self) -> bool {
        self.filled() == SLOTS
    }

    fn encode(&self) -> [u8; 512] {
        let mut out = [0u8; 512];
        out[..4].copy_from_slice(&NODE_MAGIC.to_le_bytes());
        for (i, slot) in self.slots.iter().enumerate() {
            let base = 8 + i * 41;
            match slot {
                Some(e) => {
                    out[base] = 1;
                    out[base + 1..base + 33].copy_from_slice(e.key.as_bytes());
                    out[base + 33..base + 41].copy_from_slice(&e.value.to_le_bytes());
                }
                None => out[base] = 0,
            }
        }
        out
    }

    fn decode(data: &[u8; 512]) -> Result<Node, FossilError> {
        if u32::from_le_bytes(data[..4].try_into().expect("4")) != NODE_MAGIC {
            return Err(FossilError::Corrupt {
                reason: "bad node magic".to_string(),
            });
        }
        let mut node = Node::default();
        for i in 0..SLOTS {
            let base = 8 + i * 41;
            if data[base] == 1 {
                let mut key = [0u8; 32];
                key.copy_from_slice(&data[base + 1..base + 33]);
                let value = u64::from_le_bytes(data[base + 33..base + 41].try_into().expect("8"));
                node.slots[i] = Some(Entry {
                    key: Digest::from_bytes(key),
                    value,
                });
            }
        }
        Ok(node)
    }
}

/// Path identifier: the slot indices from the root, packed 3 bits each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct Path {
    packed: u128,
    depth: u8,
}

impl Path {
    fn child(self, slot: usize) -> Path {
        Path {
            packed: self.packed
                | ((slot as u128 + 1) << (3 * self.depth as u32 + self.depth as u32 / 8)),
            depth: self.depth + 1,
        }
    }
}

/// Slot index of `key` at `depth`: bits [3d, 3d+3) of the digest.
fn slot_of(key: &Digest, depth: usize) -> usize {
    let bit = 3 * depth;
    let byte = bit / 8;
    let shift = bit % 8;
    let b0 = key.as_bytes()[byte % 32] as usize;
    let b1 = key.as_bytes()[(byte + 1) % 32] as usize;
    ((b0 >> shift) | (b1 << (8 - shift))) & 0b111
}

/// The fossilised index.
#[derive(Debug, Clone)]
pub struct FossilIndex {
    dev: SeroDevice,
    nodes: HashMap<Path, (Line, Node)>,
    cursor: u64,
    len: usize,
}

impl FossilIndex {
    /// Creates an empty index over `dev`.
    pub fn new(dev: SeroDevice) -> FossilIndex {
        FossilIndex {
            dev,
            nodes: HashMap::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of index nodes (lines) allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes that have filled and been heated.
    pub fn fossilised_nodes(&self) -> usize {
        self.nodes
            .values()
            .filter(|(line, _)| self.dev.is_read_only(line.start()))
            .count()
    }

    /// The underlying device.
    pub fn device(&self) -> &SeroDevice {
        &self.dev
    }

    /// Mutable device access (attack surface).
    pub fn device_mut(&mut self) -> &mut SeroDevice {
        &mut self.dev
    }

    fn alloc_node_line(&mut self) -> Result<Line, FossilError> {
        let mut start = self.cursor.div_ceil(2) * 2;
        loop {
            if start + 2 > self.dev.block_count() {
                return Err(FossilError::NoSpace);
            }
            if !self.dev.is_read_only(start) && !self.dev.is_read_only(start + 1) {
                self.cursor = start + 2;
                return Ok(Line::new(start, 1).expect("aligned"));
            }
            start += 2;
        }
    }

    fn write_node(&mut self, line: Line, node: &Node) -> Result<(), FossilError> {
        self.dev.write_block(line.start() + 1, &node.encode())?;
        Ok(())
    }

    /// Inserts `key → value`.
    ///
    /// Walks root-down along the path the key's hash dictates; fills the
    /// first free slot; creates a child node when the path dead-ends; and
    /// **heats any node whose last slot just filled**.
    ///
    /// # Errors
    ///
    /// [`FossilError::Duplicate`] for repeated keys;
    /// [`FossilError::NoSpace`]; device errors.
    pub fn insert(&mut self, key: Digest, value: u64) -> Result<(), FossilError> {
        let mut path = Path::default();
        for depth in 0..MAX_DEPTH {
            // Materialise the node at this path if it does not exist.
            if !self.nodes.contains_key(&path) {
                let line = self.alloc_node_line()?;
                let node = Node::default();
                self.write_node(line, &node)?;
                self.nodes.insert(path, (line, node));
            }
            let (line, node) = self.nodes.get(&path).expect("just ensured").clone();
            let slot = slot_of(&key, depth);
            match node.slots[slot] {
                None => {
                    let mut updated = node;
                    updated.slots[slot] = Some(Entry { key, value });
                    self.write_node(line, &updated)?;
                    if updated.is_full() {
                        // "a completely filled node is simply heated"
                        self.dev.heat_line(line, b"fossil-node".to_vec(), 0)?;
                    }
                    self.nodes.insert(path, (line, updated));
                    self.len += 1;
                    return Ok(());
                }
                Some(existing) if existing.key == key => {
                    return Err(FossilError::Duplicate { key });
                }
                Some(_) => {
                    path = path.child(slot);
                }
            }
        }
        Err(FossilError::Corrupt {
            reason: "path exhausted (impossible for SHA-256 keys)".to_string(),
        })
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Device errors only.
    pub fn lookup(&mut self, key: &Digest) -> Result<Option<u64>, FossilError> {
        let mut path = Path::default();
        for depth in 0..MAX_DEPTH {
            let (_, node) = match self.nodes.get(&path) {
                Some(x) => x,
                None => return Ok(None),
            };
            let slot = slot_of(key, depth);
            match node.slots[slot] {
                None => return Ok(None),
                Some(e) if e.key == *key => return Ok(Some(e.value)),
                Some(_) => path = path.child(slot),
            }
        }
        Ok(None)
    }

    /// Verifies every fossilised (heated) node against its heated hash,
    /// and cross-checks the on-medium node image against the in-memory
    /// one. Returns the number of verified nodes; findings are returned as
    /// human-readable strings.
    ///
    /// # Errors
    ///
    /// Device errors only.
    pub fn verify_fossils(&mut self) -> Result<(usize, Vec<String>), FossilError> {
        let targets: Vec<(Line, Node)> = self
            .nodes
            .values()
            .filter(|(l, _)| self.dev.is_read_only(l.start()))
            .cloned()
            .collect();
        let mut verified = 0;
        let mut findings = Vec::new();
        for (line, cached) in targets {
            match self.dev.verify_line(line)? {
                sero_core::tamper::VerifyOutcome::Intact { .. } => {
                    // The heated hash matched; also confirm the stored node
                    // image still parses to what we think it holds.
                    let sector = self.dev.probe_mut().mrs(line.start() + 1).map_err(|e| {
                        FossilError::Corrupt {
                            reason: format!("node block unreadable: {e}"),
                        }
                    })?;
                    match Node::decode(&sector.data) {
                        Ok(on_medium) if on_medium == cached => verified += 1,
                        Ok(_) => findings.push(format!("{line}: node image diverges from cache")),
                        Err(e) => findings.push(format!("{line}: {e}")),
                    }
                }
                sero_core::tamper::VerifyOutcome::NotHeated => {
                    findings.push(format!("{line}: expected heat, found none"));
                }
                sero_core::tamper::VerifyOutcome::Tampered(report) => {
                    findings.push(report.to_string());
                }
            }
        }
        Ok((verified, findings))
    }

    /// The node contents as a canonical set (path, slot, key, value) — for
    /// history-independence checks.
    pub fn canonical_contents(&self) -> Vec<(u128, u8, usize, Digest, u64)> {
        let mut out = Vec::new();
        for (path, (_, node)) in &self.nodes {
            for (slot, entry) in node.slots.iter().enumerate() {
                if let Some(e) = entry {
                    out.push((path.packed, path.depth, slot, e.key, e.value));
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sero_crypto::sha256;

    fn index(blocks: u64) -> FossilIndex {
        FossilIndex::new(SeroDevice::with_blocks(blocks))
    }

    fn keys(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| sha256(format!("key-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn insert_lookup_round_trip() {
        let mut idx = index(256);
        for (i, k) in keys(30).iter().enumerate() {
            idx.insert(*k, i as u64).unwrap();
        }
        assert_eq!(idx.len(), 30);
        for (i, k) in keys(30).iter().enumerate() {
            assert_eq!(idx.lookup(k).unwrap(), Some(i as u64), "key {i}");
        }
        assert_eq!(idx.lookup(&sha256(b"absent")).unwrap(), None);
    }

    #[test]
    fn duplicates_rejected() {
        let mut idx = index(64);
        let k = sha256(b"once");
        idx.insert(k, 1).unwrap();
        assert!(matches!(
            idx.insert(k, 2),
            Err(FossilError::Duplicate { .. })
        ));
        assert_eq!(idx.lookup(&k).unwrap(), Some(1));
    }

    #[test]
    fn full_nodes_get_heated() {
        let mut idx = index(512);
        for (i, k) in keys(64).iter().enumerate() {
            idx.insert(*k, i as u64).unwrap();
        }
        assert!(idx.fossilised_nodes() >= 1, "the root must have filled");
        let (verified, findings) = idx.verify_fossils().unwrap();
        assert_eq!(verified, idx.fossilised_nodes());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn tampering_with_fossilised_node_detected() {
        let mut idx = index(512);
        for (i, k) in keys(64).iter().enumerate() {
            idx.insert(*k, i as u64).unwrap();
        }
        // Find a heated node line and rewrite its node block raw.
        let line = idx
            .nodes
            .values()
            .map(|(l, _)| *l)
            .find(|l| idx.dev.is_read_only(l.start()))
            .expect("a fossilised node exists");
        idx.device_mut()
            .probe_mut()
            .mws(line.start() + 1, &[0xAB; 512])
            .unwrap();
        let (_, findings) = idx.verify_fossils().unwrap();
        assert!(!findings.is_empty(), "tampering must surface");
    }

    #[test]
    fn deterministic_and_order_insensitive_lookups() {
        // The *structure* depends on arrival order (first-comer occupies a
        // slot; later colliders descend), but (a) a given order always
        // produces the identical tree, and (b) every inserted key is
        // findable under any order.
        let ks = keys(40);
        let build = |order: Vec<usize>| {
            let mut idx = index(512);
            for &i in &order {
                idx.insert(ks[i], i as u64).unwrap();
            }
            idx
        };
        let a1 = build((0..40).collect()).canonical_contents();
        let a2 = build((0..40).collect()).canonical_contents();
        assert_eq!(a1, a2, "same order must fossilise identically");

        let mut reversed = build((0..40).rev().collect());
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(reversed.lookup(k).unwrap(), Some(i as u64));
        }
    }

    #[test]
    fn no_space_reported() {
        let mut idx = index(4); // room for 2 node lines only
        let mut inserted = 0;
        let mut hit_no_space = false;
        let all = keys(200);
        let mut accepted = Vec::new();
        for k in &all {
            match idx.insert(*k, inserted) {
                Ok(()) => {
                    accepted.push(*k);
                    inserted += 1;
                }
                Err(FossilError::NoSpace) => {
                    hit_no_space = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(hit_no_space, "a 2-line device must fill");
        assert!(inserted >= 2, "the root accepts entries before overflowing");
        // Everything accepted remains findable.
        for (i, k) in accepted.iter().enumerate() {
            assert_eq!(idx.lookup(k).unwrap(), Some(i as u64));
        }
    }

    #[test]
    fn slot_of_covers_all_values() {
        let mut seen = [false; SLOTS];
        for k in keys(100) {
            seen[slot_of(&k, 0)] = true;
        }
        assert!(seen.iter().all(|&s| s), "3-bit slots should all occur");
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            FossilError::Duplicate { key: Digest::ZERO },
            FossilError::NoSpace,
            FossilError::Corrupt { reason: "x".into() },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
