//! Minimal hexadecimal encoding/decoding used for digests and reports.
//!
//! # Examples
//!
//! ```
//! assert_eq!(sero_crypto::hex::encode(&[0xde, 0xad]), "dead");
//! assert_eq!(sero_crypto::hex::decode("dead").unwrap(), vec![0xde, 0xad]);
//! ```

use core::fmt;

/// Error returned when parsing hexadecimal text fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseHexError {
    /// The input length was odd or did not match the expected length.
    BadLength {
        /// Number of hex characters expected (0 when only evenness matters).
        expected: usize,
        /// Number of characters actually supplied.
        actual: usize,
    },
    /// A character outside `[0-9a-fA-F]` was found.
    BadChar {
        /// Byte offset of the offending character.
        index: usize,
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHexError::BadLength { expected, actual } if *expected == 0 => {
                write!(f, "hex string has odd length {actual}")
            }
            ParseHexError::BadLength { expected, actual } => {
                write!(f, "hex string has length {actual}, expected {expected}")
            }
            ParseHexError::BadChar { index, ch } => {
                write!(f, "invalid hex character {ch:?} at index {index}")
            }
        }
    }
}

impl std::error::Error for ParseHexError {}

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes `bytes` as lowercase hexadecimal.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a hexadecimal string into bytes.
///
/// # Errors
///
/// Returns [`ParseHexError::BadLength`] for odd-length input and
/// [`ParseHexError::BadChar`] for non-hex characters.
pub fn decode(s: &str) -> Result<Vec<u8>, ParseHexError> {
    if s.len() % 2 != 0 {
        return Err(ParseHexError::BadLength {
            expected: 0,
            actual: s.len(),
        });
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for i in (0..bytes.len()).step_by(2) {
        let hi = nibble(bytes[i]).ok_or(ParseHexError::BadChar {
            index: i,
            ch: bytes[i] as char,
        })?;
        let lo = nibble(bytes[i + 1]).ok_or(ParseHexError::BadChar {
            index: i + 1,
            ch: bytes[i + 1] as char,
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn nibble(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn odd_length_rejected() {
        assert!(matches!(
            decode("abc"),
            Err(ParseHexError::BadLength { actual: 3, .. })
        ));
    }

    #[test]
    fn bad_char_rejected_with_position() {
        assert_eq!(
            decode("azzz"),
            Err(ParseHexError::BadChar { index: 1, ch: 'z' })
        );
    }

    #[test]
    fn error_display_nonempty() {
        let e = ParseHexError::BadChar { index: 3, ch: 'g' };
        assert!(format!("{e}").contains("index 3"));
    }
}
