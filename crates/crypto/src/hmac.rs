//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! The SERO paper deliberately uses *no* cryptographic keys: heated hashes
//! give integrity only. HMAC is provided for the metadata area of a heated
//! block (Figure 3 leaves 3584 bits for "meta data, signatures, etc."), so
//! that deployments which *do* have a key escrow can bind heated lines to an
//! authority. It is optional everywhere in the stack.
//!
//! # Examples
//!
//! ```
//! use sero_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
//! assert_eq!(
//!     tag.to_hex(),
//!     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
//! );
//! ```

use crate::sha256::{Digest, Sha256, BLOCK_LEN};

/// Incremental HMAC-SHA-256 computation.
///
/// # Examples
///
/// ```
/// use sero_crypto::hmac::{hmac_sha256, HmacSha256};
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"msg");
/// assert_eq!(mac.finalize(), hmac_sha256(b"key", b"msg"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates a MAC instance for `key`.
    ///
    /// Keys longer than the SHA-256 block size are hashed first, as the RFC
    /// requires.
    pub fn new(key: &[u8]) -> HmacSha256 {
        let mut padded = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            padded[..digest.as_bytes().len()].copy_from_slice(digest.as_bytes());
        } else {
            padded[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = padded[i] ^ 0x36;
            opad[i] = padded[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the tag.
    pub fn finalize(mut self) -> Digest {
        let inner_digest = self.inner.finalize();
        self.outer.update(inner_digest.as_bytes());
        self.outer.finalize()
    }
}

/// One-shot HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_binary() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"split ");
        mac.update(b"message");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"split message"));
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
