//! Cryptographic substrate for the SERO tamper-evident storage stack.
//!
//! The FAST 2008 paper *Towards Tamper-evident Storage on Patterned Media*
//! stores a secure hash of each heated line in write-once Manchester cells.
//! This crate provides that hash — [`sha256()`] implemented from scratch per
//! FIPS 180-4 and validated against NIST vectors — plus [`hmac`] for the
//! optional keyed metadata described in the paper's Figure 3, and [`hex`]
//! utilities used by reports and tools.
//!
//! The paper's proposal is deliberately key-free: it provides data integrity
//! (hashing plus hardware support), not confidentiality or authenticity.
//! Nothing in this crate manages keys for the core protocol.
//!
//! # Examples
//!
//! ```
//! use sero_crypto::sha256::sha256;
//!
//! // Hash a line's worth of blocks together with their physical addresses,
//! // exactly as the SERO heat operation does.
//! let block: [u8; 512] = [0x42; 512];
//! let pba: u64 = 4096;
//! let mut hasher = sero_crypto::sha256::Sha256::new();
//! hasher.update(&pba.to_le_bytes());
//! hasher.update(&block);
//! let digest = hasher.finalize();
//! assert_eq!(digest.as_bytes().len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hex;
pub mod hmac;
pub mod sha256;

pub use sha256::{sha256, Digest, Sha256};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Incremental hashing over arbitrary chunkings equals one-shot.
        #[test]
        fn incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                       splits in proptest::collection::vec(0usize..2048, 0..8)) {
            let expected = sha256(&data);
            let mut points: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
            points.sort_unstable();
            let mut h = Sha256::new();
            let mut prev = 0;
            for p in points {
                h.update(&data[prev..p]);
                prev = p;
            }
            h.update(&data[prev..]);
            prop_assert_eq!(h.finalize(), expected);
        }

        /// Flipping one bit always changes the digest.
        #[test]
        fn bit_flip_changes_digest(data in proptest::collection::vec(any::<u8>(), 1..512),
                                   byte in 0usize..512, bit in 0u8..8) {
            let byte = byte % data.len();
            let mut flipped = data.clone();
            flipped[byte] ^= 1 << bit;
            prop_assert_ne!(sha256(&data), sha256(&flipped));
        }

        /// Hex round-trips for arbitrary data.
        #[test]
        fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
        }

        /// Digest bit iterator agrees with manual bit extraction.
        #[test]
        fn digest_bits_agree(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let d = sha256(&data);
            let bits: Vec<bool> = d.bits().collect();
            for (i, bit) in bits.iter().enumerate() {
                let byte = d.as_bytes()[i / 8];
                let expect = (byte >> (7 - (i % 8))) & 1 == 1;
                prop_assert_eq!(*bit, expect);
            }
        }
    }
}
