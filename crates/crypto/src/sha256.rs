//! SHA-256 implemented from scratch per FIPS 180-4.
//!
//! The SERO heat operation stores a SHA-256 digest of a line's blocks and
//! physical addresses in write-once Manchester cells. This module provides
//! both an incremental [`Sha256`] hasher and a one-shot [`sha256`] helper.
//!
//! No external cryptography crate is used: the offline dependency allow-list
//! excludes one, and a self-contained implementation validated against the
//! NIST CAVS vectors is itself part of the reproduced substrate (see
//! `DESIGN.md`).
//!
//! # Examples
//!
//! ```
//! use sero_crypto::sha256::{sha256, Sha256};
//!
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//!
//! let mut hasher = Sha256::new();
//! hasher.update(b"ab");
//! hasher.update(b"c");
//! assert_eq!(hasher.finalize(), digest);
//! ```

use core::fmt;

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Number of bytes in one SHA-256 message block.
pub const BLOCK_LEN: usize = 64;

/// First 32 bits of the fractional parts of the cube roots of the first 64
/// primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A SHA-256 digest.
///
/// Wraps the raw 32 bytes so that digests are distinguishable from arbitrary
/// byte buffers in APIs (`C-NEWTYPE`), while still converting cheaply via
/// [`Digest::into_bytes`] and [`AsRef`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// A digest of all zero bytes, useful as a sentinel for "no hash yet".
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Consumes the digest and returns the raw bytes.
    pub fn into_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Builds a digest from raw bytes.
    pub fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Digest {
        Digest(bytes)
    }

    /// Renders the digest as lowercase hexadecimal.
    pub fn to_hex(&self) -> String {
        crate::hex::encode(&self.0)
    }

    /// Parses a digest from a 64-character hexadecimal string.
    ///
    /// # Errors
    ///
    /// Returns [`crate::hex::ParseHexError`] when the input is not exactly 64
    /// hex characters.
    pub fn from_hex(s: &str) -> Result<Digest, crate::hex::ParseHexError> {
        let bytes = crate::hex::decode(s)?;
        if bytes.len() != DIGEST_LEN {
            return Err(crate::hex::ParseHexError::BadLength {
                expected: DIGEST_LEN * 2,
                actual: s.len(),
            });
        }
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(&bytes);
        Ok(Digest(out))
    }

    /// Constant-time equality comparison.
    ///
    /// The SERO verify operation compares recomputed digests against digests
    /// read back from the medium; constant-time comparison is standard
    /// hygiene even though the threat model here is physical tampering.
    pub fn ct_eq(&self, other: &Digest) -> bool {
        let mut acc = 0u8;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            acc |= a ^ b;
        }
        acc == 0
    }

    /// Returns an iterator over the 256 bits of the digest, most significant
    /// bit of byte 0 first. This is the order in which the heat operation
    /// lays Manchester cells onto the medium (Figure 3 of the paper).
    pub fn bits(&self) -> impl Iterator<Item = bool> + '_ {
        self.0
            .iter()
            .flat_map(|byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Digest {
        Digest(bytes)
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use sero_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let d = h.finalize();
/// assert_eq!(d, sero_crypto::sha256::sha256(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total number of message bytes processed so far.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("bytes_processed", &self.len)
            .field("buffered", &self.buf_len)
            .finish()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Top up a partially filled buffer first.
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Absorbs `data` and returns `self`, for call chaining.
    pub fn chain(mut self, data: &[u8]) -> Sha256 {
        self.update(data);
        self
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);

        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        // `update` changed self.len but the recorded bit_len is already fixed.
        if self.buf_len > BLOCK_LEN - 8 {
            let fill = BLOCK_LEN - self.buf_len;
            self.update(&[0u8; BLOCK_LEN][..fill]);
        }
        let fill = BLOCK_LEN - 8 - self.buf_len;
        self.update(&[0u8; BLOCK_LEN][..fill]);
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// The FIPS 180-4 compression function applied to one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// # Examples
///
/// ```
/// let d = sero_crypto::sha256::sha256(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST CAVS / FIPS 180-4 example vectors plus boundary-length messages.
    const VECTORS: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
        (
            b"The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
        ),
    ];

    #[test]
    fn nist_vectors() {
        for (msg, expected) in VECTORS {
            assert_eq!(sha256(msg).to_hex(), *expected, "message {msg:?}");
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-4 long vector: 1,000,000 repetitions of 'a'.
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_all_split_points() {
        let msg: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expected = sha256(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths straddling the 55/56/64-byte padding boundaries must all
        // round-trip through the incremental API identically.
        for len in [
            0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129,
        ] {
            let msg = vec![0xa5u8; len];
            let one = sha256(&msg);
            let mut h = Sha256::new();
            for b in &msg {
                h.update(core::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one, "length {len}");
        }
    }

    #[test]
    fn digest_hex_round_trip() {
        let d = sha256(b"round trip");
        let parsed = Digest::from_hex(&d.to_hex()).unwrap();
        assert_eq!(d, parsed);
    }

    #[test]
    fn digest_bits_order_msb_first() {
        let d = Digest::from_bytes({
            let mut b = [0u8; DIGEST_LEN];
            b[0] = 0b1010_0000;
            b
        });
        let bits: Vec<bool> = d.bits().take(4).collect();
        assert_eq!(bits, vec![true, false, true, false]);
        assert_eq!(d.bits().count(), 256);
    }

    #[test]
    fn ct_eq_matches_eq() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert!(a.ct_eq(&a));
        assert!(!a.ct_eq(&b));
    }

    #[test]
    fn chain_builds_same_digest() {
        let d = Sha256::new().chain(b"he").chain(b"llo").finalize();
        assert_eq!(d, sha256(b"hello"));
    }

    #[test]
    fn debug_display_nonempty() {
        let d = sha256(b"x");
        assert!(!format!("{d:?}").is_empty());
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(!format!("{:?}", Sha256::new()).is_empty());
    }
}
