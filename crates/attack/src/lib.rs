//! Security-analysis harness — §5 of the FAST 2008 paper, executable.
//!
//! The paper's threat model is a powerful insider ("a disgruntled
//! employee, or a dishonest CEO") with root on every connected system and
//! physical access to the device. Its security analysis walks through the
//! attacks such an insider can mount and argues each is either *detected*,
//! *harmless*, *refused*, or *recoverable*. This crate turns that prose
//! into a runnable test battery:
//!
//! | §5 claim | attack |
//! |---|---|
//! | mwb on the hash "has no effect" | [`attacks::AttackKind::MwbHash`] |
//! | mwb on data "is detected by the verify operation" | [`attacks::AttackKind::MwbData`] |
//! | ewb on the hash yields illegal `HH` | [`attacks::AttackKind::EwbHash`] |
//! | ewb on data "appears as a read error" | [`attacks::AttackKind::EwbDataLight`] / [`attacks::AttackKind::EwbDataHeavy`] |
//! | splitting/coalescing blocked by known physical addresses | [`attacks::AttackKind::SplitFile`] / [`attacks::AttackKind::CoalesceFiles`] |
//! | `rm` implies a tamper-evident inode write | [`attacks::AttackKind::RmHeatedFile`] |
//! | "a copy can always be distinguished from an original" | [`attacks::AttackKind::CopyMask`] |
//! | cleared directory ⇒ fsck recovers heated files | [`attacks::AttackKind::DirectoryClear`] |
//! | bulk erase leaves all electrical information | [`attacks::AttackKind::BulkErase`] |
//!
//! # Examples
//!
//! ```
//! use sero_attack::attacks::{run, AttackKind, Outcome};
//!
//! let report = run(AttackKind::MwbData);
//! assert_eq!(report.observed, Outcome::Detected);
//! assert!(report.matches_paper());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod scenario;

pub use attacks::{run, run_all, AttackKind, AttackReport, Outcome};
pub use scenario::Scenario;
