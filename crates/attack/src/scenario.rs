//! The standard attack scenario.
//!
//! §5's threat model: "a powerful attacker (i.e., a disgruntled employee,
//! or a dishonest CEO) regrets the existence of a certain stored record,
//! and … wishes history to be rewritten". The attacker has root on every
//! connected system and can cable the device to a laptop — in this code
//! base that is `probe_mut()` / `medium_mut()` access, which bypasses all
//! SERO protocol checks.
//!
//! Every attack runs against the same freshly built world: a file system
//! with one heated target file (the record the attacker regrets), one
//! unheated live file, and synced metadata.

use sero_core::device::SeroDevice;
use sero_core::line::Line;
use sero_fs::alloc::WriteClass;
use sero_fs::fs::{FsConfig, SeroFs};

/// The record the attacker wants gone.
pub const TARGET: &str = "incriminating-ledger";

/// An ordinary unheated file, for contrast.
pub const BYSTANDER: &str = "scratch-notes";

/// The contents of the target record.
pub fn target_contents() -> Vec<u8> {
    b"2007-11-05 transfer 9_500_000 EUR to account CH-91-XXXX (approved: CEO)".repeat(20)
}

/// A ready-to-attack world.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The file system under attack.
    pub fs: SeroFs,
    /// The heated line protecting the target record.
    pub target_line: Line,
}

impl Scenario {
    /// Builds the standard world on a fresh device.
    ///
    /// # Panics
    ///
    /// Panics only on internal inconsistencies — scenario construction is
    /// infallible by design so every attack starts from the same state.
    pub fn standard() -> Scenario {
        let dev = SeroDevice::with_blocks(512);
        let mut fs = SeroFs::format(dev, FsConfig::default()).expect("format");
        fs.create(TARGET, &target_contents(), WriteClass::Archival)
            .expect("create target");
        fs.create(
            BYSTANDER,
            b"meeting notes, nothing to see",
            WriteClass::Normal,
        )
        .expect("create bystander");
        let target_line = fs
            .heat(
                TARGET,
                b"quarterly compliance freeze".to_vec(),
                1_199_145_600,
            )
            .expect("heat target");
        fs.sync().expect("sync");
        Scenario { fs, target_line }
    }

    /// The heated hash block's first electrical-area dot (laptop access).
    pub fn hash_block_dot(&self, cell: usize) -> u64 {
        self.fs
            .device()
            .probe()
            .electrical_cell_dot(self.target_line.hash_block(), cell)
    }

    /// A data block of the target line holding file contents.
    pub fn target_data_block(&self) -> u64 {
        // Line layout: hash ‖ inode ‖ data…
        self.target_line.start() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_clean_before_attack() {
        let mut s = Scenario::standard();
        assert_eq!(s.fs.read(TARGET).unwrap(), target_contents());
        let outcome = s.fs.verify(TARGET).unwrap();
        assert!(outcome.is_intact());
        assert!(s.fs.exists(BYSTANDER));
    }

    #[test]
    fn scenario_is_reproducible() {
        let a = Scenario::standard();
        let b = Scenario::standard();
        assert_eq!(a.target_line, b.target_line);
    }
}
