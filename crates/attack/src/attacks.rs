//! The §5 attack implementations and their detection outcomes.
//!
//! Each function takes a fresh [`Scenario`], performs one attack through
//! the raw device interface (the attacker's laptop), and then plays the
//! *defender*: runs the verification/recovery machinery and reports what
//! it found. The [`AttackReport`] compares the observation to what the
//! paper's analysis predicts, so EXP-SEC can print a paper-vs-measured
//! table.

use crate::scenario::{Scenario, TARGET};
use core::fmt;
use sero_core::line::Line;
use sero_fs::fsck;
use sero_probe::sector::DATA_AREA_FIRST_DOT;

/// The §5 attack catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// §5.1 "mwb hash": magnetically rewrite the heated hash block.
    MwbHash,
    /// §5.1 "mwb inode/data": magnetically rewrite protected data.
    MwbData,
    /// §5.1 "ewb hash": heat extra dots of the hash block (`UH/HU → HH`).
    EwbHash,
    /// §5.1 "ewb inode/data", light: heat a few scattered data dots.
    EwbDataLight,
    /// §5.1 "ewb inode/data", heavy: heat a burst of data dots.
    EwbDataHeavy,
    /// §5.1 splitting: heat a forged sub-line inside the protected line.
    SplitFile,
    /// §5.1 coalescing: heat a forged larger line over the protected one.
    CoalesceFiles,
    /// §5.2: `rm` the heated file through the file system.
    RmHeatedFile,
    /// §5.2: copy the file elsewhere to mask the original.
    CopyMask,
    /// §5.2: clear the directory structure (checkpoint region).
    DirectoryClear,
    /// §5.2: bulk-erase (degauss) the entire medium.
    BulkErase,
    /// §8: physically shred the record through the retention mechanism —
    /// "vulnerable to attacks by a dishonest CEO and as such not wholly
    /// satisfactory". The data is gone, but the destruction screams.
    ShredRecord,
    /// §8: the ultimate adversary — a focused-ion-beam lab rewrites the
    /// data *and* rebuilds the heated hash cells to match. Beats `verify`;
    /// caught by forensic magnetic imaging.
    FibForgery,
}

impl AttackKind {
    /// All attacks in presentation order.
    pub fn all() -> &'static [AttackKind] {
        use AttackKind::*;
        &[
            MwbHash,
            MwbData,
            EwbHash,
            EwbDataLight,
            EwbDataHeavy,
            SplitFile,
            CoalesceFiles,
            RmHeatedFile,
            CopyMask,
            DirectoryClear,
            BulkErase,
            ShredRecord,
            FibForgery,
        ]
    }

    /// The paper's §5 prose for this attack.
    pub fn paper_quote(&self) -> &'static str {
        match self {
            AttackKind::MwbHash => {
                "Changing the magnetisation of an electrically written bit of the hash has no effect"
            }
            AttackKind::MwbData => {
                "Changing the magnetisation of a magnetically written bit of the data is detected by the verify operation"
            }
            AttackKind::EwbHash => "UH->HH or HU->HH; HH is an illegal code",
            AttackKind::EwbDataLight | AttackKind::EwbDataHeavy => {
                "an electrically written bit in the data ... appears as a read error"
            }
            AttackKind::SplitFile | AttackKind::CoalesceFiles => {
                "the device insists that hashes are written at known physical addresses"
            }
            AttackKind::RmHeatedFile => {
                "This implies writing the inode, which will be tamper-evident"
            }
            AttackKind::CopyMask => "a copy can always be distinguished from an original",
            AttackKind::DirectoryClear => {
                "a fsck style scan of the medium would definitely recover all the heated files"
            }
            AttackKind::BulkErase => {
                "all electrically written information is still present, thus providing the required evidence"
            }
            AttackKind::ShredRecord => {
                "both approaches are vulnerable to attacks by a dishonest CEO and as such not wholly satisfactory"
            }
            AttackKind::FibForgery => {
                "a forensics team would probably have no difficulty identifying a reconstructed out-of-plane dot from an original"
            }
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackKind::MwbHash => "mwb-hash",
            AttackKind::MwbData => "mwb-data",
            AttackKind::EwbHash => "ewb-hash",
            AttackKind::EwbDataLight => "ewb-data-light",
            AttackKind::EwbDataHeavy => "ewb-data-heavy",
            AttackKind::SplitFile => "split-file",
            AttackKind::CoalesceFiles => "coalesce-files",
            AttackKind::RmHeatedFile => "rm-heated-file",
            AttackKind::CopyMask => "copy-mask",
            AttackKind::DirectoryClear => "directory-clear",
            AttackKind::BulkErase => "bulk-erase",
            AttackKind::ShredRecord => "shred-record",
            AttackKind::FibForgery => "fib-forgery",
        };
        f.write_str(s)
    }
}

/// How an attack ends, from the defender's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Verification produced explicit tamper evidence.
    Detected,
    /// The attack had no effect on integrity (absorbed by physics or ECC).
    Harmless,
    /// The protocol refused the operation outright.
    Refused,
    /// Data or namespace was recovered despite the attack.
    Recovered,
    /// The attack succeeded without leaving evidence — a defence failure.
    Undetected,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::Detected => "detected",
            Outcome::Harmless => "harmless",
            Outcome::Refused => "refused",
            Outcome::Recovered => "recovered",
            Outcome::Undetected => "UNDETECTED",
        };
        f.write_str(s)
    }
}

/// The result of running one attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackReport {
    /// Which attack ran.
    pub kind: AttackKind,
    /// What §5 predicts.
    pub expected: Outcome,
    /// What the defender observed.
    pub observed: Outcome,
    /// Supporting detail for the experiment table.
    pub detail: String,
}

impl AttackReport {
    /// True when observation matches the paper's prediction.
    pub fn matches_paper(&self) -> bool {
        self.expected == self.observed
    }
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} expected {:<9} observed {:<9} {} | {}",
            self.kind.to_string(),
            self.expected.to_string(),
            self.observed.to_string(),
            if self.matches_paper() { "OK " } else { "!!" },
            self.detail
        )
    }
}

/// Runs `kind` against a fresh standard scenario.
pub fn run(kind: AttackKind) -> AttackReport {
    let scenario = Scenario::standard();
    match kind {
        AttackKind::MwbHash => mwb_hash(scenario),
        AttackKind::MwbData => mwb_data(scenario),
        AttackKind::EwbHash => ewb_hash(scenario),
        AttackKind::EwbDataLight => ewb_data(scenario, 4, false),
        AttackKind::EwbDataHeavy => ewb_data(scenario, 0, true),
        AttackKind::SplitFile => split_file(scenario),
        AttackKind::CoalesceFiles => coalesce(scenario),
        AttackKind::RmHeatedFile => rm_heated(scenario),
        AttackKind::CopyMask => copy_mask(scenario),
        AttackKind::DirectoryClear => directory_clear(scenario),
        AttackKind::BulkErase => bulk_erase(scenario),
        AttackKind::ShredRecord => shred_record(scenario),
        AttackKind::FibForgery => fib_forgery(scenario),
    }
}

fn fib_forgery(mut s: Scenario) -> AttackReport {
    use rand::SeedableRng;
    use sero_core::layout::HashBlockPayload;
    use sero_media::forensics::MagneticImager;

    let line = s.target_line;

    // Step 1: rewrite the incriminating data block.
    let mut doctored = [0u8; 512];
    doctored[..24].copy_from_slice(b"2007-11-05 nothing here ");
    let victim_block = s.target_data_block();
    s.fs.device_mut()
        .probe_mut()
        .mws(victim_block, &doctored)
        .expect("raw write");

    // Step 2: compute the digest the forged line *should* carry, and read
    // the original payload to preserve its metadata and timestamp.
    let new_digest = s.fs.device_mut().compute_line_digest(line).expect("digest");
    let old_scan =
        s.fs.device_mut()
            .probe_mut()
            .ers(line.hash_block())
            .expect("ers");
    let old_payload = HashBlockPayload::from_scan(&old_scan).expect("valid before forgery");
    let forged = HashBlockPayload::new(
        line,
        new_digest,
        old_payload.timestamp(),
        old_payload.metadata().to_vec(),
    )
    .expect("payload");

    // Step 3: the FIB lab. For every cell whose value changes, the old
    // heated dot must be physically rebuilt and the new one heated.
    let old_bits = old_payload.to_bits();
    let new_bits = forged.to_bits();
    let mut rebuilt = 0;
    for (cell, (&old_bit, &new_bit)) in old_bits.iter().zip(new_bits.iter()).enumerate() {
        if old_bit == new_bit {
            continue;
        }
        let dot = s.hash_block_dot(cell);
        // HU=0 heats the first dot, UH=1 the second.
        let (old_heated, new_heated) = if old_bit {
            (dot + 1, dot)
        } else {
            (dot, dot + 1)
        };
        let medium = s.fs.device_mut().probe_mut().medium_mut();
        medium.fib_reconstruct(old_heated, false);
        rebuilt += 1;
        medium.heat(new_heated);
    }

    // The forgery beats logical verification…
    let verify_passes =
        s.fs.verify(crate::scenario::TARGET)
            .map(|o| o.is_intact())
            .unwrap_or(false);

    // …but forensic magnetic imaging of the hash block finds the scars.
    let first = s.fs.device().probe().block_first_dot(line.hash_block());
    let last = first + sero_probe::sector::SECTOR_DOTS as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1B);
    let report = MagneticImager::default().inspect_repeatedly(
        s.fs.device().probe().medium(),
        first..last,
        3,
        &mut rng,
    );

    AttackReport {
        kind: AttackKind::FibForgery,
        expected: Outcome::Detected,
        observed: if report.found_tampering() {
            Outcome::Detected
        } else {
            Outcome::Undetected
        },
        detail: format!(
            "{rebuilt} dots rebuilt; verify fooled: {verify_passes}; imaging found {} scar(s)",
            report.reconstructed_found.len()
        ),
    }
}

fn shred_record(mut s: Scenario) -> AttackReport {
    use sero_core::badblock::{classify_block, BlockClass};
    // The CEO invokes the §8 retention shredder on the incriminating line.
    let line = s.target_line;
    s.fs.device_mut().shred_line(line).expect("shred");

    // Defender: the data is unrecoverable, but the destruction is
    // unmistakable: the line fails verification AND every block carries
    // the uniform all-HH shred signature.
    let verify_tampered =
        s.fs.device_mut()
            .verify_line(line)
            .expect("verify")
            .is_tampered();
    let shred_signature = line.blocks().all(|pba| {
        matches!(
            classify_block(s.fs.device_mut(), pba),
            Ok(BlockClass::Shredded)
        )
    });
    AttackReport {
        kind: AttackKind::ShredRecord,
        expected: Outcome::Detected,
        observed: if verify_tampered && shred_signature {
            Outcome::Detected
        } else {
            Outcome::Undetected
        },
        detail: format!(
            "data destroyed; verify tampered: {verify_tampered}; all-HH shred signature: {shred_signature}"
        ),
    }
}

/// Runs the full catalogue.
pub fn run_all() -> Vec<AttackReport> {
    AttackKind::all().iter().map(|&k| run(k)).collect()
}

fn verify_outcome(s: &mut Scenario) -> (bool, String) {
    match s.fs.verify(TARGET) {
        Ok(o) if o.is_intact() => (true, "verify: intact".to_string()),
        Ok(o) => match o.report() {
            Some(r) => (
                false,
                format!(
                    "verify: {}",
                    r.evidence()
                        .iter()
                        .map(|e| e.kind())
                        .collect::<Vec<_>>()
                        .join("+")
                ),
            ),
            None => (false, "verify: not heated?!".to_string()),
        },
        Err(e) => (false, format!("verify error: {e}")),
    }
}

fn mwb_hash(mut s: Scenario) -> AttackReport {
    // Flip the magnetisation of every electrical-area dot of the hash
    // block. Only heat is information there; this must do nothing.
    for cell in 0..512 {
        let dot = s.hash_block_dot(cell);
        s.fs.device_mut().probe_mut().mwb(dot, true);
        s.fs.device_mut().probe_mut().mwb(dot ^ 1, false);
    }
    let (intact, detail) = verify_outcome(&mut s);
    AttackReport {
        kind: AttackKind::MwbHash,
        expected: Outcome::Harmless,
        observed: if intact {
            Outcome::Harmless
        } else {
            Outcome::Detected
        },
        detail,
    }
}

fn mwb_data(mut s: Scenario) -> AttackReport {
    // Rewrite one protected data block with doctored contents.
    let mut doctored = [0u8; 512];
    doctored[..28].copy_from_slice(b"2007-11-05 transfer 1 EUR   ");
    let block = s.target_data_block();
    s.fs.device_mut()
        .probe_mut()
        .mws(block, &doctored)
        .expect("raw write");
    let (intact, detail) = verify_outcome(&mut s);
    AttackReport {
        kind: AttackKind::MwbData,
        expected: Outcome::Detected,
        observed: if intact {
            Outcome::Undetected
        } else {
            Outcome::Detected
        },
        detail,
    }
}

fn ewb_hash(mut s: Scenario) -> AttackReport {
    // Heat the complementary dots of the first few written hash cells.
    for cell in 0..4 {
        let dot = s.hash_block_dot(cell);
        // One of (dot, dot+1) is already heated; heat both.
        s.fs.device_mut().probe_mut().ewb(dot);
        s.fs.device_mut().probe_mut().ewb(dot + 1);
    }
    let (intact, detail) = verify_outcome(&mut s);
    AttackReport {
        kind: AttackKind::EwbHash,
        expected: Outcome::Detected,
        observed: if intact {
            Outcome::Undetected
        } else {
            Outcome::Detected
        },
        detail,
    }
}

fn ewb_data(mut s: Scenario, scattered: usize, burst: bool) -> AttackReport {
    let block = s.target_data_block();
    let first = s.fs.device().probe().block_first_dot(block) + DATA_AREA_FIRST_DOT as u64;
    if burst {
        // Destroy 80 contiguous bytes: 20 symbols per RS lane, far past
        // correction capacity.
        for dot in 0..80 * 8 {
            s.fs.device_mut().probe_mut().ewb(first + dot);
        }
    } else {
        // A handful of scattered dots in distinct bytes: the sector ECC
        // absorbs them as erasures.
        for k in 0..scattered {
            s.fs.device_mut().probe_mut().ewb(first + (k * 64) as u64);
        }
    }
    let (intact, detail) = verify_outcome(&mut s);
    let (kind, expected) = if burst {
        (AttackKind::EwbDataHeavy, Outcome::Detected)
    } else {
        (AttackKind::EwbDataLight, Outcome::Harmless)
    };
    AttackReport {
        kind,
        expected,
        observed: if intact {
            Outcome::Harmless
        } else {
            Outcome::Detected
        },
        detail,
    }
}

fn split_file(mut s: Scenario) -> AttackReport {
    // The attacker forges a *valid* sub-line inside the protected line:
    // an aligned smaller line whose hash he computes over the existing
    // data, heated through the raw device. (dp "carefully crafted to look
    // like a valid hash h'".)
    let victim = s.target_line;
    let sub = Line::new(victim.start() + victim.len() / 2, victim.order() - 1)
        .expect("half line is aligned");

    // Compute a correct digest for the sub-line and burn it, bypassing the
    // SERO overlap check by driving the probe device directly.
    let digest = {
        let dev = s.fs.device_mut();
        // read data blocks raw
        let mut hasher = sero_crypto::Sha256::new();
        hasher.update(b"SERO-line-v1");
        hasher.update(&[sub.order() as u8]);
        hasher.update(&sub.start().to_le_bytes());
        for pba in sub.data_blocks() {
            let sector = dev.probe_mut().mrs(pba).expect("readable");
            hasher.update(&pba.to_le_bytes());
            hasher.update(&sector.data);
        }
        hasher.finalize()
    };
    let payload = sero_core::layout::HashBlockPayload::new(sub, digest, 9, b"forged".to_vec())
        .expect("payload");
    s.fs.device_mut()
        .probe_mut()
        .ews(sub.hash_block(), &payload.to_bits())
        .expect("raw heat");

    // Defender: the original line now fails (its data block gained heated
    // dots where the forged hash landed), and a registry scan exposes the
    // overlapping lines.
    let (intact, mut detail) = verify_outcome(&mut s);
    let scan = s.fs.device_mut().rebuild_registry().expect("scan");
    let overlap_evidence = !scan.overlapping_lines.is_empty();
    detail.push_str(&format!(
        "; scan: {} lines, {} overlapping pairs",
        scan.lines_found,
        scan.overlapping_lines.len()
    ));
    AttackReport {
        kind: AttackKind::SplitFile,
        expected: Outcome::Detected,
        observed: if !intact || overlap_evidence {
            Outcome::Detected
        } else {
            Outcome::Undetected
        },
        detail,
    }
}

fn coalesce(mut s: Scenario) -> AttackReport {
    // The attacker pretends the heated line is part of a *larger* file:
    // he heats a payload for the double-size line over the existing hash
    // block. The cells conflict, producing HH.
    let victim = s.target_line;
    let big = Line::containing(victim.start(), victim.order() + 1).expect("valid order");
    let payload = sero_core::layout::HashBlockPayload::new(
        big,
        sero_crypto::sha256(b"fantasy"),
        9,
        b"coalesced".to_vec(),
    )
    .expect("payload");
    // The big line's hash block may coincide with the victim's hash block
    // (same aligned start) — exactly the §3 "turn Manchester encoded bits
    // into HH" case.
    s.fs.device_mut()
        .probe_mut()
        .ews(big.hash_block(), &payload.to_bits())
        .expect("raw heat");
    let (intact, detail) = verify_outcome(&mut s);
    AttackReport {
        kind: AttackKind::CoalesceFiles,
        expected: Outcome::Detected,
        observed: if intact {
            Outcome::Undetected
        } else {
            Outcome::Detected
        },
        detail,
    }
}

fn rm_heated(mut s: Scenario) -> AttackReport {
    let refused = matches!(
        s.fs.remove(TARGET),
        Err(sero_fs::error::FsError::ReadOnlyFile { .. })
    );
    let still_there = s.fs.exists(TARGET) && s.fs.verify(TARGET).unwrap().is_intact();
    AttackReport {
        kind: AttackKind::RmHeatedFile,
        expected: Outcome::Refused,
        observed: if refused && still_there {
            Outcome::Refused
        } else {
            Outcome::Undetected
        },
        detail: format!("rm refused: {refused}; file intact: {still_there}"),
    }
}

fn copy_mask(mut s: Scenario) -> AttackReport {
    // The attacker copies the record's blocks to fresh space and heats the
    // copy, hoping the copy passes as the original.
    let victim = s.target_line;
    let copy_start = 256u64; // far from all allocations, 2^order aligned
    let copy = Line::new(copy_start, victim.order()).expect("aligned");
    for (src, dst) in victim.data_blocks().zip(copy.data_blocks()) {
        let sector = s.fs.device_mut().probe_mut().mrs(src).expect("read");
        s.fs.device_mut()
            .probe_mut()
            .mws(dst, &sector.data)
            .expect("write");
    }
    // He even uses the legitimate heat command for the copy.
    s.fs.device_mut()
        .heat_line(copy, b"the real one, honest".to_vec(), 1_199_999_999)
        .expect("heat copy");

    // Defender: both lines verify, but they are *different* lines — the
    // hash binds physical addresses, so the copy cannot impersonate the
    // original, and the original is still present and intact.
    let original_intact = s.fs.verify(TARGET).unwrap().is_intact();
    let copy_outcome = s.fs.device_mut().verify_line(copy).unwrap();
    let copy_differs = match &copy_outcome {
        sero_core::tamper::VerifyOutcome::Intact { payload } => payload.line() != victim,
        _ => true,
    };
    AttackReport {
        kind: AttackKind::CopyMask,
        expected: Outcome::Detected,
        observed: if original_intact && copy_differs {
            Outcome::Detected
        } else {
            Outcome::Undetected
        },
        detail: format!("original intact: {original_intact}; copy distinguishable: {copy_differs}"),
    }
}

fn directory_clear(s: Scenario) -> AttackReport {
    // Wipe the checkpoint region and discard all in-memory state.
    let mut dev = s.fs.into_device();
    for b in 0..16 {
        dev.probe_mut().mws(b, &[0u8; 512]).expect("wipe");
    }
    let recovered = fsck::recover_heated_files(&mut dev).expect("fsck");
    let found = recovered
        .iter()
        .any(|r| r.name == TARGET && r.intact && r.data == crate::scenario::target_contents());
    AttackReport {
        kind: AttackKind::DirectoryClear,
        expected: Outcome::Recovered,
        observed: if found {
            Outcome::Recovered
        } else {
            Outcome::Undetected
        },
        detail: format!("fsck recovered {} heated file(s)", recovered.len()),
    }
}

fn bulk_erase(s: Scenario) -> AttackReport {
    use rand::SeedableRng;
    let mut dev = s.fs.into_device();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xdead);
    dev.probe_mut().medium_mut().bulk_erase(&mut rng);

    // Defender: the degausser destroyed magnetic data, but every heated
    // line is still physically discoverable and now *fails* verification —
    // loud evidence that history was attacked.
    let scan = dev.rebuild_registry().expect("scan");
    let line = s.target_line;
    let verdict = dev.verify_line(line).expect("verify");
    let evidence = scan.lines_found >= 1 && verdict.is_tampered();
    AttackReport {
        kind: AttackKind::BulkErase,
        expected: Outcome::Detected,
        observed: if evidence {
            Outcome::Detected
        } else {
            Outcome::Undetected
        },
        detail: format!(
            "{} heated line(s) survived the degausser; verify: tampered={}",
            scan.lines_found,
            verdict.is_tampered()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_matches_the_papers_analysis() {
        for report in run_all() {
            assert!(
                report.matches_paper(),
                "{}: expected {}, observed {} ({})",
                report.kind,
                report.expected,
                report.observed,
                report.detail
            );
        }
    }

    #[test]
    fn no_attack_goes_undetected() {
        for report in run_all() {
            assert_ne!(report.observed, Outcome::Undetected, "{report}");
        }
    }

    #[test]
    fn display_formats() {
        let report = run(AttackKind::MwbHash);
        assert!(!report.to_string().is_empty());
        for kind in AttackKind::all() {
            assert!(!kind.to_string().is_empty());
            assert!(!kind.paper_quote().is_empty());
        }
    }
}
