//! **sero-client** — blocking client library (and the `sero-cli` binary)
//! for a `sero-server` daemon.
//!
//! [`SeroClient`] wraps one TCP connection and exposes the wire command
//! set as typed methods. Requests and responses travel as `sero-proto`
//! frames; anything the server refuses comes back as
//! [`ClientError::Server`] carrying the wire-stable
//! [`ErrorCode`] plus the server-side error's display text.
//!
//! Tamper evidence keeps its loud shape end-to-end:
//! [`SeroClient::verify`] returns `Err(ClientError::Server(e))` with
//! `e.code == ErrorCode::TamperDetected` and the full report text in
//! `e.detail` — a remote auditor cannot mistake detection for success.
//!
//! # The `sero-cli` binary
//!
//! `sero-cli [--addr HOST:PORT] <command> [args]` wraps this library
//! for shells and scripts. The daemon address resolves in order:
//! `--addr`, then the **`$SERO_ADDR`** environment variable, then
//! `127.0.0.1:4150`. Exit codes are script-stable:
//!
//! | code | meaning |
//! |---|---|
//! | `0` | success |
//! | `1` | the server refused the command (any wire error but tamper) |
//! | `2` | usage error (bad command line; nothing was sent) |
//! | `3` | connection or protocol failure |
//! | `4` | **tamper evidence detected** — the report is on stderr |
//!
//! `4` is deliberately distinct from `1`: a cron job auditing a store
//! can treat "refused" as retryable and "evidence" as an alarm. The
//! daemon serves every connection through one shared concurrent
//! command core, so any number of `sero-cli` invocations (and other
//! clients) may run against it at once; see `docs/ARCHITECTURE.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sero_proto::frame::{read_frame, write_frame, FrameError};
use sero_proto::{
    ErrorCode, FrameKind, Request, Response, WireClass, WireError, WireFileInfo, WireLine,
    WireMemberStatus, WireScrubStatus, WireSliceOutcome, WireVerdict,
};
use std::fmt;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything that can go wrong on the client side of a command.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame failed to encode or decode.
    Frame(FrameError),
    /// The server answered, with an error.
    Server(WireError),
    /// The server answered with a response shape the command does not
    /// produce (protocol confusion or a hostile peer).
    UnexpectedResponse {
        /// What the client asked for.
        expected: &'static str,
        /// Debug rendering of what arrived.
        got: String,
    },
    /// The server closed the connection instead of answering.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse { expected, got } => {
                write!(f, "expected a {expected} response, got {got}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl ClientError {
    /// The wire error code, when the server itself answered the error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server(e) => Some(e.code),
            _ => None,
        }
    }

    /// True when this error is the paper's detection guarantee firing:
    /// a verify that found tamper evidence.
    pub fn is_tamper_detected(&self) -> bool {
        self.code() == Some(ErrorCode::TamperDetected)
    }

    /// True when the failure happened in the transport (socket error,
    /// deadline expiry, peer gone) rather than in the server's answer —
    /// the class the client may retry for idempotent requests.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Frame(FrameError::Io { .. })
                | ClientError::Disconnected
        )
    }

    /// True when the failure was a client-side deadline expiring.
    pub fn is_timeout(&self) -> bool {
        match self {
            ClientError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            ClientError::Frame(e) => e.is_timeout(),
            _ => false,
        }
    }
}

/// Deadlines and retry policy for a [`SeroClient`].
///
/// Retries apply **only** to idempotent requests (reads, `stat`, `list`,
/// `verify`, scrub status, fleet status, ping) and **only** to
/// transport-level failures ([`ClientError::is_transport`]): a mutation
/// whose response was lost may or may not have been applied, so the
/// client surfaces the transport error instead of guessing, and a typed
/// answer from the server is a decision, not a fault.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection. `None` blocks.
    pub connect_timeout: Option<Duration>,
    /// Socket read deadline per response. `None` blocks forever — a
    /// dead server then hangs the caller, so the default is finite.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline per request.
    pub write_timeout: Option<Duration>,
    /// Total attempts (first try included) for idempotent requests.
    /// `1` disables retry.
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5E50_C11E,
        }
    }
}

/// Only these request shapes are safe to send twice: re-asking cannot
/// change device state, so a retry after a lost response is harmless.
/// Everything else (create/write/remove/heat/scrub-start/scrub-tick/
/// raw-write) mutates or advances state and is never retried.
fn is_idempotent(request: &Request) -> bool {
    matches!(
        request,
        Request::Ping
            | Request::Read { .. }
            | Request::Stat { .. }
            | Request::List { .. }
            | Request::Verify { .. }
            | Request::ScrubStatus
            | Request::FleetStatus
    )
}

/// A blocking client over one TCP connection, with deadlines and
/// self-healing retry for idempotent requests (see [`ClientConfig`]).
pub struct SeroClient {
    stream: TcpStream,
    /// Resolved server addresses, kept so a retry can reconnect.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    /// xorshift64* state for backoff jitter.
    jitter: u64,
}

impl SeroClient {
    /// Connects to a `sero-server` at `addr` with the default
    /// [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Socket errors from the connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SeroClient, ClientError> {
        SeroClient::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit deadlines and retry policy.
    ///
    /// # Errors
    ///
    /// Socket errors from the resolve or connect.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<SeroClient, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = connect_stream(&addrs, &config)?;
        Ok(SeroClient {
            stream,
            addrs,
            jitter: config.jitter_seed | 1,
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Sends one request and reads one response.
    ///
    /// Idempotent requests that fail at the transport level (timeout,
    /// dead peer, torn frame) are retried up to
    /// [`ClientConfig::max_attempts`] times over a fresh connection with
    /// exponential backoff plus jitter. Mutations are never retried, and
    /// a server *answer* — even an error — is final.
    ///
    /// # Errors
    ///
    /// Socket and framing failures; a [`Response::Error`] answer becomes
    /// [`ClientError::Server`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let attempts = if is_idempotent(request) {
            self.config.max_attempts.max(1)
        } else {
            1
        };
        let mut attempt = 1;
        loop {
            match self.call_once(request) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_transport() && attempt < attempts => {
                    std::thread::sleep(self.backoff(attempt));
                    // The old connection is suspect (mid-frame state,
                    // dead peer); heal over a fresh one.
                    if let Ok(fresh) = connect_stream(&self.addrs, &self.config) {
                        self.stream = fresh;
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One attempt: no retry, whatever the request.
    fn call_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, FrameKind::Request, &request.encode())?;
        let (kind, payload) = read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        if kind != FrameKind::Response {
            return Err(ClientError::UnexpectedResponse {
                expected: "response-kind frame",
                got: format!("{kind:?}"),
            });
        }
        match Response::decode(&payload)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }

    /// Exponential backoff with jitter: double per attempt up to the
    /// cap, then scale by a factor in [0.5, 1.0) so synchronized
    /// retriers spread out.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_nanos() as u64;
        let cap = self.config.backoff_cap.as_nanos() as u64;
        let exp = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32))
            .min(cap);
        // xorshift64*
        self.jitter ^= self.jitter >> 12;
        self.jitter ^= self.jitter << 25;
        self.jitter ^= self.jitter >> 27;
        let r = self.jitter.wrapping_mul(0x2545_F491_4F6C_DD1D);
        Duration::from_nanos(exp / 2 + r % (exp / 2).max(1))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Creates `name` with `data`; returns the inode number.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn create(
        &mut self,
        name: &str,
        data: &[u8],
        class: WireClass,
    ) -> Result<u64, ClientError> {
        match self.call(&Request::Create {
            name: name.into(),
            data: data.to_vec(),
            class,
        })? {
            Response::Created { ino } => Ok(ino),
            other => Err(unexpected("created", &other)),
        }
    }

    /// Reads the full contents of `name`.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::Read { name: name.into() })? {
            Response::Data { bytes } => Ok(bytes),
            other => Err(unexpected("data", &other)),
        }
    }

    /// Overwrites `name` with `data`.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn write(&mut self, name: &str, data: &[u8], class: WireClass) -> Result<(), ClientError> {
        match self.call(&Request::Write {
            name: name.into(),
            data: data.to_vec(),
            class,
        })? {
            Response::Written => Ok(()),
            other => Err(unexpected("written", &other)),
        }
    }

    /// Removes `name`.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn remove(&mut self, name: &str) -> Result<(), ClientError> {
        match self.call(&Request::Remove { name: name.into() })? {
            Response::Removed => Ok(()),
            other => Err(unexpected("removed", &other)),
        }
    }

    /// Metadata for `name`.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn stat(&mut self, name: &str) -> Result<WireFileInfo, ClientError> {
        match self.call(&Request::Stat { name: name.into() })? {
            Response::Stat(info) => Ok(info),
            other => Err(unexpected("stat", &other)),
        }
    }

    /// All file names, following pagination cursors until the listing is
    /// complete. Each page is one request/response round trip, so no
    /// single frame carries more than the protocol's payload limit no
    /// matter how many files exist.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        let mut all = Vec::new();
        let mut cursor: Option<String> = None;
        loop {
            let (mut names, next) = self.list_page(cursor.take(), 0)?;
            all.append(&mut names);
            match next {
                Some(next) => cursor = Some(next),
                None => return Ok(all),
            }
        }
    }

    /// One page of file names: up to `limit` names after `cursor`
    /// (exclusive; `limit == 0` lets the server fill the frame). Returns
    /// the page and the cursor for the next one, `None` when the listing
    /// is complete.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn list_page(
        &mut self,
        cursor: Option<String>,
        limit: u32,
    ) -> Result<(Vec<String>, Option<String>), ClientError> {
        match self.call(&Request::List { cursor, limit })? {
            Response::Names { names, next } => Ok((names, next)),
            other => Err(unexpected("names", &other)),
        }
    }

    /// Heats `name`, sealing `metadata` and `timestamp` into the line's
    /// hash block. Returns the protecting line.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn heat(
        &mut self,
        name: &str,
        metadata: &[u8],
        timestamp: u64,
    ) -> Result<WireLine, ClientError> {
        match self.call(&Request::Heat {
            name: name.into(),
            metadata: metadata.to_vec(),
            timestamp,
        })? {
            Response::Heated { line } => Ok(line),
            other => Err(unexpected("heated", &other)),
        }
    }

    /// Verifies the heated line protecting `name`.
    ///
    /// # Errors
    ///
    /// Tamper evidence arrives as [`ClientError::Server`] with
    /// [`ErrorCode::TamperDetected`] (see
    /// [`ClientError::is_tamper_detected`]); only intact and not-heated
    /// verdicts return `Ok`.
    pub fn verify(&mut self, name: &str) -> Result<WireVerdict, ClientError> {
        match self.call(&Request::Verify { name: name.into() })? {
            Response::Verified(verdict) => Ok(verdict),
            other => Err(unexpected("verified", &other)),
        }
    }

    /// Starts a scrub pass (see
    /// [`Request::ScrubStart`] for the budget semantics).
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn scrub_start(
        &mut self,
        budget_ns: u64,
        quantum_ns: u64,
        incremental: bool,
    ) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::ScrubStart {
            budget_ns,
            quantum_ns,
            incremental,
        })? {
            Response::ScrubStarted { epoch, pending, .. } => Ok((epoch, pending)),
            other => Err(unexpected("scrub-started", &other)),
        }
    }

    /// Grants the running pass one slice.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn scrub_tick(&mut self) -> Result<(WireSliceOutcome, WireScrubStatus), ClientError> {
        match self.call(&Request::ScrubTick)? {
            Response::ScrubTicked { outcome, status } => Ok((outcome, status)),
            other => Err(unexpected("scrub-ticked", &other)),
        }
    }

    /// Progress of the current (or last) pass; `None` when no pass was
    /// ever started.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn scrub_status(&mut self) -> Result<Option<WireScrubStatus>, ClientError> {
        match self.call(&Request::ScrubStatus)? {
            Response::ScrubState { status } => Ok(status),
            other => Err(unexpected("scrub-state", &other)),
        }
    }

    /// Capacity, evidence, and load status of every served device.
    ///
    /// # Errors
    ///
    /// See [`SeroClient::call`].
    pub fn fleet_status(&mut self) -> Result<Vec<WireMemberStatus>, ClientError> {
        match self.call(&Request::FleetStatus)? {
            Response::FleetStatus { members } => Ok(members),
            other => Err(unexpected("fleet-status", &other)),
        }
    }

    /// Raw magnetic write — the §5 attacker surface, served only by a
    /// daemon started with `--allow-raw`. `data` must be exactly one
    /// sector.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnsupportedCommand`] from a production daemon; see
    /// [`SeroClient::call`].
    pub fn raw_write(&mut self, pba: u64, data: &[u8]) -> Result<(), ClientError> {
        match self.call(&Request::RawWrite {
            pba,
            data: data.to_vec(),
        })? {
            Response::RawWritten => Ok(()),
            other => Err(unexpected("raw-written", &other)),
        }
    }
}

/// Connects to the first address that answers, honouring the connect
/// deadline, and applies the per-call socket deadlines to the stream.
fn connect_stream(addrs: &[SocketAddr], config: &ClientConfig) -> Result<TcpStream, ClientError> {
    let mut last: Option<std::io::Error> = None;
    for addr in addrs {
        let attempt = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => {
                stream.set_read_timeout(config.read_timeout)?;
                stream.set_write_timeout(config.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(ClientError::Io(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    })))
}

fn unexpected(expected: &'static str, got: &Response) -> ClientError {
    ClientError::UnexpectedResponse {
        expected,
        got: format!("{got:?}"),
    }
}
