//! `sero-cli` — command-line client for a `sero-server` daemon.
//!
//! ```text
//! sero-cli [--addr HOST:PORT] <command> [args]
//!
//! commands:
//!   ping
//!   set KEY VALUE [normal|archival]   create or overwrite KEY
//!   get KEY                            print KEY's contents
//!   rm KEY
//!   ls
//!   stat KEY
//!   heat KEY [METADATA] [TIMESTAMP]    freeze KEY under a heated line
//!   verify KEY                         exit 4 + report on tamper evidence
//!   scrub-start [BUDGET_NS QUANTUM_NS] [--full]
//!   scrub-tick
//!   scrub-status
//!   fleet-status
//!   raw-write PBA FILLBYTE             §5 attack surface (needs --allow-raw
//!                                      on the daemon); writes one sector of
//!                                      FILLBYTE repeated
//!   idle-swarm N HOLD_SECS             open N connections, ping each, hold
//!                                      them idle for HOLD_SECS, ping each
//!                                      again, close; exercises the reactor's
//!                                      idle-connection capacity
//! ```
//!
//! The address defaults to `$SERO_ADDR`, then `127.0.0.1:4150`.
//!
//! Exit codes: `0` success, `1` server refused the command, `2` usage
//! error, `3` connection/protocol failure, `4` tamper evidence detected.

use sero_client::{ClientError, SeroClient};
use sero_proto::{WireClass, WireSchedState, WireScrubStatus, WireVerdict};
use std::process::ExitCode;

const EXIT_SERVER: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_CONN: u8 = 3;
const EXIT_TAMPER: u8 = 4;

fn fail(e: ClientError) -> ExitCode {
    eprintln!("{e}");
    if e.is_tamper_detected() {
        ExitCode::from(EXIT_TAMPER)
    } else if matches!(e, ClientError::Server(_)) {
        ExitCode::from(EXIT_SERVER)
    } else {
        ExitCode::from(EXIT_CONN)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(EXIT_USAGE)
}

fn print_status(s: &WireScrubStatus) {
    let state = match s.state {
        WireSchedState::Running => "running",
        WireSchedState::Paused => "paused",
        WireSchedState::Cancelled => "cancelled",
        WireSchedState::Complete => "complete",
    };
    println!(
        "scrub {state}: epoch {} incremental={} verified={} remaining={} \
         skipped={} tampered={} slices={} device_ns={}",
        s.epoch,
        s.incremental,
        s.verified,
        s.remaining,
        s.skipped,
        s.tampered,
        s.slices,
        s.scrub_device_ns
    );
}

/// Opens `n` connections, pings every one once all are open (the server
/// must answer while holding the rest idle), holds them `hold_secs`,
/// then pings every one again — proving the connections survived the
/// idle window and the server still answers on each. Prints `HOLDING n`
/// once the population is up so scripts can overlap active work.
fn idle_swarm(addr: &str, n: usize, hold_secs: u64) -> Result<ExitCode, ClientError> {
    let mut swarm = Vec::with_capacity(n);
    for _ in 0..n {
        swarm.push(SeroClient::connect(addr)?);
    }
    for member in &mut swarm {
        member.ping()?;
    }
    println!("HOLDING {n}");
    std::thread::sleep(std::time::Duration::from_secs(hold_secs));
    for member in &mut swarm {
        member.ping()?;
    }
    println!("RELEASED {n}");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = std::env::var("SERO_ADDR").unwrap_or_else(|_| "127.0.0.1:4150".to_string());
    if args.first().map(String::as_str) == Some("--addr") {
        if args.len() < 2 {
            return usage("--addr wants a value");
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    let Some(command) = args.first().cloned() else {
        return usage("usage: sero-cli [--addr HOST:PORT] <command> [args] (see --help)");
    };
    let rest = &args[1..];

    let mut client = match SeroClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::from(EXIT_CONN);
        }
    };

    let result: Result<ExitCode, ClientError> = match (command.as_str(), rest) {
        ("ping", []) => client.ping().map(|()| {
            println!("pong");
            ExitCode::SUCCESS
        }),
        ("set", [key, value, rest @ ..]) if rest.len() <= 1 => {
            let class = match rest.first().map(String::as_str) {
                None | Some("normal") => WireClass::Normal,
                Some("archival") => WireClass::Archival,
                Some(other) => return usage(&format!("class wants normal|archival, got {other}")),
            };
            let outcome = if client.stat(key).is_ok() {
                client.write(key, value.as_bytes(), class)
            } else {
                client.create(key, value.as_bytes(), class).map(|_| ())
            };
            outcome.map(|()| ExitCode::SUCCESS)
        }
        ("get", [key]) => client.read(key).map(|bytes| {
            match String::from_utf8(bytes) {
                Ok(text) => println!("{text}"),
                Err(e) => println!("{:x?}", e.as_bytes()),
            }
            ExitCode::SUCCESS
        }),
        ("rm", [key]) => client.remove(key).map(|()| ExitCode::SUCCESS),
        ("ls", []) => client.list().map(|names| {
            for name in names {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }),
        ("stat", [key]) => client.stat(key).map(|info| {
            let heated = match info.heated {
                Some(line) => format!("heated start={} order={}", line.start, line.order),
                None => "unheated".to_string(),
            };
            println!(
                "ino={} size={} blocks={} mtime={} {heated}",
                info.ino, info.size, info.blocks, info.mtime
            );
            ExitCode::SUCCESS
        }),
        ("heat", [key, rest @ ..]) if rest.len() <= 2 => {
            let metadata = rest.first().map(String::as_bytes).unwrap_or_default();
            let timestamp = match rest.get(1).map(|t| t.parse::<u64>()) {
                None => 0,
                Some(Ok(t)) => t,
                Some(Err(e)) => return usage(&format!("timestamp: {e}")),
            };
            client.heat(key, metadata, timestamp).map(|line| {
                println!("heated start={} order={}", line.start, line.order);
                ExitCode::SUCCESS
            })
        }
        ("verify", [key]) => client.verify(key).map(|verdict| match verdict {
            WireVerdict::Intact {
                line, timestamp, ..
            } => {
                println!(
                    "intact: line start={} order={} heated at t={timestamp}",
                    line.start, line.order
                );
                ExitCode::SUCCESS
            }
            WireVerdict::NotHeated => {
                println!("not heated: nothing to verify against");
                ExitCode::SUCCESS
            }
        }),
        ("scrub-start", rest) => {
            let full = rest.iter().any(|a| a == "--full");
            let nums: Vec<&String> = rest.iter().filter(|a| *a != "--full").collect();
            let (budget, quantum) = match nums.as_slice() {
                [] => (0, 0),
                [b, q] => match (b.parse(), q.parse()) {
                    (Ok(b), Ok(q)) => (b, q),
                    _ => return usage("scrub-start wants numeric BUDGET_NS QUANTUM_NS"),
                },
                _ => return usage("usage: scrub-start [BUDGET_NS QUANTUM_NS] [--full]"),
            };
            client
                .scrub_start(budget, quantum, !full)
                .map(|(epoch, pending)| {
                    println!("scrub started: epoch {epoch}, {pending} lines pending");
                    ExitCode::SUCCESS
                })
        }
        ("scrub-tick", []) => client.scrub_tick().map(|(_, status)| {
            print_status(&status);
            ExitCode::SUCCESS
        }),
        ("scrub-status", []) => client.scrub_status().map(|status| {
            match status {
                Some(s) => print_status(&s),
                None => println!("no scrub pass started"),
            }
            ExitCode::SUCCESS
        }),
        ("fleet-status", []) => client.fleet_status().map(|members| {
            for m in members {
                println!(
                    "member {}: blocks={} ro={} wmrm={} heated_lines={} flagged={} \
                     epoch={} arrivals={} util_ppm={}",
                    m.member,
                    m.total_blocks,
                    m.read_only_blocks,
                    m.wmrm_blocks,
                    m.heated_lines,
                    m.flagged_lines,
                    m.scrub_epoch,
                    m.arrivals,
                    m.utilization_ppm
                );
            }
            ExitCode::SUCCESS
        }),
        ("raw-write", [pba, fill]) => {
            let (Ok(pba), Ok(fill)) = (pba.parse::<u64>(), fill.parse::<u8>()) else {
                return usage("raw-write wants numeric PBA and FILLBYTE");
            };
            client.raw_write(pba, &[fill; 512]).map(|()| {
                println!("raw sector written at pba {pba}");
                ExitCode::SUCCESS
            })
        }
        ("idle-swarm", [n, hold]) => {
            let (Ok(n), Ok(hold)) = (n.parse::<usize>(), hold.parse::<u64>()) else {
                return usage("idle-swarm wants numeric N and HOLD_SECS");
            };
            idle_swarm(&addr, n, hold)
        }
        ("--help" | "-h" | "help", _) => {
            return usage(
                "usage: sero-cli [--addr HOST:PORT] <ping|set|get|rm|ls|stat|heat|verify|\
                 scrub-start|scrub-tick|scrub-status|fleet-status|raw-write|idle-swarm> [args]",
            )
        }
        _ => return usage(&format!("bad command or arguments: {command} (try --help)")),
    };

    match result {
        Ok(code) => code,
        Err(e) => fail(e),
    }
}
