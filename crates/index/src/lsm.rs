//! The LSM engine: memtable, CRC-framed WAL, double-slotted manifest,
//! and levelled compaction over immutable segments.
//!
//! Durability contract, in write order:
//!
//! 1. Every mutation appends one CRC-framed record to the WAL region and
//!    mirrors itself into the memtable. Records carry the WAL
//!    *generation*.
//! 2. A flush writes the memtable as a fresh level-0 segment (plus any
//!    compaction outputs) to pages that are free under the *current*
//!    manifest, bumps the generation, then commits a new manifest to the
//!    alternate slot. Only after the manifest is durable are the
//!    replaced segments' pages returned to the free pool.
//! 3. Opening reads both manifest slots, adopts the highest valid
//!    sequence, and replays the bounded WAL tail: records of an older
//!    generation are already in segments and are skipped; the first
//!    malformed record ends the replay (a torn tail is reported, never
//!    applied). A crash at any point therefore recovers to the last
//!    committed manifest plus a prefix of the live WAL — never a partial
//!    index.

use crate::segment::{build_segment, unpack_data_page, Entry, SegmentHeader};
use crate::{
    BlockStore, IndexError, IndexGeometry, MANIFEST_SLOT_PAGES, MAX_KEY_BYTES, MAX_VALUE_BYTES,
    PAGE_BYTES,
};
use sero_codec::crc32::crc32;
use std::collections::BTreeMap;

/// Magic framing a manifest slot ("SMFT").
pub const MANIFEST_MAGIC: u32 = 0x534D_4654;

/// Magic opening every WAL record ("SWAL").
pub const WAL_MAGIC: u32 = 0x5357_414C;

/// Compaction levels.
pub const LEVELS: usize = 3;

/// Segments a non-bottom level may hold before it is merged down.
const LEVEL_FANOUT: usize = 4;

/// Memtable entries that force a flush even with WAL headroom.
const MEMTABLE_MAX_ENTRIES: usize = 1024;

/// Fixed bytes of a WAL record around key and value.
const WAL_RECORD_OVERHEAD: usize = 4 + 8 + 2 + 2 + 4;

/// Tombstone sentinel in a WAL record's `vlen` field.
const WAL_TOMBSTONE: u16 = 0xFFFF;

/// One sealed segment as the manifest tracks it. The header (fences +
/// bloom) loads lazily on first lookup and is cached.
#[derive(Debug, Clone)]
struct Segment {
    start_page: u64,
    pages: u64,
    entry_count: u64,
    header: Option<(u64, SegmentHeader)>,
}

/// What [`MetaIndex::open`] found while replaying the WAL tail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// WAL records of the live generation applied to the memtable.
    pub wal_replayed: u64,
    /// True when the replay ended at a half-written or damaged record
    /// (the torn tail was discarded; everything before it applied).
    pub torn_tail: bool,
}

/// Work counters, for benches and acceptance assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Memtable flushes into level-0 segments.
    pub flushes: u64,
    /// Level merges performed.
    pub compactions: u64,
    /// Segment probes answered "definitely absent" by a bloom filter
    /// without touching a data page.
    pub bloom_skips: u64,
}

/// The LSM metadata index over a [`BlockStore`].
///
/// All methods borrow the store per call, so an owner can keep the
/// index state and the storage in one struct without self-references
/// (the file system passes an adapter over its reserved device region).
#[derive(Debug, Clone)]
pub struct MetaIndex {
    geom: IndexGeometry,
    seq: u64,
    wal_gen: u64,
    wal_off: usize,
    wal_buf: Vec<u8>,
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    levels: Vec<Vec<Segment>>,
    free: Vec<(u64, u64)>,
    stats: IndexStats,
}

impl MetaIndex {
    /// Formats a fresh index over the region: invalidates both manifest
    /// slots and the WAL head, then commits an empty manifest.
    ///
    /// # Errors
    ///
    /// [`IndexError::Geometry`] when the store is smaller than the
    /// geometry; store errors.
    pub fn format<S: BlockStore>(
        store: &mut S,
        geom: IndexGeometry,
    ) -> Result<MetaIndex, IndexError> {
        if store.page_count() < geom.pages {
            return Err(IndexError::Geometry {
                reason: format!(
                    "store holds {} pages, geometry needs {}",
                    store.page_count(),
                    geom.pages
                ),
            });
        }
        let zero = [0u8; PAGE_BYTES];
        for page in 0..2 * MANIFEST_SLOT_PAGES {
            store.write_page(page, &zero)?;
        }
        // Zero the whole WAL, not just its head: open() reads every WAL
        // page, and on physical media a never-written page is a sector
        // error, not a page of zeros. Formatting is the one moment the
        // region is touched wholesale, so make every page it will ever
        // read well-defined here.
        for i in 0..geom.wal_pages {
            store.write_page(geom.wal_start() + i, &zero)?;
        }
        let mut index = MetaIndex {
            geom,
            seq: 0,
            wal_gen: 1,
            wal_off: 0,
            wal_buf: vec![0u8; geom.wal_pages as usize * PAGE_BYTES],
            memtable: BTreeMap::new(),
            levels: vec![Vec::new(); LEVELS],
            free: vec![(geom.heap_start(), geom.heap_pages())],
            stats: IndexStats::default(),
        };
        index.write_manifest(store)?;
        Ok(index)
    }

    /// Opens an existing index: reads both manifest slots, adopts the
    /// newest valid one, and replays the bounded WAL tail. Cost is
    /// manifest + WAL region, independent of how many entries the
    /// segments hold.
    ///
    /// # Errors
    ///
    /// [`IndexError::Corrupt`] when neither slot holds a valid manifest
    /// or the winning manifest names overlapping segments; store errors.
    pub fn open<S: BlockStore>(
        store: &mut S,
        geom: IndexGeometry,
    ) -> Result<(MetaIndex, OpenReport), IndexError> {
        let a = Self::try_read_manifest(store, geom, 0)?;
        let b = Self::try_read_manifest(store, geom, 1)?;
        let (seq, wal_gen, raw_levels) = match (a, b) {
            (Some(a), Some(b)) => {
                if a.0 >= b.0 {
                    a
                } else {
                    b
                }
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                return Err(IndexError::Corrupt {
                    reason: "no valid manifest in either slot (region not formatted?)".to_string(),
                })
            }
        };

        // Rebuild the free pool: heap pages not covered by a live segment.
        let heap_start = geom.heap_start();
        let mut occupied = vec![false; geom.heap_pages() as usize];
        for level in &raw_levels {
            for &(start, pages, _) in level {
                for p in start..start + pages {
                    let slot = (p - heap_start) as usize;
                    if occupied[slot] {
                        return Err(IndexError::Corrupt {
                            reason: format!("manifest names overlapping segments at page {p}"),
                        });
                    }
                    occupied[slot] = true;
                }
            }
        }
        let mut free = Vec::new();
        let mut run_start = None;
        for (i, used) in occupied.iter().enumerate() {
            match (used, run_start) {
                (false, None) => run_start = Some(i),
                (true, Some(s)) => {
                    free.push((heap_start + s as u64, (i - s) as u64));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            free.push((heap_start + s as u64, (occupied.len() - s) as u64));
        }

        let levels = raw_levels
            .into_iter()
            .map(|segs| {
                segs.into_iter()
                    .map(|(start_page, pages, entry_count)| Segment {
                        start_page,
                        pages,
                        entry_count,
                        header: None,
                    })
                    .collect()
            })
            .collect();

        let mut wal_buf = vec![0u8; geom.wal_pages as usize * PAGE_BYTES];
        for (i, chunk) in wal_buf.chunks_mut(PAGE_BYTES).enumerate() {
            chunk.copy_from_slice(&store.read_page(geom.wal_start() + i as u64)?);
        }

        let mut index = MetaIndex {
            geom,
            seq,
            wal_gen,
            wal_off: 0,
            wal_buf,
            memtable: BTreeMap::new(),
            levels,
            free,
            stats: IndexStats::default(),
        };
        let report = index.replay_wal();
        Ok((index, report))
    }

    /// Applies the live-generation WAL prefix to the memtable.
    fn replay_wal(&mut self) -> OpenReport {
        let mut report = OpenReport::default();
        let cap = self.wal_buf.len();
        let mut off = 0usize;
        loop {
            if off + WAL_RECORD_OVERHEAD > cap {
                break;
            }
            let magic = u32::from_le_bytes(self.wal_buf[off..off + 4].try_into().expect("4"));
            if magic == 0 {
                break; // clean end: never-written tail
            }
            if magic != WAL_MAGIC {
                report.torn_tail = true;
                break;
            }
            let gen = u64::from_le_bytes(self.wal_buf[off + 4..off + 12].try_into().expect("8"));
            if gen != self.wal_gen {
                break; // stale records from before the last flush
            }
            let klen = u16::from_le_bytes(self.wal_buf[off + 12..off + 14].try_into().expect("2"))
                as usize;
            let vlen_raw =
                u16::from_le_bytes(self.wal_buf[off + 14..off + 16].try_into().expect("2"));
            let vlen = if vlen_raw == WAL_TOMBSTONE {
                0
            } else {
                vlen_raw as usize
            };
            if klen > MAX_KEY_BYTES || vlen > MAX_VALUE_BYTES {
                report.torn_tail = true;
                break;
            }
            let total = WAL_RECORD_OVERHEAD + klen + vlen;
            if off + total > cap {
                report.torn_tail = true;
                break;
            }
            let body_end = off + 16 + klen + vlen;
            let stored =
                u32::from_le_bytes(self.wal_buf[body_end..body_end + 4].try_into().expect("4"));
            if stored != crc32(&self.wal_buf[off..body_end]) {
                report.torn_tail = true;
                break;
            }
            let key = self.wal_buf[off + 16..off + 16 + klen].to_vec();
            let value = if vlen_raw == WAL_TOMBSTONE {
                None
            } else {
                Some(self.wal_buf[off + 16 + klen..body_end].to_vec())
            };
            self.memtable.insert(key, value);
            report.wal_replayed += 1;
            off += total;
        }
        self.wal_off = off;
        report
    }

    /// Inserts or replaces `key`.
    ///
    /// # Errors
    ///
    /// [`IndexError::Oversize`] past the entry limits; flush/compaction
    /// errors when the write tips the memtable or WAL over.
    pub fn put<S: BlockStore>(
        &mut self,
        store: &mut S,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), IndexError> {
        if key.len() > MAX_KEY_BYTES || value.len() > MAX_VALUE_BYTES {
            return Err(IndexError::Oversize {
                key_len: key.len(),
                value_len: value.len(),
            });
        }
        self.append_wal(store, key, Some(value))?;
        self.memtable.insert(key.to_vec(), Some(value.to_vec()));
        self.maybe_flush(store)
    }

    /// Removes `key` (a tombstone until compaction drops it).
    ///
    /// # Errors
    ///
    /// As [`MetaIndex::put`].
    pub fn delete<S: BlockStore>(&mut self, store: &mut S, key: &[u8]) -> Result<(), IndexError> {
        if key.len() > MAX_KEY_BYTES {
            return Err(IndexError::Oversize {
                key_len: key.len(),
                value_len: 0,
            });
        }
        self.append_wal(store, key, None)?;
        self.memtable.insert(key.to_vec(), None);
        self.maybe_flush(store)
    }

    /// Point lookup: memtable first, then every segment newest-first,
    /// bloom filters pruning segments that definitely lack the key.
    ///
    /// # Errors
    ///
    /// [`IndexError::Corrupt`] when a consulted page fails its CRC;
    /// store errors.
    pub fn get<S: BlockStore>(
        &mut self,
        store: &mut S,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, IndexError> {
        if let Some(v) = self.memtable.get(key) {
            return Ok(v.clone());
        }
        for li in 0..LEVELS {
            for si in (0..self.levels[li].len()).rev() {
                self.ensure_header(store, li, si)?;
                let page_no = {
                    let seg = &self.levels[li][si];
                    let (header_pages, header) = seg.header.as_ref().expect("loaded above");
                    if !header.bloom.contains(key) {
                        self.stats.bloom_skips += 1;
                        continue;
                    }
                    let idx = header.fences.partition_point(|f| f.as_slice() <= key);
                    if idx == 0 {
                        continue; // below the segment's first key
                    }
                    seg.start_page + header_pages + (idx as u64 - 1)
                };
                let page = store.read_page(page_no)?;
                let entries = unpack_data_page(&page)?;
                if let Some((_, v)) = entries.iter().find(|(k, _)| k.as_slice() == key) {
                    return Ok(v.clone());
                }
            }
        }
        Ok(None)
    }

    /// True unless `key` is *definitely* absent: present in the memtable
    /// or admitted by at least one segment's bloom filter. Used by the
    /// property suite to pin "zero false negatives".
    ///
    /// # Errors
    ///
    /// Header-load errors.
    pub fn bloom_may_contain<S: BlockStore>(
        &mut self,
        store: &mut S,
        key: &[u8],
    ) -> Result<bool, IndexError> {
        if self.memtable.contains_key(key) {
            return Ok(true);
        }
        for li in 0..LEVELS {
            for si in 0..self.levels[li].len() {
                self.ensure_header(store, li, si)?;
                let (_, header) = self.levels[li][si].header.as_ref().expect("loaded above");
                if header.bloom.contains(key) {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Every live key-value pair, merged across memtable and all levels
    /// (tombstones applied). This is the full-scan path — hydration and
    /// tests, not point lookups.
    ///
    /// # Errors
    ///
    /// Corruption or store errors while reading segments.
    #[allow(clippy::type_complexity)]
    pub fn scan_all<S: BlockStore>(
        &mut self,
        store: &mut S,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, IndexError> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for li in (0..LEVELS).rev() {
            for si in 0..self.levels[li].len() {
                for (k, v) in Self::read_all_entries(store, &self.levels[li][si])? {
                    merged.insert(k, v);
                }
            }
        }
        for (k, v) in &self.memtable {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Flushes the memtable into a level-0 segment, compacts overflowing
    /// levels, resets the WAL generation, and commits a new manifest.
    /// A no-op when the memtable is empty.
    ///
    /// # Errors
    ///
    /// [`IndexError::RegionFull`] when the heap cannot host the new
    /// segment; store errors.
    pub fn flush<S: BlockStore>(&mut self, store: &mut S) -> Result<(), IndexError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        self.stats.flushes += 1;
        let entries: Vec<Entry> = std::mem::take(&mut self.memtable).into_iter().collect();
        let seg = self.write_segment(store, &entries, 0)?;
        self.levels[0].push(seg);

        let mut pending_free: Vec<(u64, u64)> = Vec::new();
        if self.levels[0].len() > LEVEL_FANOUT {
            self.compact(store, 0, &mut pending_free)?;
            if self.levels[1].len() > LEVEL_FANOUT {
                self.compact(store, 1, &mut pending_free)?;
            }
        }

        self.wal_gen += 1;
        self.wal_off = 0;
        self.write_manifest(store)?;
        // With the manifest committed, zero the WAL so stale frames from
        // the retired generation can never sit past the new tail. Replay
        // would stop at them anyway (generation mismatch), but a fresh
        // frame that happens to end mid-old-frame would otherwise make
        // the garbage after it look like a torn tail. The order matters:
        // a crash before the manifest landed must still find the old
        // generation's frames intact, and a crash mid-zeroing replays
        // zeros (clean empty tail) against the new manifest.
        self.wal_buf.fill(0);
        for i in 0..self.geom.wal_pages {
            let page = [0u8; PAGE_BYTES];
            store.write_page(self.geom.wal_start() + i, &page)?;
        }
        // Only now are the replaced segments' pages reusable: a crash
        // before the manifest landed must leave the old ones readable.
        for (start, pages) in pending_free {
            self.free_extent(start, pages);
        }
        Ok(())
    }

    /// Work counters.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The committed manifest sequence number.
    pub fn manifest_seq(&self) -> u64 {
        self.seq
    }

    /// The live WAL generation.
    pub fn wal_generation(&self) -> u64 {
        self.wal_gen
    }

    /// Bytes of live WAL records.
    pub fn wal_bytes(&self) -> usize {
        self.wal_off
    }

    /// Entries buffered in the memtable.
    pub fn memtable_entries(&self) -> usize {
        self.memtable.len()
    }

    /// Live segments per level.
    pub fn level_segment_counts(&self) -> [usize; LEVELS] {
        let mut out = [0usize; LEVELS];
        for (i, level) in self.levels.iter().enumerate() {
            out[i] = level.len();
        }
        out
    }

    /// Heap pages held by live segments.
    pub fn segment_pages(&self) -> u64 {
        self.levels.iter().flatten().map(|s| s.pages).sum()
    }

    /// Entries across all live segments (tombstones included).
    pub fn segment_entries(&self) -> u64 {
        self.levels.iter().flatten().map(|s| s.entry_count).sum()
    }

    fn maybe_flush<S: BlockStore>(&mut self, store: &mut S) -> Result<(), IndexError> {
        if self.memtable.len() >= MEMTABLE_MAX_ENTRIES {
            self.flush(store)?;
        }
        Ok(())
    }

    /// Appends one record, flushing first when the WAL region is full.
    fn append_wal<S: BlockStore>(
        &mut self,
        store: &mut S,
        key: &[u8],
        value: Option<&[u8]>,
    ) -> Result<(), IndexError> {
        let vlen = value.map_or(0, <[u8]>::len);
        let total = WAL_RECORD_OVERHEAD + key.len() + vlen;
        if self.wal_off + total > self.wal_buf.len() {
            self.flush(store)?;
        }
        debug_assert!(self.wal_off + total <= self.wal_buf.len());
        let off = self.wal_off;
        self.wal_buf[off..off + 4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        self.wal_buf[off + 4..off + 12].copy_from_slice(&self.wal_gen.to_le_bytes());
        self.wal_buf[off + 12..off + 14].copy_from_slice(&(key.len() as u16).to_le_bytes());
        let vlen_raw = value.map_or(WAL_TOMBSTONE, |v| v.len() as u16);
        self.wal_buf[off + 14..off + 16].copy_from_slice(&vlen_raw.to_le_bytes());
        self.wal_buf[off + 16..off + 16 + key.len()].copy_from_slice(key);
        if let Some(v) = value {
            self.wal_buf[off + 16 + key.len()..off + 16 + key.len() + vlen].copy_from_slice(v);
        }
        let body_end = off + 16 + key.len() + vlen;
        let crc = crc32(&self.wal_buf[off..body_end]);
        self.wal_buf[body_end..body_end + 4].copy_from_slice(&crc.to_le_bytes());
        self.wal_off = off + total;

        let first = off / PAGE_BYTES;
        let last = (self.wal_off - 1) / PAGE_BYTES;
        for p in first..=last {
            let mut page = [0u8; PAGE_BYTES];
            page.copy_from_slice(&self.wal_buf[p * PAGE_BYTES..(p + 1) * PAGE_BYTES]);
            store.write_page(self.geom.wal_start() + p as u64, &page)?;
        }
        Ok(())
    }

    /// Merges `level` down into `level + 1`. Non-bottom outputs are
    /// *tiered*: only `level`'s segments merge, and the result is pushed
    /// as one more segment so the deeper level can accumulate toward its
    /// own trigger. When the output is the bottom level the merge is
    /// *levelled* — every bottom segment joins the inputs — because
    /// tombstones are dropped there, and that is only sound when no
    /// older copy of a key can survive beneath the output. Freed input
    /// extents are *deferred* to `pending_free`.
    fn compact<S: BlockStore>(
        &mut self,
        store: &mut S,
        level: usize,
        pending_free: &mut Vec<(u64, u64)>,
    ) -> Result<(), IndexError> {
        self.stats.compactions += 1;
        let output_is_bottom = level + 1 == LEVELS - 1;
        // Oldest data first, newer overwrites: anything in the deeper
        // level is strictly older than `level`, and each level's list is
        // ordered oldest → newest.
        let mut inputs: Vec<Segment> = if output_is_bottom {
            self.levels[level + 1].drain(..).collect()
        } else {
            Vec::new()
        };
        inputs.append(&mut self.levels[level]);
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for seg in &inputs {
            for (k, v) in Self::read_all_entries(store, seg)? {
                merged.insert(k, v);
            }
        }
        let drop_tombstones = output_is_bottom;
        let out: Vec<Entry> = merged
            .into_iter()
            .filter(|(_, v)| !(drop_tombstones && v.is_none()))
            .collect();
        if !out.is_empty() {
            let seg = self.write_segment(store, &out, (level + 1) as u8)?;
            self.levels[level + 1].push(seg);
        }
        for seg in inputs {
            pending_free.push((seg.start_page, seg.pages));
        }
        Ok(())
    }

    /// Builds and writes a segment to freshly allocated pages.
    fn write_segment<S: BlockStore>(
        &mut self,
        store: &mut S,
        entries: &[Entry],
        level: u8,
    ) -> Result<Segment, IndexError> {
        let (pages, header) = build_segment(entries, level);
        let n = pages.len() as u64;
        let start = self.alloc_extent(n)?;
        for (i, page) in pages.iter().enumerate() {
            store.write_page(start + i as u64, page)?;
        }
        let header_pages = n - header.data_pages as u64;
        Ok(Segment {
            start_page: start,
            pages: n,
            entry_count: header.entry_count,
            header: Some((header_pages, header)),
        })
    }

    /// Loads and caches a segment's header (fences + bloom).
    fn ensure_header<S: BlockStore>(
        &mut self,
        store: &mut S,
        li: usize,
        si: usize,
    ) -> Result<(), IndexError> {
        if self.levels[li][si].header.is_some() {
            return Ok(());
        }
        let start = self.levels[li][si].start_page;
        let total_pages = self.levels[li][si].pages;
        let first = store.read_page(start)?;
        let body_len = SegmentHeader::peek_body_len(&first)?;
        let header_pages = SegmentHeader::frame_pages(body_len);
        let mut framed = first.to_vec();
        for p in 1..header_pages {
            framed.extend_from_slice(&store.read_page(start + p)?);
        }
        let header = SegmentHeader::decode(&framed)?;
        if header_pages + header.data_pages as u64 != total_pages {
            return Err(IndexError::Corrupt {
                reason: format!(
                    "segment at page {start} sizes disagree: {header_pages} header + {} data vs {total_pages} total",
                    header.data_pages
                ),
            });
        }
        self.levels[li][si].header = Some((header_pages, header));
        Ok(())
    }

    /// Reads every entry of a segment, in key order.
    fn read_all_entries<S: BlockStore>(
        store: &mut S,
        seg: &Segment,
    ) -> Result<Vec<Entry>, IndexError> {
        let first = store.read_page(seg.start_page)?;
        let body_len = SegmentHeader::peek_body_len(&first)?;
        let header_pages = SegmentHeader::frame_pages(body_len);
        let mut out = Vec::with_capacity(seg.entry_count as usize);
        for p in header_pages..seg.pages {
            let page = store.read_page(seg.start_page + p)?;
            out.extend(unpack_data_page(&page)?);
        }
        Ok(out)
    }

    /// First-fit allocation of `n` contiguous heap pages.
    fn alloc_extent(&mut self, n: u64) -> Result<u64, IndexError> {
        for i in 0..self.free.len() {
            let (start, len) = self.free[i];
            if len >= n {
                if len == n {
                    self.free.remove(i);
                } else {
                    self.free[i] = (start + n, len - n);
                }
                return Ok(start);
            }
        }
        Err(IndexError::RegionFull {
            needed_pages: n,
            free_pages: self.free.iter().map(|&(_, len)| len).sum(),
        })
    }

    /// Returns an extent to the pool, coalescing neighbours.
    fn free_extent(&mut self, start: u64, len: u64) {
        self.free.push((start, len));
        self.free.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.free.len());
        for &(s, l) in &self.free {
            match merged.last_mut() {
                Some((ms, ml)) if *ms + *ml == s => *ml += l,
                _ => merged.push((s, l)),
            }
        }
        self.free = merged;
    }

    /// Commits the next manifest to the alternate slot.
    fn write_manifest<S: BlockStore>(&mut self, store: &mut S) -> Result<(), IndexError> {
        self.seq += 1;
        let mut body = Vec::new();
        body.extend_from_slice(&self.seq.to_le_bytes());
        body.extend_from_slice(&self.wal_gen.to_le_bytes());
        body.push(LEVELS as u8);
        for level in &self.levels {
            body.extend_from_slice(&(level.len() as u32).to_le_bytes());
            for seg in level {
                body.extend_from_slice(&seg.start_page.to_le_bytes());
                body.extend_from_slice(&seg.pages.to_le_bytes());
                body.extend_from_slice(&seg.entry_count.to_le_bytes());
            }
        }
        let mut framed = Vec::with_capacity(12 + body.len());
        framed.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&body);
        framed.extend_from_slice(&crc32(&framed).to_le_bytes());
        let slot_bytes = MANIFEST_SLOT_PAGES as usize * PAGE_BYTES;
        if framed.len() > slot_bytes {
            return Err(IndexError::Geometry {
                reason: format!(
                    "manifest of {} bytes exceeds the {slot_bytes}-byte slot",
                    framed.len()
                ),
            });
        }
        framed.resize(slot_bytes, 0);
        let slot_start = (self.seq % 2) * MANIFEST_SLOT_PAGES;
        for (i, chunk) in framed.chunks(PAGE_BYTES).enumerate() {
            let mut page = [0u8; PAGE_BYTES];
            page.copy_from_slice(chunk);
            store.write_page(slot_start + i as u64, &page)?;
        }
        Ok(())
    }

    /// Decodes one manifest slot; `None` for anything invalid.
    #[allow(clippy::type_complexity)]
    fn try_read_manifest<S: BlockStore>(
        store: &mut S,
        geom: IndexGeometry,
        slot: u64,
    ) -> Result<Option<(u64, u64, Vec<Vec<(u64, u64, u64)>>)>, IndexError> {
        let slot_start = slot * MANIFEST_SLOT_PAGES;
        let mut framed = Vec::with_capacity(MANIFEST_SLOT_PAGES as usize * PAGE_BYTES);
        for p in 0..MANIFEST_SLOT_PAGES {
            framed.extend_from_slice(&store.read_page(slot_start + p)?);
        }
        if u32::from_le_bytes(framed[..4].try_into().expect("4")) != MANIFEST_MAGIC {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(framed[4..8].try_into().expect("4")) as usize;
        if 12 + body_len > framed.len() {
            return Ok(None);
        }
        let stored = u32::from_le_bytes(framed[8 + body_len..12 + body_len].try_into().expect("4"));
        if stored != crc32(&framed[..8 + body_len]) {
            return Ok(None);
        }
        let body = &framed[8..8 + body_len];
        if body.len() < 17 || body[16] as usize != LEVELS {
            return Ok(None);
        }
        let seq = u64::from_le_bytes(body[..8].try_into().expect("8"));
        let wal_gen = u64::from_le_bytes(body[8..16].try_into().expect("8"));
        let mut pos = 17usize;
        let mut levels = Vec::with_capacity(LEVELS);
        for _ in 0..LEVELS {
            if pos + 4 > body.len() {
                return Ok(None);
            }
            let count = u32::from_le_bytes(body[pos..pos + 4].try_into().expect("4")) as usize;
            pos += 4;
            if count > 4096 || pos + count * 24 > body.len() {
                return Ok(None);
            }
            let mut segs = Vec::with_capacity(count);
            for _ in 0..count {
                let start = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8"));
                let pages = u64::from_le_bytes(body[pos + 8..pos + 16].try_into().expect("8"));
                let entries = u64::from_le_bytes(body[pos + 16..pos + 24].try_into().expect("8"));
                pos += 24;
                if pages == 0 || start < geom.heap_start() || start + pages > geom.pages {
                    return Ok(None);
                }
                segs.push((start, pages, entries));
            }
            levels.push(segs);
        }
        Ok(Some((seq, wal_gen, levels)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecStore;

    fn fresh(pages: u64) -> (VecStore, MetaIndex) {
        let geom = IndexGeometry::for_pages(pages).unwrap();
        let mut store = VecStore::new(pages);
        let index = MetaIndex::format(&mut store, geom).unwrap();
        (store, index)
    }

    fn key(i: u32) -> Vec<u8> {
        format!("k/{i:06}").into_bytes()
    }

    fn val(i: u32) -> Vec<u8> {
        format!("value-{i}-{}", "x".repeat((i % 23) as usize)).into_bytes()
    }

    #[test]
    fn put_get_across_flush_and_compaction() {
        let (mut store, mut index) = fresh(8192);
        for i in 0..6000 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
        }
        assert!(index.stats().flushes > 0, "6000 entries must have flushed");
        assert!(index.stats().compactions > 0, "levels must have merged");
        for i in (0..6000).step_by(37) {
            assert_eq!(index.get(&mut store, &key(i)).unwrap(), Some(val(i)));
        }
        assert_eq!(index.get(&mut store, b"k/absent").unwrap(), None);
    }

    #[test]
    fn delete_masks_older_segments() {
        let (mut store, mut index) = fresh(2048);
        for i in 0..1500 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
        }
        index.delete(&mut store, &key(7)).unwrap();
        index.flush(&mut store).unwrap();
        assert_eq!(index.get(&mut store, &key(7)).unwrap(), None);
        assert_eq!(index.get(&mut store, &key(8)).unwrap(), Some(val(8)));
        let scan = index.scan_all(&mut store).unwrap();
        assert_eq!(scan.len(), 1499);
        assert!(!scan.iter().any(|(k, _)| k == &key(7)));
    }

    #[test]
    fn reopen_replays_bounded_wal_tail() {
        let (mut store, mut index) = fresh(1024);
        for i in 0..40 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
        }
        let seq = index.manifest_seq();
        drop(index);

        store.reset_counters();
        let geom = IndexGeometry::for_pages(1024).unwrap();
        let (mut reopened, report) = MetaIndex::open(&mut store, geom).unwrap();
        assert!(!report.torn_tail);
        assert!(report.wal_replayed > 0);
        assert_eq!(reopened.manifest_seq(), seq);
        // Open cost: both manifest slots + the WAL region, nothing else.
        assert!(
            store.reads() <= 2 * MANIFEST_SLOT_PAGES + geom.wal_pages,
            "open read {} pages",
            store.reads()
        );
        for i in 0..40 {
            assert_eq!(reopened.get(&mut store, &key(i)).unwrap(), Some(val(i)));
        }
    }

    #[test]
    fn torn_wal_tail_recovers_to_prefix() {
        let (mut store, mut index) = fresh(1024);
        for i in 0..30 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
        }
        let wal_off = index.wal_bytes();
        assert!(wal_off > 0);
        let geom = IndexGeometry::for_pages(1024).unwrap();
        // Corrupt the last record's CRC byte.
        let page = geom.wal_start() + ((wal_off - 1) / PAGE_BYTES) as u64;
        store.corrupt_byte(page, (wal_off - 1) % PAGE_BYTES);
        drop(index);

        let (mut reopened, report) = MetaIndex::open(&mut store, geom).unwrap();
        assert!(report.torn_tail, "the damaged tail must be reported");
        assert_eq!(reopened.get(&mut store, &key(0)).unwrap(), Some(val(0)));
        assert_eq!(reopened.get(&mut store, &key(29)).unwrap(), None);
    }

    #[test]
    fn flipped_segment_byte_is_typed_corruption() {
        let (mut store, mut index) = fresh(1024);
        for i in 0..200 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
        }
        index.flush(&mut store).unwrap();
        // Find a heap page holding segment data and flip a byte in it.
        let geom = IndexGeometry::for_pages(1024).unwrap();
        let mut hit = None;
        for page in geom.heap_start()..geom.pages {
            let data = store.read_page(page).unwrap();
            if data.iter().any(|&b| b != 0) {
                hit = Some(page);
            }
        }
        let page = hit.expect("segments were written");
        store.corrupt_byte(page, 100);
        drop(index);
        let (mut reopened, _) = MetaIndex::open(&mut store, geom).unwrap();
        let mut saw_corrupt = false;
        for i in 0..200 {
            match reopened.get(&mut store, &key(i)) {
                Ok(_) => {}
                Err(IndexError::Corrupt { .. }) => saw_corrupt = true,
                Err(e) => panic!("wrong error type: {e}"),
            }
        }
        assert!(saw_corrupt, "the flipped byte must surface as Corrupt");
    }

    #[test]
    fn manifest_survives_one_vandalized_slot() {
        let (mut store, mut index) = fresh(1024);
        for i in 0..50 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
        }
        index.flush(&mut store).unwrap();
        let live_slot = index.manifest_seq() % 2;
        let dead_slot = 1 - live_slot;
        for p in 0..MANIFEST_SLOT_PAGES {
            store.corrupt_byte(dead_slot * MANIFEST_SLOT_PAGES + p, 0);
        }
        drop(index);
        let geom = IndexGeometry::for_pages(1024).unwrap();
        let (mut reopened, _) = MetaIndex::open(&mut store, geom).unwrap();
        assert_eq!(reopened.get(&mut store, &key(49)).unwrap(), Some(val(49)));
    }

    #[test]
    fn unformatted_region_is_typed_corruption() {
        let mut store = VecStore::new(64);
        let geom = IndexGeometry::for_pages(64).unwrap();
        assert!(matches!(
            MetaIndex::open(&mut store, geom),
            Err(IndexError::Corrupt { .. })
        ));
    }

    #[test]
    fn heap_exhaustion_is_typed() {
        let geom = IndexGeometry::new(IndexGeometry::MIN_PAGES, 2).unwrap();
        let mut store = VecStore::new(geom.pages);
        let mut index = MetaIndex::format(&mut store, geom).unwrap();
        let mut err = None;
        for i in 0..100_000 {
            let big = vec![(i % 251) as u8; MAX_VALUE_BYTES];
            match index.put(&mut store, &key(i), &big) {
                Ok(()) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(IndexError::RegionFull { .. })));
    }

    #[test]
    fn oversize_entries_rejected() {
        let (mut store, mut index) = fresh(64);
        let e = index
            .put(&mut store, &[0u8; MAX_KEY_BYTES + 1], b"v")
            .unwrap_err();
        assert!(matches!(e, IndexError::Oversize { .. }));
        let e = index
            .put(&mut store, b"k", &[0u8; MAX_VALUE_BYTES + 1])
            .unwrap_err();
        assert!(matches!(e, IndexError::Oversize { .. }));
        assert!(index.delete(&mut store, &[0u8; MAX_KEY_BYTES + 1]).is_err());
    }

    #[test]
    fn tombstones_dropped_at_bottom_level() {
        let (mut store, mut index) = fresh(8192);
        for i in 0..2000 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
        }
        for i in 0..2000 {
            index.delete(&mut store, &key(i)).unwrap();
        }
        // Force enough flushes to push everything through the levels.
        for round in 0..30 {
            index
                .put(&mut store, format!("pad/{round}").as_bytes(), b"p")
                .unwrap();
            index.flush(&mut store).unwrap();
        }
        let live: u64 = index.segment_entries();
        assert!(
            live < 2000,
            "bottom-level merges must shed tombstoned pairs, kept {live}"
        );
        assert_eq!(index.get(&mut store, &key(123)).unwrap(), None);
    }

    #[test]
    fn bloom_skips_accumulate() {
        let (mut store, mut index) = fresh(2048);
        for i in 0..1500 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
        }
        index.flush(&mut store).unwrap();
        for i in 0..500 {
            let miss = format!("absent/{i}");
            assert_eq!(index.get(&mut store, miss.as_bytes()).unwrap(), None);
        }
        assert!(
            index.stats().bloom_skips > 0,
            "misses must be pruned by blooms"
        );
    }

    #[test]
    fn scan_all_matches_inserted_state() {
        let (mut store, mut index) = fresh(2048);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for i in 0..1200 {
            index.put(&mut store, &key(i), &val(i)).unwrap();
            model.insert(key(i), val(i));
            if i % 5 == 0 {
                index.delete(&mut store, &key(i)).unwrap();
                model.remove(&key(i));
            }
        }
        let scan = index.scan_all(&mut store).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        assert_eq!(scan, expect);
    }
}
