//! An SSTable/LSM metadata index with per-segment bloom filters.
//!
//! `sero-fs` keeps every inode and directory entry in in-memory
//! `BTreeMap`s and used to persist them as one monolithic checkpoint that
//! had to fit a fixed block region — none of which survives 10^6–10^8
//! objects. This crate is the scalable replacement: a log-structured
//! merge index in the spirit of LFS's log discipline, persisted in a
//! WMRM (rewritable) region with the same CRC-framed record contract as
//! the scrub-state store.
//!
//! The moving parts, bottom to top:
//!
//! * [`BlockStore`] — the page-granular storage abstraction. The file
//!   system adapts a reserved `SeroDevice` region to it; [`VecStore`] is
//!   the RAM-backed implementation the property tests and the 1M-file
//!   `exp_metadata` baseline run against (with read/write counters, so
//!   sublinearity is asserted on *counted page I/O*, not wall clock).
//! * Write-ahead log — every [`MetaIndex::put`]/[`MetaIndex::delete`]
//!   appends one CRC-framed record (`magic ‖ generation ‖ key ‖ value ‖
//!   crc32`) to the WAL region and mirrors it into the memtable. Records
//!   carry the WAL *generation*; a flush bumps the generation, so stale
//!   records left over from before the flush are skipped on replay
//!   without any erase pass.
//! * Sorted segments ([`segment`]) — when the memtable fills (or the WAL
//!   region would overflow), it is flushed into one immutable sorted
//!   segment: CRC-framed header (fence keys + bloom filter) followed by
//!   CRC-tailed data pages. Segments are never rewritten in place;
//!   compaction writes replacements to fresh pages and frees the old
//!   ones only after the manifest commits.
//! * Manifest — a double-slotted, sequence-numbered, CRC-framed record
//!   naming every live segment and the current WAL generation. Opening
//!   the index reads both slots, picks the newest valid one, and replays
//!   the *bounded* WAL tail — mount cost is manifest + WAL region, never
//!   a device scan. A torn WAL tail or a corrupt slot recovers to the
//!   last durable manifest, never a partial index.
//! * Levelled compaction ([`lsm`]) — level 0 collects memtable flushes;
//!   when it exceeds its fan-out the level is merged one level down.
//!   Tombstones are dropped only when a merge reaches the bottom level.
//!
//! # Examples
//!
//! ```
//! use sero_index::{IndexGeometry, MetaIndex, VecStore};
//!
//! let geom = IndexGeometry::for_pages(64)?;
//! let mut store = VecStore::new(64);
//! let mut index = MetaIndex::format(&mut store, geom)?;
//! index.put(&mut store, b"d/hello.txt", &7u64.to_le_bytes())?;
//!
//! // Reopen: manifest + bounded WAL replay, no scan.
//! let (mut index, report) = MetaIndex::open(&mut store, geom)?;
//! assert_eq!(report.wal_replayed, 1);
//! assert!(!report.torn_tail);
//! assert_eq!(
//!     index.get(&mut store, b"d/hello.txt")?,
//!     Some(7u64.to_le_bytes().to_vec())
//! );
//! # Ok::<(), sero_index::IndexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod lsm;
pub mod segment;

pub use bloom::Bloom;
pub use lsm::{IndexStats, MetaIndex, OpenReport};

use core::fmt;

/// Bytes per index page. One page maps to one 512-byte device sector, so
/// a reserved region of `n` blocks hosts an `n`-page index.
pub const PAGE_BYTES: usize = 512;

/// Pages per manifest slot (two slots precede the WAL region).
pub const MANIFEST_SLOT_PAGES: u64 = 2;

/// Longest key the index accepts.
pub const MAX_KEY_BYTES: usize = 80;

/// Longest value the index accepts. Callers with bigger records chunk
/// them across continuation keys (the file system does this for inode
/// records) so that every entry fits one data page whole.
pub const MAX_VALUE_BYTES: usize = 416;

/// Errors from the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The region geometry cannot host an index.
    Geometry {
        /// Explanation.
        reason: String,
    },
    /// The backing store failed.
    Store {
        /// Explanation from the store.
        reason: String,
    },
    /// A CRC-framed structure failed validation.
    Corrupt {
        /// What failed, and why.
        reason: String,
    },
    /// The segment heap has no extent big enough for a new segment.
    RegionFull {
        /// Contiguous pages the write needed.
        needed_pages: u64,
        /// Free pages remaining (possibly fragmented).
        free_pages: u64,
    },
    /// Key or value exceeds the per-entry limits.
    Oversize {
        /// Offered key length.
        key_len: usize,
        /// Offered value length.
        value_len: usize,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Geometry { reason } => write!(f, "bad index geometry: {reason}"),
            IndexError::Store { reason } => write!(f, "index store error: {reason}"),
            IndexError::Corrupt { reason } => write!(f, "corrupt index structure: {reason}"),
            IndexError::RegionFull {
                needed_pages,
                free_pages,
            } => write!(
                f,
                "index region full: need {needed_pages} contiguous pages, {free_pages} free"
            ),
            IndexError::Oversize { key_len, value_len } => write!(
                f,
                "index entry oversize: key {key_len} B (max {MAX_KEY_BYTES}), \
                 value {value_len} B (max {MAX_VALUE_BYTES})"
            ),
        }
    }
}

impl std::error::Error for IndexError {}

/// Page-granular storage under the index.
///
/// Implementations must give read-your-writes semantics; pages never
/// written may return anything (a fresh device region decodes as zeros).
pub trait BlockStore {
    /// Pages available to the index.
    fn page_count(&self) -> u64;
    /// Reads one page.
    ///
    /// # Errors
    ///
    /// [`IndexError::Store`] on backing-store failure.
    fn read_page(&mut self, page: u64) -> Result<[u8; PAGE_BYTES], IndexError>;
    /// Writes one page.
    ///
    /// # Errors
    ///
    /// [`IndexError::Store`] on backing-store failure.
    fn write_page(&mut self, page: u64, data: &[u8; PAGE_BYTES]) -> Result<(), IndexError>;
}

/// RAM-backed [`BlockStore`] with I/O counters — the property-test and
/// `exp_metadata` substrate. The counters make "mount cost is bounded"
/// and "lookup cost is sublinear" *assertable*: they count pages
/// actually transferred, independent of any clock.
#[derive(Debug, Clone)]
pub struct VecStore {
    pages: Vec<[u8; PAGE_BYTES]>,
    reads: u64,
    writes: u64,
}

impl VecStore {
    /// A zero-filled store of `pages` pages.
    pub fn new(pages: u64) -> VecStore {
        VecStore {
            pages: vec![[0u8; PAGE_BYTES]; pages as usize],
            reads: 0,
            writes: 0,
        }
    }

    /// Pages read since construction (or the last reset).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Pages written since construction (or the last reset).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Zeroes both I/O counters.
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }

    /// Flips every bit of one byte — the fault-injection hook the
    /// corruption property tests use.
    ///
    /// # Panics
    ///
    /// Panics when `page`/`offset` are out of range.
    pub fn corrupt_byte(&mut self, page: u64, offset: usize) {
        self.pages[page as usize][offset] ^= 0xFF;
    }
}

impl BlockStore for VecStore {
    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn read_page(&mut self, page: u64) -> Result<[u8; PAGE_BYTES], IndexError> {
        self.reads += 1;
        self.pages
            .get(page as usize)
            .copied()
            .ok_or_else(|| IndexError::Store {
                reason: format!("page {page} out of range"),
            })
    }

    fn write_page(&mut self, page: u64, data: &[u8; PAGE_BYTES]) -> Result<(), IndexError> {
        self.writes += 1;
        let n = self.pages.len();
        let slot = self
            .pages
            .get_mut(page as usize)
            .ok_or_else(|| IndexError::Store {
                reason: format!("page {page} out of range ({n} pages)"),
            })?;
        *slot = *data;
        Ok(())
    }
}

/// Layout of an index region: two manifest slots, a WAL region, and the
/// segment heap, in that order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexGeometry {
    /// Total pages the index may use.
    pub pages: u64,
    /// Pages reserved for the write-ahead log.
    pub wal_pages: u64,
}

impl IndexGeometry {
    /// Smallest region an index can live in.
    pub const MIN_PAGES: u64 = 2 * MANIFEST_SLOT_PAGES + 2 + 8;

    /// A geometry over `pages` with a proportional WAL
    /// (1/8th of the region, clamped to [2, 64] pages).
    ///
    /// # Errors
    ///
    /// [`IndexError::Geometry`] when `pages < MIN_PAGES`.
    pub fn for_pages(pages: u64) -> Result<IndexGeometry, IndexError> {
        let wal_pages = (pages / 8).clamp(2, 64);
        IndexGeometry::new(pages, wal_pages)
    }

    /// A geometry with an explicit WAL size.
    ///
    /// # Errors
    ///
    /// [`IndexError::Geometry`] unless manifest + WAL + at least 8 heap
    /// pages fit.
    pub fn new(pages: u64, wal_pages: u64) -> Result<IndexGeometry, IndexError> {
        let overhead = 2 * MANIFEST_SLOT_PAGES + wal_pages;
        if wal_pages < 2 || pages < overhead + 8 {
            return Err(IndexError::Geometry {
                reason: format!(
                    "{pages} pages cannot host 2×{MANIFEST_SLOT_PAGES} manifest pages, \
                     a {wal_pages}-page WAL and ≥ 8 heap pages"
                ),
            });
        }
        Ok(IndexGeometry { pages, wal_pages })
    }

    /// First WAL page.
    pub fn wal_start(&self) -> u64 {
        2 * MANIFEST_SLOT_PAGES
    }

    /// First segment-heap page.
    pub fn heap_start(&self) -> u64 {
        self.wal_start() + self.wal_pages
    }

    /// Pages in the segment heap.
    pub fn heap_pages(&self) -> u64 {
        self.pages - self.heap_start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_layout_partitions_the_region() {
        let g = IndexGeometry::for_pages(64).unwrap();
        assert_eq!(g.wal_start(), 4);
        assert_eq!(g.heap_start(), 4 + g.wal_pages);
        assert_eq!(g.heap_pages() + g.wal_pages + 4, 64);
    }

    #[test]
    fn tiny_regions_rejected() {
        assert!(IndexGeometry::for_pages(IndexGeometry::MIN_PAGES - 1).is_err());
        assert!(IndexGeometry::for_pages(IndexGeometry::MIN_PAGES).is_ok());
        assert!(IndexGeometry::new(64, 1).is_err());
        assert!(IndexGeometry::new(64, 60).is_err());
    }

    #[test]
    fn vec_store_counts_io_and_bounds_pages() {
        let mut s = VecStore::new(4);
        assert_eq!(s.page_count(), 4);
        s.write_page(1, &[7u8; PAGE_BYTES]).unwrap();
        assert_eq!(s.read_page(1).unwrap()[0], 7);
        assert_eq!((s.reads(), s.writes()), (1, 1));
        s.reset_counters();
        assert_eq!((s.reads(), s.writes()), (0, 0));
        assert!(s.read_page(9).is_err());
        assert!(s.write_page(9, &[0u8; PAGE_BYTES]).is_err());
    }

    #[test]
    fn errors_display() {
        for e in [
            IndexError::Geometry { reason: "x".into() },
            IndexError::Store { reason: "y".into() },
            IndexError::Corrupt { reason: "z".into() },
            IndexError::RegionFull {
                needed_pages: 3,
                free_pages: 1,
            },
            IndexError::Oversize {
                key_len: 999,
                value_len: 0,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
