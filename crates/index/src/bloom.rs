//! A fixed-size bloom filter with double hashing.
//!
//! Each sealed segment carries one bloom filter over every key it holds
//! (including tombstones), sized at ~10 bits per key with 7 probes — a
//! ~1% false-positive rate. False *negatives* are impossible by
//! construction: [`Bloom::insert`] sets exactly the bits
//! [`Bloom::contains`] tests, and the filter is immutable once the
//! segment seals. The property suite pins this.

use crate::IndexError;

/// Bits per key when sizing a filter.
const BITS_PER_KEY: u64 = 10;

/// Probes per key.
const PROBES: u8 = 7;

/// The filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    nbits: u64,
    k: u8,
    bits: Vec<u8>,
}

impl Bloom {
    /// An empty filter sized for `entries` keys.
    pub fn with_capacity(entries: u64) -> Bloom {
        let nbits = (entries * BITS_PER_KEY).max(64);
        Bloom {
            nbits,
            k: PROBES,
            bits: vec![0u8; nbits.div_ceil(8) as usize],
        }
    }

    /// Rebuilds a filter from its serialized parts.
    ///
    /// # Errors
    ///
    /// [`IndexError::Corrupt`] when the byte length disagrees with
    /// `nbits` or the parameters are degenerate.
    pub fn from_parts(nbits: u64, k: u8, bits: Vec<u8>) -> Result<Bloom, IndexError> {
        if nbits == 0 || k == 0 || bits.len() as u64 != nbits.div_ceil(8) {
            return Err(IndexError::Corrupt {
                reason: format!(
                    "bloom parts disagree: {nbits} bits, k={k}, {} bytes",
                    bits.len()
                ),
            });
        }
        Ok(Bloom { nbits, k, bits })
    }

    /// Filter size in bits.
    pub fn nbits(&self) -> u64 {
        self.nbits
    }

    /// Probe count.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// The raw bit array, for serialization.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// Marks `key` present.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hash_pair(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.nbits;
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    /// True when `key` *may* be present; false means definitely absent.
    pub fn contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash_pair(key);
        (0..self.k).all(|i| {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.nbits;
            self.bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0
        })
    }
}

/// FNV-1a, then a splitmix64 finalization of it for the second hash of
/// the double-hashing scheme (forced odd so the probe stride never
/// degenerates to zero).
fn hash_pair(key: &[u8]) -> (u64, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (h, (z ^ (z >> 31)) | 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::with_capacity(1000);
        let keys: Vec<String> = (0..1000).map(|i| format!("key-{i:05}")).collect();
        for k in &keys {
            b.insert(k.as_bytes());
        }
        for k in &keys {
            assert!(b.contains(k.as_bytes()), "false negative on {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut b = Bloom::with_capacity(1000);
        for i in 0..1000 {
            b.insert(format!("present-{i}").as_bytes());
        }
        let hits = (0..10_000)
            .filter(|i| b.contains(format!("absent-{i}").as_bytes()))
            .count();
        // ~1% expected at 10 bits/key; generous ceiling against hash luck.
        assert!(hits < 400, "false positive rate too high: {hits}/10000");
    }

    #[test]
    fn round_trips_through_parts() {
        let mut b = Bloom::with_capacity(10);
        b.insert(b"x");
        let rebuilt = Bloom::from_parts(b.nbits(), b.k(), b.bits().to_vec()).unwrap();
        assert_eq!(rebuilt, b);
        assert!(rebuilt.contains(b"x"));
    }

    #[test]
    fn bad_parts_rejected() {
        assert!(Bloom::from_parts(0, 7, vec![]).is_err());
        assert!(Bloom::from_parts(64, 0, vec![0; 8]).is_err());
        assert!(Bloom::from_parts(64, 7, vec![0; 7]).is_err());
    }
}
