//! The immutable sorted-segment (SSTable) on-page format.
//!
//! A segment is a contiguous page run: a CRC-framed header (level,
//! entry count, one fence key per data page, and the segment's bloom
//! filter) followed by self-validating data pages. Entries never span
//! pages, every data page ends in a CRC32 over its contents, and the
//! header is framed `magic ‖ length ‖ body ‖ crc32` exactly like the
//! scrub-state record — a flipped byte anywhere surfaces as a typed
//! [`IndexError::Corrupt`], never as silently wrong data.
//!
//! Layout:
//!
//! ```text
//! page 0..h   header frame, chunked: "SSEG" ‖ len ‖ body ‖ crc32
//! page h..n   data pages: count:u16 ‖ entries ‖ zero pad ‖ crc32
//! entry       klen:u16 ‖ vlen:u16 ‖ key ‖ value   (vlen 0xFFFF ⇒ tombstone)
//! ```

use crate::bloom::Bloom;
use crate::{IndexError, MAX_KEY_BYTES, MAX_VALUE_BYTES, PAGE_BYTES};
use sero_codec::crc32::crc32;

/// Magic framing a segment header ("SSEG").
pub const SEGMENT_MAGIC: u32 = 0x5353_4547;

/// Bytes of a data page available to entries (count prefix and CRC
/// suffix excluded).
pub const DATA_PAGE_CAP: usize = PAGE_BYTES - 2 - 4;

/// One key with either a value or a tombstone.
pub type Entry = (Vec<u8>, Option<Vec<u8>>);

/// Tombstone sentinel in the `vlen` field.
const TOMBSTONE_VLEN: u16 = 0xFFFF;

/// Encoded size of one entry on a data page.
pub fn entry_bytes(key: &[u8], value: Option<&[u8]>) -> usize {
    4 + key.len() + value.map_or(0, <[u8]>::len)
}

/// Packs sorted `entries` into data pages, returning the pages and one
/// fence key (the first key) per page.
///
/// # Panics
///
/// Panics when an entry exceeds [`MAX_KEY_BYTES`]/[`MAX_VALUE_BYTES`]
/// (the index validates at the put boundary) or `entries` is empty.
pub fn pack_data_pages(entries: &[Entry]) -> (Vec<[u8; PAGE_BYTES]>, Vec<Vec<u8>>) {
    assert!(!entries.is_empty(), "segments are never empty");
    let mut pages = Vec::new();
    let mut fences = Vec::new();
    let mut page = [0u8; PAGE_BYTES];
    let mut pos = 2usize;
    let mut count = 0u16;

    let seal = |page: &mut [u8; PAGE_BYTES], count: &mut u16, pos: &mut usize| {
        page[0..2].copy_from_slice(&count.to_le_bytes());
        let crc = crc32(&page[..PAGE_BYTES - 4]);
        page[PAGE_BYTES - 4..].copy_from_slice(&crc.to_le_bytes());
        *count = 0;
        *pos = 2;
    };

    for (key, value) in entries {
        assert!(key.len() <= MAX_KEY_BYTES, "oversize key reached packing");
        assert!(
            value.as_ref().is_none_or(|v| v.len() <= MAX_VALUE_BYTES),
            "oversize value reached packing"
        );
        let need = entry_bytes(key, value.as_deref());
        if pos + need > 2 + DATA_PAGE_CAP {
            seal(&mut page, &mut count, &mut pos);
            pages.push(page);
            page = [0u8; PAGE_BYTES];
        }
        if count == 0 {
            fences.push(key.clone());
        }
        page[pos..pos + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        let vlen = value.as_ref().map_or(TOMBSTONE_VLEN, |v| v.len() as u16);
        page[pos + 2..pos + 4].copy_from_slice(&vlen.to_le_bytes());
        pos += 4;
        page[pos..pos + key.len()].copy_from_slice(key);
        pos += key.len();
        if let Some(v) = value {
            page[pos..pos + v.len()].copy_from_slice(v);
            pos += v.len();
        }
        count += 1;
    }
    seal(&mut page, &mut count, &mut pos);
    pages.push(page);
    (pages, fences)
}

/// Decodes one data page into entries.
///
/// # Errors
///
/// [`IndexError::Corrupt`] on CRC mismatch or a malformed entry table.
pub fn unpack_data_page(page: &[u8; PAGE_BYTES]) -> Result<Vec<Entry>, IndexError> {
    let stored = u32::from_le_bytes(page[PAGE_BYTES - 4..].try_into().expect("4"));
    let computed = crc32(&page[..PAGE_BYTES - 4]);
    if stored != computed {
        return Err(IndexError::Corrupt {
            reason: format!("data page crc mismatch: stored {stored:#010x} vs {computed:#010x}"),
        });
    }
    let count = u16::from_le_bytes(page[0..2].try_into().expect("2")) as usize;
    let mut out = Vec::with_capacity(count);
    let mut pos = 2usize;
    for _ in 0..count {
        if pos + 4 > PAGE_BYTES - 4 {
            return Err(IndexError::Corrupt {
                reason: "data page entry table overruns the page".to_string(),
            });
        }
        let klen = u16::from_le_bytes(page[pos..pos + 2].try_into().expect("2")) as usize;
        let vlen_raw = u16::from_le_bytes(page[pos + 2..pos + 4].try_into().expect("2"));
        pos += 4;
        let vlen = if vlen_raw == TOMBSTONE_VLEN {
            0
        } else {
            vlen_raw as usize
        };
        if klen > MAX_KEY_BYTES || vlen > MAX_VALUE_BYTES || pos + klen + vlen > PAGE_BYTES - 4 {
            return Err(IndexError::Corrupt {
                reason: format!("data page entry oversize: klen {klen}, vlen {vlen}"),
            });
        }
        let key = page[pos..pos + klen].to_vec();
        pos += klen;
        let value = if vlen_raw == TOMBSTONE_VLEN {
            None
        } else {
            Some(page[pos..pos + vlen].to_vec())
        };
        pos += vlen;
        out.push((key, value));
    }
    Ok(out)
}

/// The decoded segment header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentHeader {
    /// LSM level this segment belongs to.
    pub level: u8,
    /// Entries across all data pages (tombstones included).
    pub entry_count: u64,
    /// Data pages following the header.
    pub data_pages: u32,
    /// First key of each data page, in order.
    pub fences: Vec<Vec<u8>>,
    /// Bloom filter over every key in the segment.
    pub bloom: Bloom,
}

impl SegmentHeader {
    /// Serializes the header as a CRC frame, chunked into whole pages.
    pub fn encode_pages(&self) -> Vec<[u8; PAGE_BYTES]> {
        let mut body = Vec::new();
        body.push(self.level);
        body.extend_from_slice(&self.entry_count.to_le_bytes());
        body.extend_from_slice(&self.data_pages.to_le_bytes());
        body.extend_from_slice(&(self.fences.len() as u32).to_le_bytes());
        for fence in &self.fences {
            body.extend_from_slice(&(fence.len() as u16).to_le_bytes());
            body.extend_from_slice(fence);
        }
        body.push(self.bloom.k());
        body.extend_from_slice(&self.bloom.nbits().to_le_bytes());
        body.extend_from_slice(self.bloom.bits());

        let mut framed = Vec::with_capacity(12 + body.len());
        framed.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&body);
        framed.extend_from_slice(&crc32(&framed).to_le_bytes());

        let mut pages = Vec::with_capacity(framed.len().div_ceil(PAGE_BYTES));
        for chunk in framed.chunks(PAGE_BYTES) {
            let mut page = [0u8; PAGE_BYTES];
            page[..chunk.len()].copy_from_slice(chunk);
            pages.push(page);
        }
        pages
    }

    /// Pages a frame of `body_len` bytes occupies.
    pub fn frame_pages(body_len: usize) -> u64 {
        (12 + body_len).div_ceil(PAGE_BYTES) as u64
    }

    /// Body length declared by the frame's first page, if the magic
    /// matches.
    ///
    /// # Errors
    ///
    /// [`IndexError::Corrupt`] on a bad magic.
    pub fn peek_body_len(first_page: &[u8; PAGE_BYTES]) -> Result<usize, IndexError> {
        let magic = u32::from_le_bytes(first_page[..4].try_into().expect("4"));
        if magic != SEGMENT_MAGIC {
            return Err(IndexError::Corrupt {
                reason: format!("segment header magic {magic:#010x}"),
            });
        }
        Ok(u32::from_le_bytes(first_page[4..8].try_into().expect("4")) as usize)
    }

    /// Decodes a header frame (pages concatenated, padding allowed).
    ///
    /// # Errors
    ///
    /// [`IndexError::Corrupt`] on truncation, CRC mismatch, or
    /// inconsistent fields.
    pub fn decode(framed: &[u8]) -> Result<SegmentHeader, IndexError> {
        let corrupt = |reason: String| IndexError::Corrupt { reason };
        if framed.len() < 12 {
            return Err(corrupt("segment header truncated".to_string()));
        }
        let body_len = u32::from_le_bytes(framed[4..8].try_into().expect("4")) as usize;
        let magic = u32::from_le_bytes(framed[..4].try_into().expect("4"));
        if magic != SEGMENT_MAGIC {
            return Err(corrupt(format!("segment header magic {magic:#010x}")));
        }
        if framed.len() < 12 + body_len {
            return Err(corrupt("segment header shorter than declared".to_string()));
        }
        let stored = u32::from_le_bytes(framed[8 + body_len..12 + body_len].try_into().expect("4"));
        let computed = crc32(&framed[..8 + body_len]);
        if stored != computed {
            return Err(corrupt(format!(
                "segment header crc mismatch: stored {stored:#010x} vs {computed:#010x}"
            )));
        }
        let body = &framed[8..8 + body_len];
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], IndexError> {
            if *pos + n > body.len() {
                return Err(IndexError::Corrupt {
                    reason: "segment header body truncated".to_string(),
                });
            }
            let s = &body[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let level = take(&mut pos, 1)?[0];
        let entry_count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let data_pages = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        let fence_count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        if fence_count != data_pages {
            return Err(corrupt(format!(
                "segment header fences {fence_count} disagree with {data_pages} data pages"
            )));
        }
        let mut fences = Vec::with_capacity(fence_count as usize);
        for _ in 0..fence_count {
            let flen = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2")) as usize;
            if flen > MAX_KEY_BYTES {
                return Err(corrupt(format!("fence key of {flen} bytes")));
            }
            fences.push(take(&mut pos, flen)?.to_vec());
        }
        let k = take(&mut pos, 1)?[0];
        let nbits = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let bloom_bytes = nbits.div_ceil(8) as usize;
        let bloom = Bloom::from_parts(nbits, k, take(&mut pos, bloom_bytes)?.to_vec())?;
        Ok(SegmentHeader {
            level,
            entry_count,
            data_pages,
            fences,
            bloom,
        })
    }
}

/// Builds a complete segment image from sorted entries: header pages
/// followed by data pages.
///
/// # Panics
///
/// Panics on an empty entry set (callers skip empty flushes).
pub fn build_segment(entries: &[Entry], level: u8) -> (Vec<[u8; PAGE_BYTES]>, SegmentHeader) {
    let (data, fences) = pack_data_pages(entries);
    let mut bloom = Bloom::with_capacity(entries.len() as u64);
    for (key, _) in entries {
        bloom.insert(key);
    }
    let header = SegmentHeader {
        level,
        entry_count: entries.len() as u64,
        data_pages: data.len() as u32,
        fences,
        bloom,
    };
    let mut pages = header.encode_pages();
    pages.extend(data);
    (pages, header)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let v = if i % 7 == 3 {
                    None
                } else {
                    Some(vec![i as u8; i % 40])
                };
                (format!("key-{i:06}").into_bytes(), v)
            })
            .collect()
    }

    #[test]
    fn data_pages_round_trip() {
        let entries = sample(200);
        let (pages, fences) = pack_data_pages(&entries);
        assert!(pages.len() > 1, "200 entries need several pages");
        assert_eq!(fences.len(), pages.len());
        let mut back = Vec::new();
        for p in &pages {
            back.extend(unpack_data_page(p).unwrap());
        }
        assert_eq!(back, entries);
    }

    #[test]
    fn flipped_byte_is_typed_corruption() {
        let (mut pages, _) = pack_data_pages(&sample(50));
        pages[0][17] ^= 0xFF;
        assert!(matches!(
            unpack_data_page(&pages[0]),
            Err(IndexError::Corrupt { .. })
        ));
    }

    #[test]
    fn header_round_trips_through_pages() {
        let entries = sample(500);
        let (pages, header) = build_segment(&entries, 1);
        let body_len = SegmentHeader::peek_body_len(&pages[0]).unwrap();
        let header_pages = SegmentHeader::frame_pages(body_len) as usize;
        let mut framed = Vec::new();
        for p in &pages[..header_pages] {
            framed.extend_from_slice(p);
        }
        let decoded = SegmentHeader::decode(&framed).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(decoded.level, 1);
        assert_eq!(decoded.entry_count, 500);
        assert_eq!(header_pages + decoded.data_pages as usize, pages.len());
        // Every key (tombstones included) answers the bloom filter.
        for (key, _) in &entries {
            assert!(decoded.bloom.contains(key));
        }
    }

    #[test]
    fn corrupt_header_rejected() {
        let (pages, _) = build_segment(&sample(10), 0);
        let mut framed: Vec<u8> = pages[0].to_vec();
        framed[20] ^= 0x01;
        assert!(matches!(
            SegmentHeader::decode(&framed),
            Err(IndexError::Corrupt { .. })
        ));
        let empty = [0u8; PAGE_BYTES];
        assert!(SegmentHeader::peek_body_len(&empty).is_err());
    }
}
