//! Compliance audit logging on the SERO file system.
//!
//! The paper's §1 motivation: SOX-style regulation demands records that
//! cannot be silently rewritten. This example runs the audit-log workload
//! against the file system — every closed batch is heated — then shows
//! the regulator's view: verification of every batch and the bimodal
//! segment layout that keeps the device fast while it ages into
//! read-only.
//!
//! Run with: `cargo run --example audit_log`

use sero::core::device::SeroDevice;
use sero::fs::prelude::*;
use sero::workload::{AuditLogWorkload, Op, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== audit log with per-batch heating ==\n");

    let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::default())?;
    let workload = AuditLogWorkload {
        batches: 10,
        events_per_batch: 16,
        event_bytes: 80,
    };

    let mut heated = Vec::new();
    for op in workload.ops(2008) {
        match op {
            Op::Create {
                name,
                data,
                archival,
            } => {
                let class = if archival {
                    WriteClass::Archival
                } else {
                    WriteClass::Normal
                };
                fs.create(&name, &data, class)?;
            }
            Op::Heat { name, metadata } => {
                let line = fs.heat(&name, metadata, 1_199_145_600)?;
                println!("closed batch {name:<12} -> heated {line}");
                heated.push(name);
            }
            _ => {}
        }
    }

    // The regulator arrives: verify every batch.
    println!("\nregulator verification:");
    let mut intact = 0;
    for name in &heated {
        let ok = fs.verify(name)?.is_intact();
        intact += ok as usize;
        println!("  {name:<12} {}", if ok { "intact" } else { "TAMPERED" });
    }
    println!("{intact}/{} batches verified intact", heated.len());

    // Attempting to doctor a batch is refused by the protocol…
    let err = fs
        .write(&heated[0], b"doctored", WriteClass::Normal)
        .unwrap_err();
    println!("\nrewrite attempt on {}: {err}", heated[0]);

    // …and raw tampering is caught.
    let line = fs.stat(&heated[3])?.heated.expect("heated");
    fs.device_mut()
        .probe_mut()
        .mws(line.start() + 2, &[0u8; 512])?;
    let outcome = fs.verify(&heated[3])?;
    println!(
        "raw tampering with {}: tampered = {}",
        heated[3],
        outcome.is_tampered()
    );

    // Ageing report.
    let stats = fs.device().stats();
    println!(
        "\ndevice ageing: {}/{} blocks now read-only across {} heated lines",
        stats.read_only_blocks, stats.total_blocks, stats.heated_lines
    );
    println!(
        "segment purity (bimodality score): {:.2}  | mixed segments: {}",
        fs.bimodality_score(),
        fs.mixed_segments()
    );
    Ok(())
}
