//! Digital evidence bags and post-incident recovery (§8 "Forensics").
//!
//! The paper proposes heated files as the basis of a "digital evidence
//! bag": an investigator can instruct the device to heat evidence in
//! place, without imaging the whole disk. This example heats evidence,
//! lets the insider destroy every mutable structure — directory,
//! checkpoint, even a full degauss of a second device — and shows what
//! the forensic scan still recovers.
//!
//! Run with: `cargo run --example forensics`

use rand::SeedableRng;
use sero::core::device::SeroDevice;
use sero::fs::fsck;
use sero::fs::prelude::*;

fn build_world() -> Result<SeroFs, Box<dyn std::error::Error>> {
    let mut fs = SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default())?;
    fs.create("mailbox-ceo.mbox", &vec![0x41u8; 3000], WriteClass::Normal)?;
    fs.create(
        "wire-transfers.csv",
        b"2007-11-05,9500000,EUR,CH-91-XXXX\n".repeat(30).as_slice(),
        WriteClass::Archival,
    )?;
    fs.create(
        "shredder-log.txt",
        b"22:14 shredded 412 pages\n".repeat(8).as_slice(),
        WriteClass::Archival,
    )?;
    // The investigator bags the evidence: heat in place, no disk imaging.
    fs.heat(
        "wire-transfers.csv",
        b"case 2008/017 exhibit A".to_vec(),
        1_199_145_600,
    )?;
    fs.heat(
        "shredder-log.txt",
        b"case 2008/017 exhibit B".to_vec(),
        1_199_145_601,
    )?;
    fs.sync()?;
    Ok(fs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== live forensics on SERO storage ==\n");

    // --- incident 1: directory and checkpoint destroyed -------------------
    let fs = build_world()?;
    let mut dev = fs.into_device();
    for b in 0..16 {
        dev.probe_mut().mws(b, &[0u8; 512])?;
    }
    println!("insider wiped the checkpoint/directory region.");
    let recovered = fsck::recover_heated_files(&mut dev)?;
    println!(
        "forensic scan recovered {} evidence file(s):",
        recovered.len()
    );
    for r in &recovered {
        println!(
            "  {:<22} {:>5} bytes  line {}  verified: {}",
            r.name,
            r.data.len(),
            r.line,
            if r.intact { "yes" } else { "NO" }
        );
    }
    assert!(recovered.iter().all(|r| r.intact));

    // --- incident 2: the bulk eraser ---------------------------------------
    let fs = build_world()?;
    let mut dev = fs.into_device();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    dev.probe_mut().medium_mut().bulk_erase(&mut rng);
    println!("\ninsider ran the whole medium through a degausser.");
    let scan = dev.rebuild_registry()?;
    println!(
        "magnetic data is gone, but {} heated line(s) are still physically present:",
        scan.lines_found
    );
    let records: Vec<_> = dev.heated_lines().cloned().collect();
    for rec in &records {
        let verdict = dev.verify_line(rec.line)?;
        println!(
            "  {} heated at t={} -> verify: {}",
            rec.line,
            rec.timestamp,
            if verdict.is_tampered() {
                "TAMPERED (data destroyed)"
            } else {
                "intact"
            }
        );
    }
    println!("\nconclusion: the erasure itself is the evidence — the heated");
    println!("hashes prove records existed that the medium no longer carries.");
    Ok(())
}
