//! Quickstart: the SERO stack in five minutes, through the command API.
//!
//! Every deployment path — in-process embedding, the test suite, and the
//! `sero-server` wire daemon — drives the stack through one door: a
//! [`sero::proto::Request`] handed to [`sero::fs::fs::SeroFs::handle`]
//! (exclusive access) or to a shared [`sero::fs::ConcurrentFs`] (what
//! the daemon's worker threads use). This example formats a file
//! system, stores a file, freezes it under a heated line, tampers
//! through the raw interface, watches the verify command answer with
//! the wire-stable `TAMPER-DETECTED` code — then hands the same file
//! system to concurrent callers and lets the combiner merge their
//! reads.
//!
//! Run with: `cargo run --example quickstart`

use sero::fs::fs::{FsConfig, SeroFs};
use sero::fs::ConcurrentFs;
use sero::proto::{ErrorCode, Request, Response, WireClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== SERO quickstart ==\n");

    // A file system over a device with 256 blocks of 512 bytes on a
    // 100 nm-pitch medium.
    let mut fs = SeroFs::format(
        sero::core::device::SeroDevice::with_blocks(256),
        FsConfig::default(),
    )?;
    println!(
        "device: {} blocks, {:.1} Gbit/cm^2 medium",
        fs.device().block_count(),
        fs.device()
            .probe()
            .medium()
            .geometry()
            .areal_density_gbit_per_cm2()
    );

    // 1. Ordinary WMRM use: create and rewrite freely.
    let create = Request::Create {
        name: "ledger.csv".into(),
        data: vec![7u8; 1500],
        class: WireClass::Archival,
    };
    let Response::Created { ino } = fs.handle(create) else {
        panic!("create refused")
    };
    println!("created ledger.csv as inode {ino} (rewritable WMRM phase)");

    // 2. Freeze history: heat the file's line, sealing metadata and a
    // timestamp into its hash block.
    let heat = Request::Heat {
        name: "ledger.csv".into(),
        metadata: b"quarter-end freeze".to_vec(),
        timestamp: 1_199_145_600,
    };
    let Response::Heated { line } = fs.handle(heat) else {
        panic!("heat refused")
    };
    println!("heated line: start={} order={}", line.start, line.order);

    // 3. Data stays readable; rewrites are refused with a wire code.
    let read = Request::Read {
        name: "ledger.csv".into(),
    };
    let Response::Data { bytes } = fs.handle(read.clone()) else {
        panic!("read refused")
    };
    println!("data still readable ({} bytes)", bytes.len());
    let rewrite = Request::Write {
        name: "ledger.csv".into(),
        data: vec![0u8; 8],
        class: WireClass::Archival,
    };
    let Response::Error(e) = fs.handle(rewrite) else {
        panic!("rewrite of a heated file must be refused")
    };
    println!("rewrite refused: {e}");

    // 4. Verification passes…
    let verify = Request::Verify {
        name: "ledger.csv".into(),
    };
    let Response::Verified(verdict) = fs.handle(verify.clone()) else {
        panic!("verify refused")
    };
    println!("verify: {verdict:?}");

    // 5. …until someone rewrites history through the §5 raw interface
    // (the command a production `sero-server` only serves under
    // `--allow-raw`).
    let tamper = Request::RawWrite {
        pba: line.start + 2,
        data: vec![0xEE; 512],
    };
    let Response::RawWritten = fs.handle(tamper) else {
        panic!("raw write refused")
    };
    let Response::Error(evidence) = fs.handle(verify) else {
        panic!("tampering missed")
    };
    assert_eq!(evidence.code, ErrorCode::TamperDetected);
    println!(
        "\nafter raw rewrite of block {}:\n{}",
        line.start + 2,
        evidence.detail
    );

    // 6. Simulated-time and capacity accounting, over the same door.
    let Response::FleetStatus { members } = fs.handle(Request::FleetStatus) else {
        panic!("fleet status refused")
    };
    let m = &members[0];
    println!(
        "device time: {} ns | blocks: {} total, {} read-only | heated lines: {} ({} flagged)",
        m.device_clock_ns, m.total_blocks, m.read_only_blocks, m.heated_lines, m.flagged_lines
    );

    // 7. The concurrent front end: the same door, shared by threads.
    // `ConcurrentFs` wraps the file system in a flat combiner — callers
    // stage requests, one thread drains everyone's at once, and the
    // admission scheduler merges queued reads into elevator sweeps
    // (docs/ARCHITECTURE.md has the full concurrency model). This is
    // exactly what `sero-server` workers share.
    let cfs = ConcurrentFs::new(fs);
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cfs = cfs.clone();
            std::thread::spawn(move || {
                for _ in 0..8 {
                    let Response::Data { bytes } = cfs.handle(Request::Read {
                        name: "ledger.csv".into(),
                    }) else {
                        panic!("concurrent read refused")
                    };
                    assert_eq!(bytes.len(), 1500);
                }
            })
        })
        .collect();
    for r in readers {
        r.join().expect("reader thread");
    }
    let stats = cfs.admission_stats();
    println!(
        "concurrent phase: 4 threads x 8 reads served; {} reads merged into sweeps",
        stats.reads_merged
    );
    Ok(())
}
