//! Quickstart: the SERO device in five minutes.
//!
//! Builds a simulated patterned-media device, stores data, heats a line,
//! demonstrates tamper detection, and prints the device's simulated-time
//! accounting.
//!
//! Run with: `cargo run --example quickstart`

use sero::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== SERO quickstart ==\n");

    // A device with 64 blocks of 512 bytes on a 100 nm-pitch medium.
    let mut dev = SeroDevice::with_blocks(64);
    println!(
        "device: {} blocks, {:.1} Gbit/cm^2 medium",
        dev.block_count(),
        dev.probe().medium().geometry().areal_density_gbit_per_cm2()
    );

    // 1. Ordinary WMRM use: write and rewrite freely.
    dev.write_block(9, &[1u8; 512])?;
    dev.write_block(9, &[2u8; 512])?;
    println!(
        "block 9 rewritten freely (WMRM phase), reads {:?}…",
        &dev.read_block(9)?[..4]
    );

    // 2. Freeze history: heat a line of 8 blocks (1 hash + 7 data).
    let line = Line::new(8, 3)?;
    for pba in line.data_blocks() {
        dev.write_block(pba, &[pba as u8; 512])?;
    }
    let payload = dev.heat_line(line, b"quarter-end freeze".to_vec(), 1_199_145_600)?;
    println!("\nheated {line}");
    println!("  digest   : {}", payload.digest());
    println!(
        "  metadata : {:?}",
        String::from_utf8_lossy(payload.metadata())
    );

    // 3. Data stays readable, the line is now read-only.
    assert_eq!(dev.read_block(9)?, [9u8; 512]);
    assert!(dev.write_block(9, &[0u8; 512]).is_err());
    println!("  data blocks still readable; writes refused");

    // 4. Verification passes…
    assert!(dev.verify_line(line)?.is_intact());
    println!("  verify: intact");

    // 5. …until someone rewrites history through the raw interface.
    dev.probe_mut().mws(10, &[0xEE; 512])?;
    match dev.verify_line(line)? {
        VerifyOutcome::Tampered(report) => println!("\nafter raw rewrite of block 10:\n{report}"),
        other => panic!("tampering missed: {other:?}"),
    }

    // 6. Simulated-time accounting.
    let c = dev.probe().counters();
    println!(
        "device time: {} | bit ops: {} mrb, {} mwb, {} ewb, {} erb",
        dev.probe().clock(),
        c.mrb,
        c.mwb,
        c.ewb,
        c.erb
    );
    Ok(())
}
