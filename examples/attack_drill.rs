//! The complete §5 attack battery, as a drill.
//!
//! Runs every attack from the paper's security analysis against a fresh
//! scenario (a heated "incriminating ledger") and prints a
//! paper-vs-observed table.
//!
//! Run with: `cargo run --example attack_drill`

use sero::attack::attacks::{run_all, Outcome};

fn main() {
    println!("== §5 attack drill: a dishonest CEO vs the SERO device ==\n");
    println!(
        "{:<16} {:<10} {:<10} {:<4} detail",
        "attack", "expected", "observed", "ok?"
    );
    println!("{}", "-".repeat(100));

    let reports = run_all();
    let mut matches = 0;
    for report in &reports {
        println!(
            "{:<16} {:<10} {:<10} {:<4} {}",
            report.kind.to_string(),
            report.expected.to_string(),
            report.observed.to_string(),
            if report.matches_paper() { "yes" } else { "NO" },
            report.detail
        );
        matches += report.matches_paper() as usize;
    }

    println!("{}", "-".repeat(100));
    println!(
        "{matches}/{} attacks behave exactly as §5 predicts",
        reports.len()
    );
    let undetected = reports
        .iter()
        .filter(|r| r.observed == Outcome::Undetected)
        .count();
    println!("undetected attacks: {undetected}");

    println!("\npaper quotes:");
    for report in &reports {
        println!("  [{}] \"{}\"", report.kind, report.kind.paper_quote());
    }
    assert_eq!(undetected, 0, "an attack escaped detection!");
}
