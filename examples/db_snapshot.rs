//! Database snapshots through the Venti archival store.
//!
//! §1 of the paper: "most data bases support a snapshot operation that
//! freezes the contents of the data base, for instance for auditing
//! purposes … If the snapshot is written to a disk, the attacker will
//! find it as easy to tamper with the snapshot as it is easy to tamper
//! with the live database." Here snapshots go to a content-addressed
//! store whose roots are *sealed* in heated lines — cheap daily snapshots
//! with deduplication, and a tamper-evident root per day (§4.2).
//!
//! Run with: `cargo run --example db_snapshot`

use rand::{Rng, SeedableRng};
use sero::core::device::SeroDevice;
use sero::venti::Venti;

const PAGES: usize = 24;
const PAGE: usize = 512;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== daily database snapshots, sealed on SERO ==\n");

    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let mut venti = Venti::new(SeroDevice::with_blocks(2048));

    // The "database": PAGES pages of PAGE bytes.
    let mut db: Vec<u8> = vec![0u8; PAGES * PAGE];
    rng.fill(&mut db[..]);

    let mut seals = Vec::new();
    for day in 0..5 {
        // The working day: a few pages change.
        for _ in 0..3 {
            let p = rng.random_range(0..PAGES);
            rng.fill(&mut db[p * PAGE..(p + 1) * PAGE]);
        }
        let before = venti.chunk_count();
        let object = venti.store_object(&db)?;
        let line = venti.seal(
            &object,
            format!("day-{day}").into_bytes(),
            1_199_145_600 + day,
        )?;
        println!(
            "day {day}: snapshot root {}…, {} new chunks (dedup), sealed at {line}",
            &object.root.to_hex()[..16],
            venti.chunk_count() - before,
        );
        seals.push((day, line, object));
    }

    // Verify the whole history.
    println!("\nverifying all {} sealed snapshots:", seals.len());
    for (day, line, _) in &seals {
        let verdict = venti.verify_seal(*line)?;
        println!(
            "  day {day}: {}",
            if verdict.is_intact {
                "intact"
            } else {
                "TAMPERED"
            }
        );
    }

    // The dishonest CEO rewrites one page that day 2 depended on…
    let (_, line2, obj2) = seals[2];
    let chunk_digest = {
        // Address of the first page as stored.
        let mut first = [0u8; PAGE];
        let snapshot2 = venti.load_object(&obj2)?;
        first.copy_from_slice(&snapshot2[..PAGE]);
        sero::crypto::sha256(&first)
    };
    // …by locating and overwriting the chunk through the raw device.
    let pba = (0..venti.device().block_count())
        .find(|&pba| {
            venti
                .device()
                .probe()
                .clone()
                .mrs(pba)
                .map(|s| sero::crypto::sha256(&s.data) == chunk_digest)
                .unwrap_or(false)
        })
        .expect("chunk on device");
    venti.device_mut().probe_mut().mws(pba, &[0xBA; PAGE])?;
    println!("\nCEO rewrote chunk at block {pba}");

    let verdict = venti.verify_seal(line2)?;
    println!(
        "day 2 seal now: {} ({})",
        if verdict.is_intact {
            "intact"
        } else {
            "TAMPERED"
        },
        verdict.findings.first().map(String::as_str).unwrap_or("-")
    );
    assert!(!verdict.is_intact);
    Ok(())
}
