//! Interleaving properties of the concurrent foreground core (PR 7).
//!
//! The admission scheduler may merge queued reads into elevator sweeps
//! and a budgeted scrub pass may tick between any two foreground
//! batches, but none of that is allowed to show: whatever chunking of
//! the same request script the combiner sees, every response and the
//! final line registry — the tamper evidence — must be byte-identical
//! to the serialized (depth-1) schedule, and to a plain `SeroFs`
//! handling the script one request at a time.
//!
//! The lock-ordering edge case gets its own property: a foreground
//! writer pinning a heated line (a held [`LineLockTable`] write guard)
//! while a budgeted scrub pass runs must *defer* that line — never
//! deadlock, never record a partial digest — and the pass must still
//! converge to the exclusive pass's evidence once the writer lets go.
//!
//! CI runs these once under `--test-threads=1` (determinism smoke) and
//! once normally alongside the multi-threaded stress test below.

use proptest::prelude::*;
use sero::core::device::{LineRecord, SeroDevice};
use sero::core::line::Line;
use sero::fs::concurrent::ConcurrentFs;
use sero::fs::fs::{FsConfig, SeroFs};
use sero::proto::{ErrorCode, Request, Response, WireClass, WireSchedState};

/// Hot single-block files the scripts read and rewrite.
const HOT: usize = 20;
/// Archival files heated into lines for the scrub side.
const ARCH: usize = 6;
const DEVICE_BLOCKS: u64 = 512;

fn hot_name(i: usize) -> String {
    format!("conc-{i:02}")
}

fn arch_name(i: usize) -> String {
    format!("seal-{i}")
}

/// A deterministic population: `HOT` normal files plus `ARCH` archival
/// files, all heated, with `victims` tampered through the raw probe.
/// Identical calls build byte-identical file systems, which is what
/// lets the twins below be compared record for record.
fn build_fs(victims: &[usize]) -> (SeroFs, Vec<Line>) {
    let mut fs = SeroFs::format(SeroDevice::with_blocks(DEVICE_BLOCKS), FsConfig::default())
        .expect("format succeeds");
    for i in 0..HOT {
        let resp = fs.handle(Request::Create {
            name: hot_name(i),
            data: vec![i as u8 + 1; 300],
            class: WireClass::Normal,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
    }
    let mut lines = Vec::new();
    for i in 0..ARCH {
        let resp = fs.handle(Request::Create {
            name: arch_name(i),
            data: vec![0x60 | i as u8; 1100],
            class: WireClass::Archival,
        });
        assert!(matches!(resp, Response::Created { .. }), "{resp:?}");
        match fs.handle(Request::Heat {
            name: arch_name(i),
            metadata: b"concurrency-props".to_vec(),
            timestamp: 1_199_145_600 + i as u64,
        }) {
            Response::Heated { line } => lines.push(line.to_line().expect("wire line")),
            other => panic!("heat refused: {other:?}"),
        }
    }
    for &v in victims {
        fs.device_mut()
            .probe_mut()
            .mws(lines[v % ARCH].start() + 1, &[0xEE; 512])
            .expect("raw tamper");
    }
    (fs, lines)
}

/// Builds the request script from the proptest-drawn opcodes. Victims
/// are only verified *after* the pass completes (see `final_verdicts`),
/// so mid-script verdicts cannot depend on how far the pass happened to
/// get — scrub pacing is schedule-dependent, the evidence is not.
fn script_requests(script: &[(u8, usize)]) -> Vec<Request> {
    script
        .iter()
        .map(|&(kind, idx)| match kind {
            0..=2 => Request::Read {
                name: hot_name(idx % HOT),
            },
            3 => Request::Verify {
                name: arch_name(idx % (ARCH / 2)),
            },
            4 => Request::Write {
                name: hot_name(idx % HOT),
                data: vec![kind ^ idx as u8; 200 + idx % 90],
                class: WireClass::Normal,
            },
            _ => Request::ScrubTick,
        })
        .collect()
}

fn start_scrub(resp: Response) {
    match resp {
        Response::ScrubStarted { pending, .. } => assert_eq!(pending as usize, ARCH),
        other => panic!("scrub start refused: {other:?}"),
    }
}

/// Ticks until the pass completes; returns (verified, tampered).
fn drain_scrub(mut tick: impl FnMut() -> Response) -> (u64, u64) {
    for _ in 0..20_000 {
        match tick() {
            Response::ScrubTicked { status, .. } => {
                if status.state == WireSchedState::Complete {
                    return (status.verified, status.tampered);
                }
            }
            other => panic!("scrub tick refused: {other:?}"),
        }
    }
    panic!("budgeted pass failed to converge");
}

fn registry(fs: &SeroFs) -> Vec<LineRecord> {
    let mut records: Vec<LineRecord> = fs.device().heated_lines().cloned().collect();
    records.sort_by_key(|r| r.line.start());
    records
}

fn dedupe(raw: &[usize]) -> Vec<usize> {
    let set: std::collections::BTreeSet<usize> = raw.iter().map(|v| v % ARCH).collect();
    set.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any chunking of the same script — reads merged into sweeps,
    /// writes and scrub ticks interleaved wherever the draws put them —
    /// answers byte-identically to the serialized schedule, and both
    /// leave the registry byte-identical to a bare `SeroFs` replay.
    #[test]
    fn interleavings_match_the_serialized_schedule(
        script in proptest::collection::vec((0u8..6, 0usize..HOT), 12..48),
        chunks in proptest::collection::vec(1usize..9, 4..16),
        victims in proptest::collection::vec(0usize..ARCH, 0..3),
        budget_us in 120u64..600,
    ) {
        let requests = script_requests(&script);
        let start = Request::ScrubStart {
            budget_ns: budget_us * 1_000,
            quantum_ns: 0,
            incremental: false,
        };

        // Twin 1: the combiner sees the script in proptest-drawn chunks.
        let chunked = ConcurrentFs::new(build_fs(&victims).0);
        start_scrub(chunked.handle(start.clone()));
        let mut chunked_responses = Vec::new();
        let mut cursor = 0usize;
        for &size in chunks.iter().cycle() {
            if cursor >= requests.len() {
                break;
            }
            let window = requests[cursor..(cursor + size).min(requests.len())].to_vec();
            cursor += window.len();
            chunked_responses.extend(chunked.handle_batch(window));
        }
        let chunked_pass = drain_scrub(|| chunked.handle(Request::ScrubTick));

        // Twin 2: the serialized schedule — same requests, one per batch.
        let serial = ConcurrentFs::new(build_fs(&victims).0);
        start_scrub(serial.handle(start.clone()));
        let serial_responses: Vec<Response> =
            requests.iter().map(|r| serial.handle(r.clone())).collect();
        let serial_pass = drain_scrub(|| serial.handle(Request::ScrubTick));

        // Twin 3: no combiner at all — a bare SeroFs replay.
        let (mut bare, _) = build_fs(&victims);
        start_scrub(bare.handle(start));
        for request in &requests {
            bare.handle(request.clone());
        }
        let bare_pass = drain_scrub(|| bare.handle(Request::ScrubTick));

        // Scrub pacing is schedule-dependent (merged sweeps park the
        // sled elsewhere), so ScrubTicked slice responses may differ;
        // everything else must not.
        for (i, request) in requests.iter().enumerate() {
            if !matches!(request, Request::ScrubTick) {
                prop_assert_eq!(
                    &chunked_responses[i], &serial_responses[i],
                    "response {} to {:?} changed under chunking", i, request
                );
            }
        }
        let expected_tampered = dedupe(&victims).len() as u64;
        prop_assert_eq!(chunked_pass, (ARCH as u64, expected_tampered));
        prop_assert_eq!(serial_pass, (ARCH as u64, expected_tampered));
        prop_assert_eq!(bare_pass, (ARCH as u64, expected_tampered));

        // Post-completion verdicts and the registry itself: identical
        // across all three schedules, file by file, record by record.
        fn verdicts(mut handle: impl FnMut(Request) -> Response) -> Vec<Response> {
            (0..ARCH)
                .map(|i| handle(Request::Verify { name: arch_name(i) }))
                .collect()
        }
        let chunked_verdicts = verdicts(|r| chunked.handle(r));
        let serial_verdicts = verdicts(|r| serial.handle(r));
        let bare_verdicts = verdicts(|r| bare.handle(r));
        prop_assert_eq!(&chunked_verdicts, &serial_verdicts);
        prop_assert_eq!(&chunked_verdicts, &bare_verdicts);
        let tampered_verdicts = chunked_verdicts
            .iter()
            .filter(|v| matches!(v, Response::Error(e) if e.code == ErrorCode::TamperDetected))
            .count() as u64;
        prop_assert_eq!(tampered_verdicts, expected_tampered);

        let chunked_registry = chunked.with_fs(|fs| registry(fs));
        prop_assert_eq!(&chunked_registry, &serial.with_fs(|fs| registry(fs)));
        prop_assert_eq!(&chunked_registry, &registry(&bare));
    }

    /// A foreground writer pinning heated lines while a budgeted pass
    /// runs: the pass defers every pinned line (no deadlock, no partial
    /// digest — a pinned line's record is untouched until the guard
    /// drops) and still converges to the exclusive pass's evidence.
    #[test]
    fn pinned_lines_defer_cleanly_and_converge(
        pinned_raw in proptest::collection::vec(0usize..ARCH, 1..ARCH),
        victim in 0usize..ARCH,
        held_ticks in 1usize..6,
        budget_us in 120u64..600,
    ) {
        let pinned = dedupe(&pinned_raw);
        let (fs, lines) = build_fs(&[victim]);
        let before = registry(&fs);
        let cfs = ConcurrentFs::new(fs);
        start_scrub(cfs.handle(Request::ScrubStart {
            budget_ns: budget_us * 1_000,
            quantum_ns: 0,
            incremental: false,
        }));

        {
            let _guards: Vec<_> = pinned
                .iter()
                .map(|&p| cfs.line_locks().write(lines[p].start()))
                .collect();
            // Give the pass ample ticks to cover every unpinned line;
            // each tick must return (the combiner defers, it never
            // blocks on a held line) and must leave every pinned record
            // exactly as it was — verified in full later, or not at all.
            for _ in 0..held_ticks * 50 {
                match cfs.handle(Request::ScrubTick) {
                    Response::ScrubTicked { status, .. } => {
                        prop_assert!(
                            (status.verified as usize) <= ARCH - pinned.len(),
                            "a pinned line was scrubbed while its writer held it"
                        );
                        prop_assert_ne!(status.state, WireSchedState::Complete);
                    }
                    other => panic!("scrub tick refused: {other:?}"),
                }
            }
            let held = cfs.with_fs(|fs| registry(fs));
            for &p in &pinned {
                let start = lines[p].start();
                let untouched = before.iter().find(|r| r.line.start() == start).unwrap();
                let current = held.iter().find(|r| r.line.start() == start).unwrap();
                prop_assert_eq!(untouched, current, "partial digest on a pinned line");
            }
        }

        // Guards dropped: the pass finishes and the evidence matches the
        // exclusive (never-contended) pass on an identical twin.
        let (verified, tampered) = drain_scrub(|| cfs.handle(Request::ScrubTick));
        prop_assert_eq!((verified, tampered), (ARCH as u64, 1));

        let (mut twin, _) = build_fs(&[victim]);
        start_scrub(twin.handle(Request::ScrubStart {
            budget_ns: budget_us * 1_000,
            quantum_ns: 0,
            incremental: false,
        }));
        let twin_pass = drain_scrub(|| twin.handle(Request::ScrubTick));
        prop_assert_eq!(twin_pass, (ARCH as u64, 1));
        prop_assert_eq!(&cfs.with_fs(|fs| registry(fs)), &registry(&twin));
    }
}

/// Real threads, real contention: readers and writers hammer the
/// combiner while the main thread drives a budgeted pass over a
/// population with one planted tamper. Nothing may deadlock, every
/// response must be well-formed, and the evidence must surface.
#[test]
fn stress_threads_and_scrub_share_the_device() {
    let victim = 2usize;
    let (fs, _) = build_fs(&[victim]);
    let cfs = ConcurrentFs::new(fs);
    start_scrub(cfs.handle(Request::ScrubStart {
        budget_ns: 250_000,
        quantum_ns: 0,
        incremental: false,
    }));

    let workers: Vec<_> = (0..6)
        .map(|t| {
            let cfs = cfs.clone();
            std::thread::spawn(move || {
                for i in 0..40 {
                    let slot = (t * 7 + i * 3) % HOT;
                    if t % 3 == 0 {
                        let resp = cfs.handle(Request::Write {
                            name: hot_name(slot),
                            data: vec![(t * 40 + i) as u8; 180],
                            class: WireClass::Normal,
                        });
                        assert!(matches!(resp, Response::Written), "{resp:?}");
                    } else {
                        let resp = cfs.handle(Request::Read {
                            name: hot_name(slot),
                        });
                        assert!(matches!(resp, Response::Data { .. }), "{resp:?}");
                    }
                }
            })
        })
        .collect();

    let (verified, tampered) = drain_scrub(|| cfs.handle(Request::ScrubTick));
    for worker in workers {
        worker.join().expect("worker panicked");
    }
    assert_eq!((verified, tampered), (ARCH as u64, 1));

    for i in 0..ARCH {
        let resp = cfs.handle(Request::Verify { name: arch_name(i) });
        if i == victim {
            assert!(
                matches!(&resp, Response::Error(e) if e.code == ErrorCode::TamperDetected),
                "planted evidence missing: {resp:?}"
            );
        } else {
            assert!(matches!(resp, Response::Verified(_)), "{resp:?}");
        }
    }
}
