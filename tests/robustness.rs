//! Robustness integration tests: degraded channels, detection statistics,
//! and never-wrong-silently guarantees across the stack.

use sero::core::device::SeroDevice;
use sero::core::journal::{InstructionJournal, JournalEntry};
use sero::core::line::Line;
use sero::media::mfm::ReadChannel;
use sero::probe::device::{DotProbe, ProbeDevice};

/// A moderately degraded channel (14 dB) must still deliver exact sector
/// data — the ECC budget exists precisely for this.
#[test]
fn noisy_channel_reads_stay_exact() {
    let channel = ReadChannel::new(1.0, 0.2, 0.08, 0.5); // 14 dB
    let mut dev = ProbeDevice::builder()
        .blocks(8)
        .channel(channel)
        .seed(77)
        .build();
    let data = {
        let mut d = [0u8; 512];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(41).wrapping_add(3);
        }
        d
    };
    dev.mws(2, &data).unwrap();
    let mut ok = 0;
    for _ in 0..40 {
        // A loud failure is acceptable, silence is not.
        if let Ok(sector) = dev.mrs(2) {
            assert_eq!(sector.data, data, "ECC must never hand back wrong bytes");
            ok += 1;
        }
    }
    assert!(ok >= 36, "14 dB channel should mostly succeed: {ok}/40");
}

/// At a hopeless SNR the device must fail *loudly*: every read either
/// returns the exact data or an error — never silently corrupted bytes.
#[test]
fn terrible_channel_never_lies() {
    let channel = ReadChannel::new(1.0, 0.45, 0.08, 0.5); // ~7 dB
    let mut dev = ProbeDevice::builder()
        .blocks(4)
        .channel(channel)
        .seed(99)
        .build();
    let data = [0xC3u8; 512];
    dev.mws(1, &data).unwrap();
    for _ in 0..60 {
        if let Ok(sector) = dev.mrs(1) {
            assert_eq!(sector.data, data, "CRC+RS let a corrupted sector through");
        }
    }
}

/// erb classification statistics on the default channel: both error
/// directions must be rare.
#[test]
fn erb_statistics() {
    let mut dev = ProbeDevice::builder().blocks(4).seed(5).build();
    dev.mwb(10, true);
    dev.ewb(20);

    let mut false_heated = 0;
    let mut missed_heated = 0;
    for _ in 0..300 {
        if dev.erb(10).is_heated() {
            false_heated += 1;
        }
        if !dev.erb(20).is_heated() {
            missed_heated += 1;
        }
    }
    assert!(
        false_heated <= 3,
        "intact dot flagged heated {false_heated}/300"
    );
    assert!(missed_heated <= 3, "heated dot missed {missed_heated}/300");
    // And erb left the magnetic bit in place every time.
    assert!(matches!(
        dev.erb(10),
        DotProbe::Unheated { bit: true } | DotProbe::Heated
    ));
}

/// The journal replays exactly what was recorded, across several sealed
/// batches with varied entry sizes.
#[test]
fn journal_multi_batch_round_trip() {
    let mut dev = SeroDevice::with_blocks(128);
    let mut journal = InstructionJournal::new(64, 64, 2).unwrap();
    let mut written = Vec::new();
    for batch in 0..3 {
        for i in 0..7 {
            let entry = JournalEntry::new(
                batch * 100 + i,
                &format!("host-{}", i % 3),
                &"x".repeat(10 + (i as usize * 23) % 150),
            );
            written.push(entry.clone());
            journal.record(&mut dev, entry).unwrap();
        }
        journal.seal(&mut dev, batch * 100 + 99).unwrap();
    }
    assert_eq!(journal.sealed_lines().len(), 3);
    let replayed = InstructionJournal::replay(&mut dev, 64, 64).unwrap();
    assert_eq!(replayed, written);
    let (intact, findings) = journal.verify_all(&mut dev).unwrap();
    assert_eq!(intact, 3);
    assert!(findings.is_empty());
}

/// Heat lines of every supported small order on one device and verify the
/// registry sees exactly that population after recovery.
#[test]
fn mixed_order_population_recovers() {
    let mut dev = SeroDevice::with_blocks(64);
    for pba in 0..64 {
        dev.write_block(pba, &[pba as u8; 512]).unwrap();
    }
    let lines = [
        Line::new(0, 1).unwrap(),
        Line::new(4, 2).unwrap(),
        Line::new(8, 3).unwrap(),
        Line::new(16, 4).unwrap(),
        Line::new(32, 1).unwrap(),
    ];
    for (i, &line) in lines.iter().enumerate() {
        dev.heat_line(line, vec![i as u8], i as u64).unwrap();
    }
    let scan = dev.rebuild_registry().unwrap();
    assert_eq!(scan.lines_found, lines.len());
    assert!(scan.overlapping_lines.is_empty());
    for &line in &lines {
        assert!(dev.verify_line(line).unwrap().is_intact());
    }
    // Unheated space still works.
    assert!(dev.write_block(34, &[7u8; 512]).is_ok());
}

/// Elliptic-dot devices run the whole SERO protocol too — shape is
/// orthogonal to the logical stack.
#[test]
fn elliptic_device_full_protocol() {
    let probe = ProbeDevice::builder()
        .blocks(16)
        .pitch_nm(150.0)
        .elliptic_dots()
        .build();
    let mut dev = SeroDevice::new(probe);
    let line = Line::new(8, 2).unwrap();
    for pba in line.data_blocks() {
        dev.write_block(pba, &[0x42; 512]).unwrap();
    }
    dev.heat_line(line, b"elliptic".to_vec(), 1).unwrap();
    assert!(dev.verify_line(line).unwrap().is_intact());
    dev.probe_mut().mws(9, &[0u8; 512]).unwrap();
    assert!(dev.verify_line(line).unwrap().is_tampered());
}
