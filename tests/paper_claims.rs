//! Integration tests pinning every quantitative claim of the paper to the
//! implementation — the assertions behind EXPERIMENTS.md.

use sero::core::prelude::*;
use sero::media::film::CoPtFilm;
use sero::media::geometry::Geometry;
use sero::media::torque::TorqueMagnetometer;
use sero::media::xrd::Diffractometer;
use sero::probe::device::ProbeDevice;

/// §6: "a period of 100 nm … will give a capacity of 10 Gbit/cm²
/// (= 65 Gbit/inch²)".
#[test]
fn claim_capacity_ladder() {
    let g = Geometry::new(16, 16, 100.0);
    assert!((g.areal_density_gbit_per_cm2() - 10.0).abs() < 1e-9);
    assert_eq!(g.areal_density_gbit_per_inch2().round(), 65.0);
}

/// Figure 7: K ≈ 80 kJ/m³, flat to 500 °C, collapsing above 600 °C —
/// measured through the torque pipeline, not read off the model.
#[test]
fn claim_figure7_anisotropy() {
    let tm = TorqueMagnetometer::paper_setup();
    let k = |t: f64| tm.measure_k(&CoPtFilm::as_grown().annealed(t));
    let as_grown = tm.measure_k(&CoPtFilm::as_grown());
    assert!((as_grown - 80.0).abs() < 8.0, "as-grown K = {as_grown}");
    assert!(k(500.0) > 70.0);
    assert!(k(700.0) < 10.0);
}

/// Figure 8: superlattice peak near 8° as grown, gone after 700 °C.
#[test]
fn claim_figure8_low_angle_xrd() {
    let xrd = Diffractometer::cu_kalpha();
    let grown = xrd.low_angle_scan(&CoPtFilm::as_grown());
    let annealed = xrd.low_angle_scan(&CoPtFilm::as_grown().annealed(700.0));
    let (angle, _) = grown.strongest_peak_in(5.5, 9.5).unwrap();
    assert!((angle - 8.0).abs() < 1.0, "peak at {angle}°");
    assert!(grown.peak_contrast(5.5, 9.5) > 5.0);
    assert!(annealed.peak_contrast(5.5, 9.5) < 1.5);
}

/// Figure 9: fcc Co–Pt (111) at 41.7° after annealing; perpendicular
/// anisotropy not restored by the crystal phase.
#[test]
fn claim_figure9_high_angle_xrd() {
    let xrd = Diffractometer::cu_kalpha();
    let annealed_film = CoPtFilm::as_grown().annealed(700.0);
    let annealed = xrd.high_angle_scan(&annealed_film);
    let (angle, _) = annealed.strongest_peak_in(40.0, 43.5).unwrap();
    assert!((angle - 41.7).abs() < 0.3, "peak at {angle}°");
    assert!(annealed.peak_contrast(40.0, 43.5) > 5.0);
    assert!(!annealed_film.is_perpendicular());
}

/// §3: "The erb operation is at least 5 times slower than mrb, and ewb is
/// also slower than mwb."
#[test]
fn claim_timing_relations() {
    let mut dev = ProbeDevice::builder().blocks(4).build();
    dev.mwb(0, true);

    let t0 = dev.clock().elapsed_ns();
    dev.mrb(0);
    let t_mrb = dev.clock().elapsed_ns() - t0;

    let t0 = dev.clock().elapsed_ns();
    dev.erb(0);
    let t_erb = dev.clock().elapsed_ns() - t0;

    let t0 = dev.clock().elapsed_ns();
    dev.mwb(0, false);
    let t_mwb = dev.clock().elapsed_ns() - t0;

    let t0 = dev.clock().elapsed_ns();
    dev.ewb(1);
    let t_ewb = dev.clock().elapsed_ns() - t0;

    assert!(t_erb >= 5 * t_mrb, "erb {t_erb} vs 5x mrb {t_mrb}");
    assert!(t_ewb > t_mwb, "ewb {t_ewb} vs mwb {t_mwb}");
}

/// §3: the heat operation — hash of blocks *and their addresses*, written
/// Manchester-encoded in block 0, verified by read-back.
#[test]
fn claim_heat_operation_sequence() {
    let mut dev = SeroDevice::with_blocks(16);
    let line = Line::new(8, 3).unwrap();
    for pba in line.data_blocks() {
        dev.write_block(pba, &[pba as u8; 512]).unwrap();
    }
    let payload = dev.heat_line(line, vec![], 0).unwrap();
    // The digest is the hash of blocks + addresses; it must match a
    // recomputation and be bound to this exact line.
    assert_eq!(payload.line(), line);
    let recomputed = dev.compute_line_digest(line).unwrap();
    assert_eq!(*payload.digest(), recomputed);
    // Manchester: 256-bit digest occupies 512 dots among the written cells.
    assert!(dev.verify_line(line).unwrap().is_intact());
}

/// §8: "over the lifetime of the device, the read/write area gradually
/// shrinks, and the read-only area grows, until the device has become a
/// pure read-only device."
#[test]
fn claim_sero_lifecycle() {
    let mut dev = SeroDevice::with_blocks(32);
    for pba in 0..32 {
        dev.write_block(pba, &[1u8; 512]).unwrap();
    }
    let mut previous_wmrm = dev.stats().wmrm_blocks;
    for i in 0..4 {
        let line = Line::new(i * 8, 3).unwrap();
        dev.heat_line(line, vec![], i).unwrap();
        let now = dev.stats().wmrm_blocks;
        assert!(now < previous_wmrm);
        previous_wmrm = now;
    }
    // End of life: a pure RO device.
    assert_eq!(dev.stats().wmrm_blocks, 0);
    for pba in 0..32 {
        assert!(dev.write_block(pba, &[2u8; 512]).is_err());
    }
    // Everything still verifies.
    for i in 0..4 {
        assert!(dev
            .verify_line(Line::new(i * 8, 3).unwrap())
            .unwrap()
            .is_intact());
    }
}

/// Fleet-scale detection latency (the "Can't Touch This" metric: time
/// from tampering to the verified pass that surfaces it): with one
/// device of a fleet tampered *and* flagged, suspicion-first fleet
/// ordering verifies the flagged line strictly earlier — on the shared
/// fleet timeline — than round-robin ordering, because the flagged
/// device's pass is admitted and granted first instead of queueing
/// behind clean peers.
#[test]
fn claim_fleet_detection_latency() {
    use sero::core::fleet::{
        sync_clocks, FleetConfig, FleetOrdering, FleetScheduler, FleetSliceOutcome,
    };

    const VICTIM: usize = 2;
    let build_fleet = || -> (Vec<SeroDevice>, Line) {
        let mut devs: Vec<SeroDevice> = (0..3)
            .map(|_| {
                let mut dev = SeroDevice::with_blocks(256);
                for i in 0..8u64 {
                    let line = Line::new(i * 8, 3).unwrap();
                    for pba in line.data_blocks() {
                        dev.write_block(pba, &[pba as u8; 512]).unwrap();
                    }
                    dev.heat_line(line, vec![], i).unwrap();
                }
                dev
            })
            .collect();
        // Tamper a line on the victim behind the protocol's back, and
        // flag it through the protocol (a refused write).
        let tampered = Line::new(3 * 8, 3).unwrap();
        devs[VICTIM]
            .probe_mut()
            .mws(tampered.start() + 1, &[0xEE; 512])
            .unwrap();
        assert!(devs[VICTIM]
            .write_block(tampered.start() + 1, &[0u8; 512])
            .is_err());
        (devs, tampered)
    };

    // Device time (on the synchronized fleet wall) at which `ordering`
    // surfaces the tampered line's evidence.
    let detection_ns = |ordering: FleetOrdering| -> u128 {
        let (mut devs, tampered) = build_fleet();
        let config = FleetConfig {
            ordering,
            max_concurrent: 1, // serialize passes so ordering is the story
            ..FleetConfig::default()
        };
        let mut sched = FleetScheduler::start(devs.iter(), config).unwrap();
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000, "fleet failed to converge");
            for (i, outcome) in sched.tick(&mut devs).unwrap() {
                match outcome {
                    FleetSliceOutcome::Throttled { resume_at_ns } => {
                        let now = devs[i].probe().clock().elapsed_ns();
                        devs[i]
                            .probe_mut()
                            .advance_clock((resume_at_ns - now) as u64);
                    }
                    FleetSliceOutcome::Starved => {
                        devs[i].probe_mut().advance_clock(config.quantum_ns);
                    }
                    _ => {}
                }
            }
            // One fleet, one wall: idle peers' clocks advance too.
            sync_clocks(&mut devs);
            let found = sched.member_report(VICTIM).is_some_and(|r| {
                r.outcomes
                    .iter()
                    .any(|o| o.line == tampered && o.outcome.is_tampered())
            });
            if found {
                return devs[VICTIM].probe().clock().elapsed_ns();
            }
            assert!(!sched.is_complete(), "fleet drained without detecting");
        }
    };

    let suspicion_first = detection_ns(FleetOrdering::SuspicionFirst);
    let round_robin = detection_ns(FleetOrdering::RoundRobin);
    assert!(
        suspicion_first < round_robin,
        "suspicion-first must detect strictly earlier \
         ({suspicion_first} ns vs round-robin {round_robin} ns)"
    );
}

/// §3 addressing: heated blocks must not be misinterpreted as bad blocks.
#[test]
fn claim_heated_not_bad() {
    use sero::core::badblock::{classify_block, BlockClass};
    let mut dev = SeroDevice::with_blocks(8);
    for pba in 0..8 {
        dev.write_block(pba, &[3u8; 512]).unwrap();
    }
    dev.heat_line(Line::new(0, 2).unwrap(), vec![], 0).unwrap();
    match classify_block(&mut dev, 0).unwrap() {
        BlockClass::HeatedLineHead(_) => {}
        other => panic!("heated head misclassified as {other:?}"),
    }
}

/// §1/§2 flexibility claim: "All lines can be heated individually, thus
/// providing significant flexibility over WORM-based approaches."
#[test]
fn claim_incremental_heating() {
    let mut dev = SeroDevice::with_blocks(64);
    for pba in 0..64 {
        dev.write_block(pba, &[9u8; 512]).unwrap();
    }
    // Heat scattered lines of different orders, in arbitrary order.
    let lines = [
        Line::new(48, 2).unwrap(),
        Line::new(0, 3).unwrap(),
        Line::new(32, 1).unwrap(),
        Line::new(16, 4).unwrap(),
    ];
    for (i, &line) in lines.iter().enumerate() {
        dev.heat_line(line, vec![], i as u64).unwrap();
    }
    for &line in &lines {
        assert!(dev.verify_line(line).unwrap().is_intact());
    }
    // Blocks between lines stay writable.
    assert!(dev.write_block(34, &[1u8; 512]).is_ok());
}
