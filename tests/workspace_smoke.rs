//! Workspace smoke test: the `sero` facade re-exports resolve, and the
//! crate-doc quickstart runs.
//!
//! This test exists to catch wiring regressions — a crate dropped from the
//! facade, a renamed prelude, a broken re-export — before anything deeper
//! runs.

use sero::core::prelude::*;

/// Every layer of the stack is reachable through the facade under its
/// documented name: construct (or touch) one load-bearing item per
/// re-exported crate.
#[test]
fn facade_reexports_resolve() {
    let _geometry = sero::media::geometry::Geometry::new(4, 4, 100.0);
    let _probe = sero::probe::device::ProbeDevice::builder()
        .blocks(4)
        .build();
    let digest = sero::crypto::sha256(b"sero");
    assert_eq!(digest.as_bytes().len(), 32);
    let rs = sero::codec::rs::ReedSolomon::new(8).expect("valid nroots");
    assert_eq!(rs.nroots(), 8);
    let _venti = sero::venti::Venti::new(sero::core::device::SeroDevice::with_blocks(16));
    let _fossil = sero::fossil::FossilIndex::new(sero::core::device::SeroDevice::with_blocks(16));
    let _outcome: Option<sero::attack::attacks::Outcome> = None;
    fn _takes_workload<W: sero::workload::Workload>(_w: &W) {}
    fn _takes_fs(_fs: &sero::fs::fs::SeroFs) {}
}

/// The quickstart from the `sero` crate docs, run as an integration test
/// (it also runs as a doctest; this copy pins it even if doctests are
/// disabled in some CI configuration).
#[test]
fn quickstart_runs() -> Result<(), Box<dyn std::error::Error>> {
    let mut dev = SeroDevice::with_blocks(32);
    let line = Line::new(8, 2)?;
    for pba in line.data_blocks() {
        dev.write_block(pba, &[0xAB; 512])?;
    }
    dev.heat_line(line, b"frozen evidence".to_vec(), 1_199_145_600)?;
    assert!(dev.verify_line(line)?.is_intact());
    Ok(())
}

/// The quickstart's tamper-evidence claim holds end to end: bypassing the
/// protocol to rewrite frozen data is detected.
#[test]
fn quickstart_detects_tampering() -> Result<(), Box<dyn std::error::Error>> {
    let mut dev = SeroDevice::with_blocks(32);
    let line = Line::new(8, 2)?;
    for pba in line.data_blocks() {
        dev.write_block(pba, &[0xAB; 512])?;
    }
    dev.heat_line(line, b"frozen evidence".to_vec(), 1_199_145_600)?;
    dev.probe_mut()
        .mws(line.data_blocks().next().unwrap(), &[0u8; 512])?;
    assert!(dev.verify_line(line)?.is_tampered());
    Ok(())
}
