//! Property tests for the metadata index and its file-system integration.
//!
//! The LSM index is the authority for the namespace once a file system is
//! formatted with [`FsConfig::indexed`], so it gets the oracle treatment:
//! arbitrary op scripts against a `BTreeMap` reference model, arbitrary
//! WAL corruption with prefix-recovery guarantees, arbitrary segment
//! corruption with typed-error-or-correct-data guarantees, and the bloom
//! filters' zero-false-negative contract.

use proptest::prelude::*;
use sero::core::device::SeroDevice;
use sero::fs::alloc::WriteClass;
use sero::fs::error::FsError;
use sero::fs::fs::{FsConfig, SeroFs};
use sero::index::{IndexGeometry, MetaIndex, VecStore};
use std::collections::{BTreeMap, BTreeSet};

const INDEX_PAGES: u64 = 512;

fn pool_key(k: u8) -> Vec<u8> {
    format!("key-{:02}", k % 24).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any script of put/delete/get/flush/reopen against the index agrees
    /// with a `BTreeMap` oracle at every observation point.
    #[test]
    fn index_agrees_with_btreemap_oracle(
        ops in proptest::collection::vec(
            (0u8..10, any::<u8>(), 0usize..64, any::<u8>()),
            1..80,
        ),
    ) {
        let mut store = VecStore::new(INDEX_PAGES);
        let geom = IndexGeometry::for_pages(INDEX_PAGES).unwrap();
        let mut idx = MetaIndex::format(&mut store, geom).unwrap();
        let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for (tag, key, len, byte) in ops {
            let key = pool_key(key);
            match tag {
                0..=4 => {
                    let value = vec![byte; len];
                    idx.put(&mut store, &key, &value).unwrap();
                    oracle.insert(key, value);
                }
                5 | 6 => {
                    idx.delete(&mut store, &key).unwrap();
                    oracle.remove(&key);
                }
                7 => idx.flush(&mut store).unwrap(),
                8 => {
                    // Reopen from the bare store: the WAL tail plus the
                    // manifest must reconstruct the exact same state.
                    drop(idx);
                    let (reopened, report) = MetaIndex::open(&mut store, geom).unwrap();
                    prop_assert!(!report.torn_tail, "clean close left a torn tail");
                    idx = reopened;
                }
                _ => {
                    let got = idx.get(&mut store, &key).unwrap();
                    prop_assert_eq!(got.as_ref(), oracle.get(&key));
                }
            }
        }
        let scanned = idx.scan_all(&mut store).unwrap();
        prop_assert_eq!(
            scanned,
            oracle.into_iter().collect::<Vec<_>>(),
            "scan_all must equal the oracle, sorted"
        );
    }

    /// A flipped byte anywhere in the WAL region loses at most a suffix
    /// of the unflushed tail: reopening succeeds, everything the manifest
    /// references survives intact, and the WAL records that do apply are
    /// a strict prefix of the post-flush writes.
    #[test]
    fn torn_wal_tail_recovers_to_a_prefix(
        n_base in 1usize..20,
        n_post in 1usize..20,
        page_pick in any::<proptest::sample::Index>(),
        offset in 0usize..512,
    ) {
        let mut store = VecStore::new(INDEX_PAGES);
        let geom = IndexGeometry::for_pages(INDEX_PAGES).unwrap();
        let mut idx = MetaIndex::format(&mut store, geom).unwrap();
        for i in 0..n_base {
            idx.put(&mut store, format!("base-{i:02}").as_bytes(), &[0xB0, i as u8])
                .unwrap();
        }
        idx.flush(&mut store).unwrap();
        for i in 0..n_post {
            idx.put(&mut store, format!("post-{i:02}").as_bytes(), &[0xC0, i as u8])
                .unwrap();
        }
        drop(idx);

        // Corrupt one byte somewhere in the WAL region — a torn tail, a
        // damaged length field, a flipped CRC, or a miss into virgin pages.
        let wal_pages = (geom.heap_start() - geom.wal_start()) as usize;
        let page = geom.wal_start() + page_pick.index(wal_pages) as u64;
        store.corrupt_byte(page, offset);

        let (mut idx, _report) = MetaIndex::open(&mut store, geom)
            .expect("WAL corruption must never make the index unopenable");
        for i in 0..n_base {
            let got = idx.get(&mut store, format!("base-{i:02}").as_bytes()).unwrap();
            prop_assert_eq!(
                got,
                Some(vec![0xB0, i as u8]),
                "manifest-referenced data lost to a WAL flip"
            );
        }
        let mut applied = Vec::new();
        for i in 0..n_post {
            match idx.get(&mut store, format!("post-{i:02}").as_bytes()).unwrap() {
                Some(v) => {
                    prop_assert_eq!(v, vec![0xC0, i as u8]);
                    applied.push(true);
                }
                None => applied.push(false),
            }
        }
        let survivors = applied.iter().filter(|&&a| a).count();
        prop_assert!(
            applied[..survivors].iter().all(|&a| a),
            "recovered WAL records must be a prefix, got {applied:?}"
        );
    }

    /// A flipped byte in the segment heap yields either a typed error or
    /// the correct answer — never a panic, never silently wrong data.
    #[test]
    fn flipped_segment_byte_is_typed_or_harmless(
        n_keys in 8usize..60,
        page_pick in any::<proptest::sample::Index>(),
        offset in 0usize..512,
    ) {
        let mut store = VecStore::new(INDEX_PAGES);
        let geom = IndexGeometry::for_pages(INDEX_PAGES).unwrap();
        let mut idx = MetaIndex::format(&mut store, geom).unwrap();
        let mut oracle = BTreeMap::new();
        for i in 0..n_keys {
            let key = format!("seg-{i:03}").into_bytes();
            let value = vec![i as u8; 1 + i % 40];
            idx.put(&mut store, &key, &value).unwrap();
            oracle.insert(key, value);
        }
        idx.flush(&mut store).unwrap();
        prop_assert!(idx.segment_pages() > 0, "flush must seal a segment");
        drop(idx);

        let heap_pages = (INDEX_PAGES - geom.heap_start()) as usize;
        let page = geom.heap_start() + page_pick.index(heap_pages) as u64;
        store.corrupt_byte(page, offset);

        match MetaIndex::open(&mut store, geom) {
            Err(_) => {} // typed rejection at open is fine
            Ok((mut idx, _)) => {
                for (key, value) in &oracle {
                    match idx.get(&mut store, key) {
                        Err(_) => {} // typed rejection at read is fine
                        Ok(got) => prop_assert_eq!(
                            got.as_ref(),
                            Some(value),
                            "corrupt segment served wrong data for {:?}",
                            String::from_utf8_lossy(key)
                        ),
                    }
                }
            }
        }
    }

    /// Bloom filters never produce a false negative: every key ever put
    /// (deleted or not — tombstones are entries too) answers "maybe".
    #[test]
    fn blooms_have_zero_false_negatives(
        keys in proptest::collection::vec(any::<u8>(), 4..48),
        deletes in proptest::collection::vec(any::<u8>(), 0..12),
    ) {
        let mut store = VecStore::new(INDEX_PAGES);
        let geom = IndexGeometry::for_pages(INDEX_PAGES).unwrap();
        let mut idx = MetaIndex::format(&mut store, geom).unwrap();
        let inserted: BTreeSet<Vec<u8>> = keys.iter().map(|&k| pool_key(k)).collect();
        for key in &inserted {
            idx.put(&mut store, key, b"v").unwrap();
        }
        for &k in &deletes {
            idx.delete(&mut store, &pool_key(k)).unwrap();
        }
        idx.flush(&mut store).unwrap();
        for key in &inserted {
            prop_assert!(
                idx.bloom_may_contain(&mut store, key).unwrap(),
                "false negative for {:?}",
                String::from_utf8_lossy(key)
            );
        }
    }

    /// An indexed file system survives any op script with remounts in the
    /// middle: after every remount the namespace, contents, and heated
    /// flags match a reference model.
    #[test]
    fn indexed_fs_scripts_survive_remounts(
        ops in proptest::collection::vec(
            (0u8..12, any::<u8>(), 1usize..1200, any::<u8>()),
            1..32,
        ),
    ) {
        let mut fs =
            SeroFs::format(SeroDevice::with_blocks(2048), FsConfig::indexed()).unwrap();
        let mut files: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        let mut heated: BTreeSet<String> = BTreeSet::new();
        let mut clock = 1u64;

        for (tag, name, len, byte) in ops {
            let name = format!("f{}", name % 8);
            clock += 1;
            match tag {
                0..=3 => match files.entry(name.clone()) {
                    std::collections::btree_map::Entry::Occupied(_) => {
                        prop_assert!(matches!(
                            fs.create(&name, &[byte], WriteClass::Normal),
                            Err(FsError::Exists { .. })
                        ));
                    }
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        let data = vec![byte; len];
                        fs.create(&name, &data, WriteClass::Normal).unwrap();
                        slot.insert(data);
                    }
                },
                4..=6 => {
                    if heated.contains(&name) {
                        prop_assert!(matches!(
                            fs.write(&name, &[byte], WriteClass::Normal),
                            Err(FsError::ReadOnlyFile { .. })
                        ));
                    } else if files.contains_key(&name) {
                        let data = vec![byte ^ 0x55; len];
                        fs.write(&name, &data, WriteClass::Normal).unwrap();
                        files.insert(name, data);
                    }
                }
                7 | 8 => {
                    if files.contains_key(&name) && !heated.contains(&name) {
                        fs.remove(&name).unwrap();
                        files.remove(&name);
                    }
                }
                9 => {
                    // Heat sparingly: every heated line permanently
                    // freezes blocks on the simulated medium.
                    if files.contains_key(&name) && !heated.contains(&name) && heated.len() < 3 {
                        fs.heat(&name, vec![], clock).unwrap();
                        heated.insert(name);
                    }
                }
                _ => {
                    fs.sync().unwrap();
                    fs = SeroFs::mount(fs.into_device()).unwrap();
                    prop_assert!(fs.has_index());
                }
            }
        }

        fs.sync().unwrap();
        let mut fs = SeroFs::mount(fs.into_device()).unwrap();
        let names: Vec<String> = files.keys().cloned().collect();
        prop_assert_eq!(fs.list(), names);
        for (name, data) in &files {
            prop_assert_eq!(&fs.read(name).unwrap(), data, "contents of {}", name);
            let info = fs.stat(name).unwrap();
            prop_assert_eq!(
                info.heated.is_some(),
                heated.contains(name),
                "heated flag of {}",
                name
            );
        }
    }
}
