//! The fault-injection invariant, pinned over arbitrary schedules:
//! under any seeded [`FaultPlan`] — transient read/write faults, sled
//! stalls, dead blocks, stuck dots, bit rot — every device operation
//! returns either the **correct result** (byte-identical to a fault-free
//! twin) or a **typed error**, never silent corruption and never a
//! panic. Blocks whose faults outlast the retry budget land in
//! quarantine, and a quarantined block's registered line is always
//! flagged — so tamper evidence and scrub bookkeeping stay identical to
//! the twin *modulo* quarantined lines, which are loud by construction.
//!
//! The CI fault matrix reruns this file across fixed seeds via
//! `SERO_FAULT_SEED`, which offsets every fault-plan seed (the device
//! seeds stay put, so the same storage sees different weather).

use proptest::prelude::*;
use sero::core::device::{SeroDevice, SeroError};
use sero::core::faults::{FaultPlan, RetryPolicy};
use sero::core::line::Line;
use sero::core::scrub::{scrub_device, ScrubConfig};
use sero::core::tamper::VerifyOutcome;
use sero::probe::device::ProbeDevice;

const T0: u64 = 1_199_145_600;

/// CI matrix hook: every fault-plan seed is XORed with this offset.
fn fault_seed(base: u64) -> u64 {
    let offset = std::env::var("SERO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    base ^ offset
}

fn pattern(pba: u64, salt: u8) -> [u8; 512] {
    let mut s = [0u8; 512];
    for (j, b) in s.iter_mut().enumerate() {
        *b = (pba as u8).wrapping_mul(151).wrapping_add(j as u8) ^ salt;
    }
    s
}

/// A device with `slots` heated order-3 lines full of `pattern` data and
/// one completed scrub pass. Built fault-free, so a pair constructed
/// with the same arguments is byte-identical.
fn seeded_device(seed: u64, salt: u8, slots: &[u64]) -> (SeroDevice, Vec<Line>) {
    let mut dev = SeroDevice::new(ProbeDevice::builder().blocks(256).seed(seed).build());
    let mut lines = Vec::new();
    for &slot in slots {
        let line = Line::new(slot * 8, 3).unwrap();
        for pba in line.data_blocks() {
            dev.write_block(pba, &pattern(pba, salt)).unwrap();
        }
        dev.heat_line(line, vec![salt], T0 + slot).unwrap();
        lines.push(line);
    }
    scrub_device(&mut dev, &ScrubConfig::default()).unwrap();
    (dev, lines)
}

fn bookkeeping(dev: &SeroDevice) -> Vec<(Line, u64, bool)> {
    dev.heated_lines()
        .map(|r| (r.line, r.verified_epoch, r.flagged))
        .collect()
}

/// True when any block of `line` (hash block included) is quarantined.
fn line_quarantined(dev: &SeroDevice, line: Line) -> bool {
    line.blocks().any(|pba| dev.is_quarantined(pba))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Reads under an arbitrary transient-fault schedule: every
    /// `read_block`, batch read, sweep read, and `verify_line` either
    /// matches the fault-free twin exactly or fails typed with the
    /// culprit quarantined — and every quarantined line is flagged.
    #[test]
    fn reads_under_faults_are_correct_or_typed_never_silent(
        dev_seed in any::<u64>(),
        salt in any::<u8>(),
        raw_slots in proptest::collection::vec(0u64..24, 1..6),
        plan_seed in any::<u64>(),
        read_ppm in 0u32..60_000,
        depth in 1u32..=2,
        stall_ppm in 0u32..20_000,
    ) {
        let slots: std::collections::BTreeSet<u64> = raw_slots.into_iter().collect();
        let slots: Vec<u64> = slots.into_iter().collect();
        let (mut faulted, lines) = seeded_device(dev_seed, salt, &slots);
        let (mut twin, _) = seeded_device(dev_seed, salt, &slots);

        faulted.probe_mut().arm_faults(
            FaultPlan::none()
                .seed(fault_seed(plan_seed))
                .transient_reads(read_ppm, depth)
                .stalls(stall_ppm, 40_000),
        );

        // Single reads: correct bytes or typed error + quarantine.
        for &line in &lines {
            for pba in line.data_blocks() {
                let want = twin.read_block(pba).unwrap();
                match faulted.read_block(pba) {
                    Ok(got) => prop_assert_eq!(got, want, "silent corruption at {}", pba),
                    Err(SeroError::Sector(_)) => {
                        prop_assert!(faulted.is_quarantined(pba));
                    }
                    Err(other) => prop_assert!(false, "untyped failure shape: {other:?}"),
                }
            }
        }

        // Batch + elevator-sweep paths (the torn-extent shape: faults
        // strike mid-run). Either the whole batch matches or the call
        // fails typed with the device degraded.
        let all: Vec<u64> = lines.iter().flat_map(|l| l.data_blocks()).collect();
        match (faulted.read_blocks(&all), twin.read_blocks(&all)) {
            (Ok(got), Ok(want)) => prop_assert_eq!(got, want),
            (Err(_), Ok(_)) => prop_assert!(faulted.is_degraded()),
            (got, want) => prop_assert!(false, "twin disagrees: {got:?} vs {want:?}"),
        }
        match (faulted.read_blocks_sweep(&all), twin.read_blocks_sweep(&all)) {
            (Ok(got), Ok(want)) => prop_assert_eq!(got, want),
            (Err(_), Ok(_)) => prop_assert!(faulted.is_degraded()),
            (got, want) => prop_assert!(false, "twin disagrees: {got:?} vs {want:?}"),
        }

        // Verification: a transient fault must never mint tamper
        // evidence (retries absorb it); only quarantine-grade failures
        // may — and then the line is flagged.
        for &line in &lines {
            let twin_ok = twin.verify_line(line).unwrap();
            prop_assert!(matches!(twin_ok, VerifyOutcome::Intact { .. }));
            match faulted.verify_line(line) {
                Ok(VerifyOutcome::Intact { .. }) => {}
                Ok(VerifyOutcome::Tampered(_)) => {
                    prop_assert!(
                        line_quarantined(&faulted, line),
                        "evidence without quarantine under injected faults"
                    );
                }
                Ok(other) => prop_assert!(false, "unexpected verdict: {other:?}"),
                Err(_) => prop_assert!(faulted.is_degraded()),
            }
        }

        // Registry equivalence modulo quarantined lines, which must be
        // flagged. (Verified epochs can differ — the twin's clean pass
        // bumps epochs the faulted device may have aborted — so compare
        // the tamper-evidence shape: line set and flags.)
        let twin_book = bookkeeping(&twin);
        for (record, twin_record) in bookkeeping(&faulted).iter().zip(twin_book.iter()) {
            prop_assert_eq!(record.0, twin_record.0, "line registry diverged");
            if line_quarantined(&faulted, record.0) {
                prop_assert!(record.2, "quarantined line not flagged");
            } else {
                prop_assert_eq!(record.2, twin_record.2, "flag diverged on a healthy line");
            }
        }

        // Stalls only ever add device time, never subtract it. (Only
        // comparable when nothing quarantined: an aborted batch does
        // fewer physical reads than the twin.)
        let stats = faulted.probe().fault_stats().unwrap();
        if stats.stalls > 0 && !faulted.is_degraded() {
            prop_assert!(
                faulted.probe().clock().elapsed_ns() > twin.probe().clock().elapsed_ns()
            );
        }
    }

    /// The same plan over the same operations replays the same schedule:
    /// fault counters, quarantine set, and every result agree between
    /// two runs — the property CI's seed matrix depends on.
    #[test]
    fn same_seed_same_ops_replays_identically(
        dev_seed in any::<u64>(),
        salt in any::<u8>(),
        raw_slots in proptest::collection::vec(0u64..24, 1..5),
        plan_seed in any::<u64>(),
        read_ppm in 0u32..80_000,
        write_ppm in 0u32..80_000,
    ) {
        let slots: std::collections::BTreeSet<u64> = raw_slots.into_iter().collect();
        let slots: Vec<u64> = slots.into_iter().collect();
        let plan = FaultPlan::none()
            .seed(fault_seed(plan_seed))
            .transient_reads(read_ppm, 1)
            .transient_writes(write_ppm, 48);

        let mut results = Vec::new();
        for _ in 0..2 {
            let (mut dev, lines) = seeded_device(dev_seed, salt, &slots);
            dev.probe_mut().arm_faults(plan.clone());
            let mut outcomes: Vec<String> = Vec::new();
            for &line in &lines {
                for pba in line.data_blocks() {
                    outcomes.push(format!("{:?}", dev.read_block(pba).map(|d| d[0])));
                }
            }
            // Scratch writes in the free area exercise the write path.
            for pba in 200..216 {
                outcomes.push(format!("{:?}", dev.write_block(pba, &pattern(pba, salt))));
            }
            let stats = dev.probe().fault_stats().unwrap();
            let quarantined: Vec<u64> = dev.quarantined_blocks().collect();
            results.push((outcomes, stats.read_faults, stats.write_faults, quarantined));
        }
        prop_assert_eq!(&results[0], &results[1], "same seed, different schedule");
    }
}

/// A block declared dead fails every read: the retry budget exhausts,
/// the block is quarantined, its line is flagged (feeding the
/// incremental-scrub delta), and the device degrades instead of wedging
/// — while every other block still serves bytes identical to the twin.
#[test]
fn dead_block_quarantines_flags_and_degrades() {
    let slots = [1u64, 3, 5];
    let (mut faulted, lines) = seeded_device(0xD0A, 0x42, &slots);
    let (mut twin, _) = seeded_device(0xD0A, 0x42, &slots);
    let victim = lines[0].start() + 2;

    faulted
        .probe_mut()
        .arm_faults(FaultPlan::none().seed(fault_seed(7)).dead_read(victim));

    assert!(matches!(
        faulted.read_block(victim),
        Err(SeroError::Sector(_))
    ));
    assert!(faulted.is_quarantined(victim));
    assert!(faulted.is_degraded());
    let record = faulted
        .heated_lines()
        .find(|r| r.line == lines[0])
        .expect("line registered");
    assert!(record.flagged, "quarantined line must be flagged");

    // Everything else still serves, byte-identical.
    for &line in &lines[1..] {
        for pba in line.data_blocks() {
            assert_eq!(
                faulted.read_block(pba).unwrap(),
                twin.read_block(pba).unwrap()
            );
        }
    }
    // Verify on the dead line stays loud (evidence or typed error),
    // never a silent Intact.
    if let Ok(VerifyOutcome::Intact { .. }) = faulted.verify_line(lines[0]) {
        panic!("dead block verified intact");
    }
    // The healthy lines still verify intact.
    assert!(matches!(
        faulted.verify_line(lines[1]).unwrap(),
        VerifyOutcome::Intact { .. }
    ));
}

/// With retry disabled (`RetryPolicy::none()`), a one-shot flaky fault
/// surfaces and quarantines; with the default budget the identical
/// schedule is absorbed invisibly. Pins that the retry layer — not luck
/// — provides the transparency.
#[test]
fn retry_budget_is_what_absorbs_transient_faults() {
    let slots = [2u64];
    let (mut strict, lines) = seeded_device(0xBEE, 0x07, &slots);
    let victim = lines[0].start() + 1;
    let plan = FaultPlan::none().seed(fault_seed(11)).flaky_read(victim, 1);

    strict.set_retry_policy(RetryPolicy::none());
    strict.probe_mut().arm_faults(plan.clone());
    assert!(
        strict.read_block(victim).is_err(),
        "no retry, fault surfaces"
    );
    assert!(strict.is_quarantined(victim));

    let (mut lenient, _) = seeded_device(0xBEE, 0x07, &slots);
    lenient.probe_mut().arm_faults(plan);
    let got = lenient.read_block(victim).unwrap();
    assert_eq!(got, pattern(victim, 0x07));
    assert!(!lenient.is_degraded(), "one-shot fault absorbed by retry");

    // A flaky streak as deep as the whole budget exhausts it.
    let (mut exhausted, _) = seeded_device(0xBEE, 0x07, &slots);
    let budget = exhausted.retry_policy().max_attempts;
    exhausted.probe_mut().arm_faults(
        FaultPlan::none()
            .seed(fault_seed(11))
            .flaky_read(victim, budget),
    );
    assert!(exhausted.read_block(victim).is_err());
    assert!(exhausted.is_quarantined(victim));
    // The fault was transient, so after disarm the block reads clean —
    // quarantine is advisory bookkeeping, not data loss.
    exhausted.probe_mut().disarm_faults();
    assert!(exhausted.clear_quarantine(victim));
    assert_eq!(exhausted.read_block(victim).unwrap(), pattern(victim, 0x07));
}

/// Bit rot flipped at arm time is *real* damage, not an injected error:
/// the sector codec either corrects it transparently (same bytes as the
/// twin) or the read fails typed. Either way, no wrong bytes.
#[test]
fn bit_rot_is_corrected_or_typed_never_wrong_bytes() {
    let slots = [4u64];
    let (mut faulted, lines) = seeded_device(0x807, 0x19, &slots);
    let (mut twin, _) = seeded_device(0x807, 0x19, &slots);
    let victim = lines[0].start() + 3;

    let mut plan = FaultPlan::none().seed(fault_seed(13));
    for offset in 0..6 {
        plan = plan.rot_dot(victim, offset * 97);
    }
    faulted.probe_mut().arm_faults(plan);
    assert!(faulted.probe().fault_stats().unwrap().rotted_dots > 0);

    match faulted.read_block(victim) {
        Ok(got) => assert_eq!(got, twin.read_block(victim).unwrap()),
        Err(SeroError::Sector(_)) => assert!(faulted.is_quarantined(victim)),
        Err(other) => panic!("untyped failure shape: {other:?}"),
    }
}
