//! Degraded-mode operation end-to-end: when persistent faults put
//! blocks in quarantine, the file system keeps serving reads, `stat`,
//! `list`, and verification, refuses every mutation with the typed
//! [`FsError::Degraded`] / wire [`ErrorCode::Degraded`], and reports its
//! state through `stat` and `FleetStatus` — it degrades loudly instead
//! of wedging or lying.

use sero::core::faults::FaultPlan;
use sero::fs::error::FsError;
use sero::fs::fs::{FsConfig, SeroFs};
use sero::proto::{ErrorCode, Request, Response, WireClass};

fn fresh(blocks: u64) -> SeroFs {
    SeroFs::format(
        sero::core::device::SeroDevice::with_blocks(blocks),
        FsConfig::default(),
    )
    .unwrap()
}

#[test]
fn transient_faults_stay_invisible_to_the_fs() {
    let mut fs = fresh(256);
    let body = vec![0x3C; 1400];
    fs.create("journal", &body, sero::fs::alloc::WriteClass::Archival)
        .unwrap();
    let line = fs
        .heat("journal", b"sealed".to_vec(), 1_199_145_600)
        .unwrap();

    // One flaky attempt on every data block of the line: the device
    // retry absorbs them all before the fs ever sees an error.
    let mut plan = FaultPlan::none();
    for pba in line.data_blocks() {
        plan = plan.flaky_read(pba, 1);
    }
    fs.device_mut().probe_mut().arm_faults(plan);
    assert_eq!(fs.read("journal").unwrap(), body);
    assert!(fs.device().probe().fault_stats().unwrap().read_faults > 0);
    assert!(!fs.is_degraded());
    assert!(!fs.stat("journal").unwrap().degraded);
}

#[test]
fn quarantine_flips_the_fs_into_degraded_mode() {
    let mut fs = fresh(256);
    fs.create(
        "ledger",
        &[7u8; 1200],
        sero::fs::alloc::WriteClass::Archival,
    )
    .unwrap();
    fs.create("scratch", b"mutable", sero::fs::alloc::WriteClass::Normal)
        .unwrap();
    let line = fs.heat("ledger", b"audit".to_vec(), 1_199_145_600).unwrap();

    // Dead data blocks inside the heated line (the file lives somewhere
    // in it): the read exhausts the retry budget, quarantines the
    // culprit, and flags the line.
    let mut plan = FaultPlan::none();
    for pba in line.data_blocks() {
        plan = plan.dead_read(pba);
    }
    fs.device_mut().probe_mut().arm_faults(plan);
    assert!(
        matches!(fs.read("ledger"), Err(FsError::Device(_))),
        "dead block surfaces typed, not silent"
    );
    assert!(fs.device().quarantined_count() >= 1);
    assert!(fs.is_degraded());

    // Mutations are refused with the typed degraded error…
    for err in [
        fs.write("scratch", b"update", sero::fs::alloc::WriteClass::Normal)
            .unwrap_err(),
        fs.create("new-file", b"x", sero::fs::alloc::WriteClass::Normal)
            .unwrap_err(),
        fs.remove("scratch").unwrap_err(),
    ] {
        match err {
            FsError::Degraded { quarantined_blocks } => assert!(quarantined_blocks >= 1),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    // …while reads, stat, list, and verification keep serving.
    assert_eq!(fs.read("scratch").unwrap(), b"mutable");
    assert!(fs.stat("scratch").unwrap().degraded);
    assert!(fs.list().contains(&"scratch".to_string()));
    assert!(fs.verify("scratch").is_ok());
    // Re-heating an already-heated file is idempotent and still allowed.
    assert_eq!(
        fs.heat("ledger", b"audit".to_vec(), 1_199_145_600).unwrap(),
        line
    );
    // The flagged line feeds the scrub delta: the registry shows it.
    assert!(
        fs.device()
            .heated_lines()
            .any(|r| r.line == line && r.flagged),
        "quarantined line must be flagged for the next scrub"
    );

    // Recovery: disarm + clear quarantine restores full service.
    fs.device_mut().probe_mut().disarm_faults();
    let quarantined: Vec<u64> = fs.device().quarantined_blocks().collect();
    for pba in quarantined {
        assert!(fs.device_mut().clear_quarantine(pba));
    }
    assert!(!fs.is_degraded());
    fs.write("scratch", b"update", sero::fs::alloc::WriteClass::Normal)
        .unwrap();
    assert_eq!(fs.read("scratch").unwrap(), b"update");
}

#[test]
fn degraded_mode_crosses_the_wire() {
    let mut fs = fresh(256);
    fs.handle(Request::Create {
        name: "vault".into(),
        data: vec![9u8; 1100],
        class: WireClass::Archival,
    });
    let line = match fs.handle(Request::Heat {
        name: "vault".into(),
        metadata: b"case".to_vec(),
        timestamp: 1,
    }) {
        Response::Heated { line } => line,
        other => panic!("{other:?}"),
    };

    let mut plan = FaultPlan::none();
    for pba in line.to_line().unwrap().data_blocks() {
        plan = plan.dead_read(pba);
    }
    fs.device_mut().probe_mut().arm_faults(plan);
    // Trip quarantine through the wire path itself.
    match fs.handle(Request::Read {
        name: "vault".into(),
    }) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::SectorIo),
        other => panic!("{other:?}"),
    }

    // Writes answer the wire-stable degraded code with a helpful detail.
    match fs.handle(Request::Create {
        name: "blocked".into(),
        data: b"x".to_vec(),
        class: WireClass::Normal,
    }) {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Degraded);
            assert!(e.detail.contains("quarantined"), "{}", e.detail);
        }
        other => panic!("{other:?}"),
    }

    // Stat and FleetStatus both carry the degraded signal.
    match fs.handle(Request::Stat {
        name: "vault".into(),
    }) {
        Response::Stat(info) => assert!(info.degraded),
        other => panic!("{other:?}"),
    }
    match fs.handle(Request::FleetStatus) {
        Response::FleetStatus { members } => {
            assert!(members[0].degraded);
            assert!(members[0].quarantined_blocks >= 1);
        }
        other => panic!("{other:?}"),
    }
}
