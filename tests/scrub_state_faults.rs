//! Fault injection against the persisted scrub-state path: whatever an
//! attacker (or bit rot) does to an exported record — flip bytes,
//! truncate it, hand it to the wrong device — the import must either
//! reject it whole (`BadScrubState`) or count the mismatches as
//! stale/unknown, but NEVER partially apply corrupt bookkeeping. And
//! after a rejection, the next scrub falls back to a full pass, so a
//! forged record can never *shrink* what gets re-verified.

use proptest::prelude::*;
use sero::core::device::{SeroDevice, SeroError};
use sero::core::line::Line;
use sero::core::scrub::{scrub_device, ScrubConfig, ScrubMode};

const T0: u64 = 1_199_145_600;

fn pattern(pba: u64, salt: u8) -> [u8; 512] {
    let mut s = [0u8; 512];
    for (j, b) in s.iter_mut().enumerate() {
        *b = (pba as u8).wrapping_mul(167).wrapping_add(j as u8) ^ salt;
    }
    s
}

/// A device with `slots` heated order-3 lines, one completed scrub pass,
/// and (optionally) one line flagged by a refused write — so the export
/// carries both epochs and a flag.
fn scrubbed_device(seed: u64, salt: u8, slots: &[u64], flag_one: bool) -> (SeroDevice, Vec<Line>) {
    let mut dev = SeroDevice::new(
        sero::probe::device::ProbeDevice::builder()
            .blocks(256)
            .seed(seed)
            .build(),
    );
    let mut lines = Vec::new();
    for &slot in slots {
        let line = Line::new(slot * 8, 3).unwrap();
        for pba in line.data_blocks() {
            dev.write_block(pba, &pattern(pba, salt)).unwrap();
        }
        dev.heat_line(line, vec![salt], T0 + slot).unwrap();
        lines.push(line);
    }
    scrub_device(&mut dev, &ScrubConfig::default()).unwrap();
    if flag_one {
        assert!(dev.write_block(lines[0].start() + 1, &[0u8; 512]).is_err());
    }
    (dev, lines)
}

/// The registry bookkeeping a restore could touch, snapshot for
/// unchanged-state comparisons.
fn bookkeeping(dev: &SeroDevice) -> Vec<(Line, u64, bool)> {
    dev.heated_lines()
        .map(|r| (r.line, r.verified_epoch, r.flagged))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single flipped byte, any truncation, or both: the import
    /// rejects the record whole, the rebuilt registry's bookkeeping is
    /// untouched (never partially applied), and the next incremental
    /// scrub request falls back to a FULL pass covering every line.
    #[test]
    fn corrupt_state_is_rejected_whole_and_forces_a_full_pass(
        seed in any::<u64>(),
        salt in any::<u8>(),
        raw_slots in proptest::collection::vec(0u64..24, 1..8),
        flag_one in any::<bool>(),
        flip in any::<bool>(),
        flip_at in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
        truncate in any::<bool>(),
        truncate_at in any::<proptest::sample::Index>(),
    ) {
        let slots: std::collections::BTreeSet<u64> = raw_slots.into_iter().collect();
        let slots: Vec<u64> = slots.into_iter().collect();
        let (dev, lines) = scrubbed_device(seed, salt, &slots, flag_one);
        let exported = dev.export_scrub_state();
        prop_assert!(!exported.is_empty());

        // Mutate: at least one of flip/truncate (both allowed).
        let mut bytes = exported.clone();
        if flip {
            let at = flip_at.index(bytes.len());
            bytes[at] ^= xor;
        }
        if truncate || !flip {
            bytes.truncate(truncate_at.index(bytes.len())); // strictly shorter
        }
        prop_assert!(bytes != exported, "mutation must change the record");

        // A cold attach over the same medium: fresh wrapper, rebuilt
        // registry, no volatile epochs.
        let mut cold = SeroDevice::new(dev.probe().clone());
        cold.rebuild_registry().unwrap();
        let before = bookkeeping(&cold);
        prop_assert!(before.iter().all(|&(_, epoch, flagged)| epoch == 0 && !flagged));

        // Rejected whole…
        let err = cold.import_scrub_state(&bytes);
        prop_assert!(
            matches!(err, Err(SeroError::BadScrubState { .. })),
            "corrupt record accepted: {err:?}"
        );
        // …with nothing applied: bookkeeping and epoch untouched.
        prop_assert_eq!(bookkeeping(&cold), before);
        prop_assert_eq!(cold.scrub_epoch(), 0);

        // A remount that lost its state runs FULL on the next
        // incremental request — every line re-verified, none skipped.
        let report = scrub_device(&mut cold, &ScrubConfig::incremental(1)).unwrap();
        prop_assert_eq!(report.summary.mode, ScrubMode::Full);
        prop_assert_eq!(report.summary.lines, lines.len());
        prop_assert_eq!(report.summary.skipped, 0);
    }

    /// A pristine record round-trips on the same medium (the control
    /// case), while the SAME valid record fed to a different device —
    /// same line coordinates, different data, hence different digests —
    /// is stale-counted line for line and applies nothing.
    #[test]
    fn valid_state_on_the_wrong_device_is_stale_counted_never_applied(
        seed in any::<u64>(),
        salt in 0u8..=254,
        raw_slots in proptest::collection::vec(0u64..24, 1..8),
    ) {
        let slots: std::collections::BTreeSet<u64> = raw_slots.into_iter().collect();
        let slots: Vec<u64> = slots.into_iter().collect();
        let (dev, lines) = scrubbed_device(seed, salt, &slots, false);
        let exported = dev.export_scrub_state();

        // Control: same medium, cold attach, full restore.
        let mut cold = SeroDevice::new(dev.probe().clone());
        cold.rebuild_registry().unwrap();
        let restore = cold.import_scrub_state(&exported).unwrap();
        prop_assert_eq!(restore.restored, lines.len());
        prop_assert_eq!((restore.stale, restore.unknown), (0, 0));

        // Same coordinates, different contents on an unrelated device:
        // every record is stale (digest guard), nothing is applied.
        let (other, _) = scrubbed_device(seed ^ 0x5A5A, salt.wrapping_add(1), &slots, false);
        let mut wrong = SeroDevice::new(other.probe().clone());
        wrong.rebuild_registry().unwrap();
        let restore = wrong.import_scrub_state(&exported).unwrap();
        prop_assert_eq!(restore.restored, 0);
        prop_assert_eq!(restore.stale, lines.len());
        prop_assert!(
            wrong.heated_lines().all(|r| r.verified_epoch == 0 && !r.flagged),
            "stale records must not mark foreign lines verified"
        );
    }
}
