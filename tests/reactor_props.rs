//! Property tests for incremental frame reassembly, plus the reactor's
//! stalled-peer regression. The reactor reads whatever byte chunks the
//! kernel hands it — a one-byte drip, splits exactly on the magic /
//! header / CRC boundaries, or several frames coalesced into one read —
//! and the [`FrameAssembler`] must decode the identical frame sequence a
//! whole-buffer decoder would, without ever panicking.

use proptest::prelude::*;
use sero::proto::frame::{
    decode_frame, encode_request, FrameAssembler, FrameError, FrameKind, FRAME_OVERHEAD_BYTES,
};
use sero::proto::Request;
use sero_server::{SeroServer, ServerConfig, ServerMode};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A small population of request shapes to interleave on the wire.
fn nth_request(tag: usize, fill: &[u8]) -> Request {
    match tag % 5 {
        0 => Request::Ping,
        1 => Request::list_all(),
        2 => Request::Read {
            name: "chunked".into(),
        },
        3 => Request::Create {
            name: "chunked".into(),
            data: fill.to_vec(),
            class: sero::proto::WireClass::Normal,
        },
        _ => Request::FleetStatus,
    }
}

/// Reference decode: run `decode_frame` over the whole buffer
/// frame-by-frame, as if the stream had arrived in one read.
fn whole_buffer_frames(wire: &[u8]) -> Vec<(FrameKind, Vec<u8>)> {
    let mut frames = Vec::new();
    let mut at = 0;
    while at < wire.len() {
        let (kind, payload, used) = decode_frame(&wire[at..]).expect("reference decode");
        frames.push((kind, payload.to_vec()));
        at += used;
    }
    frames
}

/// Feed `wire` to an assembler in the given chunk sizes (cycled, with
/// the remainder as a final chunk), draining complete frames as they
/// form — exactly the reactor's read loop.
fn reassemble(wire: &[u8], chunk_sizes: &[usize]) -> Vec<(FrameKind, Vec<u8>)> {
    let mut asm = FrameAssembler::new();
    let mut frames = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < wire.len() {
        let size = chunk_sizes
            .get(i % chunk_sizes.len().max(1))
            .copied()
            .unwrap_or(wire.len())
            .max(1)
            .min(wire.len() - at);
        asm.push(&wire[at..at + size]);
        at += size;
        i += 1;
        while let Some(frame) = asm.next_frame().expect("valid stream must decode") {
            frames.push(frame);
        }
    }
    assert!(!asm.mid_frame(), "complete stream must drain the assembler");
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte-level chunkings — including 1-byte drips and
    /// coalesced multi-frame reads — reassemble to exactly the frames a
    /// whole-buffer decode yields.
    #[test]
    fn any_chunking_decodes_identically_to_whole_frames(
        tags in proptest::collection::vec(0usize..5, 1..8),
        fill in proptest::collection::vec(any::<u8>(), 0..300),
        chunk_sizes in proptest::collection::vec(1usize..64, 1..40),
    ) {
        let mut wire = Vec::new();
        for &tag in &tags {
            wire.extend_from_slice(&encode_request(&nth_request(tag, &fill)).unwrap());
        }
        let want = whole_buffer_frames(&wire);
        prop_assert_eq!(want.len(), tags.len());

        let got = reassemble(&wire, &chunk_sizes);
        prop_assert_eq!(&got, &want, "chunked decode diverged");

        let dripped = reassemble(&wire, &[1]);
        prop_assert_eq!(&dripped, &want, "1-byte drip diverged");

        let coalesced = reassemble(&wire, &[wire.len()]);
        prop_assert_eq!(&coalesced, &want, "single-read decode diverged");
    }

    /// Splits landing exactly on the structural boundaries — after the
    /// magic, after the header, right before the CRC — are just more
    /// chunkings: same frames out.
    #[test]
    fn boundary_splits_decode_identically(
        tag in 0usize..5,
        fill in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let wire = encode_request(&nth_request(tag, &fill)).unwrap();
        let header = FRAME_OVERHEAD_BYTES - 4;
        let want = whole_buffer_frames(&wire);
        for cut in [4, header, wire.len() - 4] {
            let mut asm = FrameAssembler::new();
            asm.push(&wire[..cut]);
            prop_assert!(asm.next_frame().unwrap().is_none(), "partial at {}", cut);
            prop_assert!(asm.mid_frame());
            asm.push(&wire[cut..]);
            let got = vec![asm.next_frame().unwrap().expect("complete")];
            prop_assert_eq!(&got, &want, "boundary split at {} diverged", cut);
        }
    }

    /// Garbage — pure junk, or a valid frame with any byte flipped —
    /// never panics the assembler: it either wants more bytes or
    /// surfaces a clean `FrameError`, and a hard error agrees with the
    /// whole-buffer decoder's verdict.
    #[test]
    fn corrupt_streams_error_cleanly_under_any_chunking(
        junk in proptest::collection::vec(any::<u8>(), 1..200),
        flip_at in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
        chunk_sizes in proptest::collection::vec(1usize..32, 1..20),
    ) {
        for stream in [junk.clone(), {
            let mut framed = encode_request(&Request::list_all()).unwrap();
            let at = flip_at.index(framed.len());
            framed[at] ^= xor;
            framed
        }] {
            let whole_verdict = decode_frame(&stream);
            let mut asm = FrameAssembler::new();
            let mut at = 0;
            let mut i = 0;
            let mut chunked_err: Option<FrameError> = None;
            'feed: while at < stream.len() {
                let size = chunk_sizes[i % chunk_sizes.len()].min(stream.len() - at);
                asm.push(&stream[at..at + size]);
                at += size;
                i += 1;
                loop {
                    match asm.next_frame() {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(e) => {
                            chunked_err = Some(e);
                            break 'feed;
                        }
                    }
                }
            }
            // A hard error from the whole buffer must also surface (the
            // same variant) under chunked delivery once enough bytes
            // arrived; Truncated means both sides are merely waiting.
            match whole_verdict {
                Err(FrameError::Truncated { .. }) | Ok(_) => {}
                Err(whole_err) => {
                    let got = chunked_err.expect("chunked decode missed the corruption");
                    prop_assert_eq!(got, whole_err);
                }
            }
        }
    }
}

/// Regression: a peer that stalls mid-frame is reaped by the reactor's
/// read-deadline timer without pinning any other connection — the
/// single-threaded event loop keeps answering everyone else while the
/// staller sits in its buffer, and the timer (not an EOF) frees the
/// slot.
#[test]
fn stalled_mid_frame_peer_is_reaped_without_pinning_others() {
    use sero_client::{ClientConfig, SeroClient};
    use sero_core::device::SeroDevice;
    use sero_fs::fs::{FsConfig, SeroFs};

    let fs = SeroFs::format(SeroDevice::with_blocks(256), FsConfig::default()).unwrap();
    let handle = SeroServer::bind(
        "127.0.0.1:0",
        fs,
        ServerConfig {
            mode: ServerMode::Reactor,
            read_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();

    // Three stallers, each a different depth into a frame: half the
    // magic, the full header, and a torn payload.
    let torn = encode_request(&Request::Read { name: "x".into() }).unwrap();
    let mut stallers: Vec<TcpStream> = [2usize, 10, torn.len() - 2]
        .into_iter()
        .map(|cut| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&torn[..cut]).unwrap();
            s
        })
        .collect();

    // Meanwhile every live client is served promptly.
    let t0 = Instant::now();
    let mut client = SeroClient::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    client.ping().expect("stallers must not block service");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "served only after an unreasonable delay: {:?}",
        t0.elapsed()
    );

    // The timer — not our EOF — reaps each staller: their sockets close
    // from the server side within a bounded wait.
    for staller in &mut stallers {
        staller
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 64];
        let reaped = matches!(std::io::Read::read(staller, &mut buf), Ok(0) | Err(_));
        assert!(reaped, "staller not reaped by the read-deadline timer");
    }

    handle.shutdown();
}
