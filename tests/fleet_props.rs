//! Cross-device properties of fleet scrub orchestration: whatever
//! interleaving of `tick` / `pause` / `resume` / `cancel` the driver
//! throws at a [`FleetScheduler`] over two devices, each member pass
//! that completes must produce evidence byte-identical to an exclusive
//! per-device pass, a cancelled member's partial report must be a
//! faithful prefix of its exclusive pass (epoch untouched), and the sum
//! of the adaptive controller's budget grants must never exceed the
//! global cap in any quantum.
//!
//! These tests are deliberately single-thread-safe and deterministic;
//! CI additionally runs them under `--test-threads=1` as a determinism
//! smoke so a flaky interleaving cannot hide behind parallel test
//! execution.

use proptest::prelude::*;
use sero::core::device::SeroDevice;
use sero::core::fleet::{FleetConfig, FleetMemberState, FleetScheduler, FleetSliceOutcome};
use sero::core::line::Line;
use sero::core::scrub::{pass_work_list, scrub_device, ScrubConfig, ScrubMode, ScrubReport};

fn pattern(pba: u64, salt: u8) -> [u8; 512] {
    let mut s = [0u8; 512];
    for (j, b) in s.iter_mut().enumerate() {
        *b = (pba as u8).wrapping_mul(131).wrapping_add(j as u8) ^ salt;
    }
    s
}

/// Heats `slots` order-3 lines on a fresh seeded device.
fn heated_device(seed: u64, salt: u8, slots: &[u64]) -> (SeroDevice, Vec<Line>) {
    let mut dev = SeroDevice::new(
        sero::probe::device::ProbeDevice::builder()
            .blocks(256)
            .seed(seed)
            .build(),
    );
    let mut lines = Vec::new();
    for &slot in slots {
        let line = Line::new(slot * 8, 3).unwrap();
        for pba in line.data_blocks() {
            dev.write_block(pba, &pattern(pba, salt)).unwrap();
        }
        dev.heat_line(line, vec![salt], 1_199_145_600 + slot)
            .unwrap();
        lines.push(line);
    }
    (dev, lines)
}

fn dedupe(raw: Vec<u64>) -> Vec<u64> {
    let set: std::collections::BTreeSet<u64> = raw.into_iter().collect();
    set.into_iter().collect()
}

/// One fleet round with clock handling for throttled/starved members,
/// asserting the global-cap invariant after the retune.
fn tick_round(
    sched: &mut FleetScheduler,
    devs: &mut [SeroDevice],
    global_budget_ns: u64,
) -> Result<(), TestCaseError> {
    let outcomes = sched.tick(devs).unwrap();
    let granted: u64 = sched.last_grants().iter().sum();
    prop_assert!(
        granted <= global_budget_ns,
        "grants {granted} exceed the global cap {global_budget_ns}"
    );
    for (i, outcome) in outcomes {
        match outcome {
            FleetSliceOutcome::Throttled { resume_at_ns } => {
                let now = devs[i].probe().clock().elapsed_ns();
                if resume_at_ns > now {
                    devs[i]
                        .probe_mut()
                        .advance_clock((resume_at_ns - now) as u64);
                }
            }
            FleetSliceOutcome::Starved => {
                devs[i].probe_mut().advance_clock(sched.config().quantum_ns);
            }
            _ => {}
        }
    }
    Ok(())
}

use proptest::test_runner::TestCaseError;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary interleavings of pause/resume/tick across two devices —
    /// arbitrary budgets, stagger ceilings, and planted tampering —
    /// complete with evidence byte-identical to exclusive per-device
    /// passes, agree on the next incremental delta, and never exceed the
    /// global budget cap in any grant walk.
    #[test]
    fn interleaved_fleet_passes_equal_exclusive_passes(
        seed in any::<u64>(),
        salt in any::<u8>(),
        raw_a in proptest::collection::vec(0u64..16, 2..8),
        raw_b in proptest::collection::vec(0u64..16, 2..8),
        victims in proptest::collection::vec((0usize..2, 0usize..8), 0..3),
        script in proptest::collection::vec((0u8..8, 0usize..2), 0..24),
        global_budget_us in 300..4_000u64,
        max_concurrent in 1usize..3,
    ) {
        let slots = [dedupe(raw_a), dedupe(raw_b)];
        let mut devs = vec![
            heated_device(seed, salt, &slots[0]).0,
            heated_device(seed ^ 0xABCD, salt.wrapping_add(7), &slots[1]).0,
        ];
        let all_lines: Vec<Vec<Line>> = (0..2)
            .map(|d| slots[d].iter().map(|&s| Line::new(s * 8, 3).unwrap()).collect())
            .collect();
        // Plant tampering behind the protocol's back.
        for &(d, pick) in &victims {
            let line = all_lines[d][pick % all_lines[d].len()];
            devs[d]
                .probe_mut()
                .mws(line.start() + 1 + (pick as u64 % 7), &[0xAA; 512])
                .unwrap();
        }

        let mut exclusive_devs = devs.clone();
        let exclusive: Vec<ScrubReport> = exclusive_devs
            .iter_mut()
            .map(|d| scrub_device(d, &ScrubConfig::default()).unwrap())
            .collect();

        let config = FleetConfig {
            global_budget_ns: global_budget_us * 1_000,
            max_concurrent,
            ..FleetConfig::default()
        };
        let mut sched = FleetScheduler::start(devs.iter(), config).unwrap();

        // The scripted interleaving: pauses and resumes sprinkled between
        // ticks, then a bounded drain with everything resumed.
        for &(action, member) in &script {
            match action {
                0 => sched.pause(member),
                1 => sched.resume(member),
                _ => tick_round(&mut sched, &mut devs, config.global_budget_ns)?,
            }
        }
        sched.resume(0);
        sched.resume(1);
        let mut guard = 0usize;
        while !sched.is_complete() {
            guard += 1;
            prop_assert!(guard < 100_000, "fleet failed to converge");
            tick_round(&mut sched, &mut devs, config.global_budget_ns)?;
        }

        for (d, expected) in exclusive.iter().enumerate() {
            let report = sched.member_report(d).expect("completed member");
            // Byte-identical evidence: same outcomes (sorted by address),
            // same Evidence payloads, same totals, same epoch.
            prop_assert_eq!(&report.outcomes, &expected.outcomes);
            prop_assert_eq!(report.summary.lines, expected.summary.lines);
            prop_assert_eq!(report.summary.tampered, expected.summary.tampered);
            prop_assert_eq!(report.summary.epoch, expected.summary.epoch);
            prop_assert_eq!(devs[d].scrub_epoch(), 1);
        }
        // The devices agree with their exclusive twins about what the
        // next incremental pass owes (flagged = tampered lines only).
        for d in 0..2 {
            prop_assert_eq!(
                pass_work_list(&devs[d], ScrubMode::Incremental),
                pass_work_list(&exclusive_devs[d], ScrubMode::Incremental)
            );
        }
        prop_assert!(sched.peak_active() <= max_concurrent.max(1));
    }

    /// Cancelling one member mid-interleaving: its partial report is a
    /// faithful prefix of its exclusive pass (every outcome identical,
    /// no invented evidence), its device's completed-pass epoch stays
    /// untouched, and the surviving member still matches its exclusive
    /// pass byte for byte.
    #[test]
    fn cancelled_member_is_a_faithful_prefix(
        seed in any::<u64>(),
        salt in any::<u8>(),
        raw_a in proptest::collection::vec(0u64..16, 3..8),
        raw_b in proptest::collection::vec(0u64..16, 3..8),
        victim_pick in 0usize..8,
        cancel_member in 0usize..2,
        cancel_after in 1usize..6,
    ) {
        let slots = [dedupe(raw_a), dedupe(raw_b)];
        let mut devs = vec![
            heated_device(seed, salt, &slots[0]).0,
            heated_device(seed ^ 0x1234, salt.wrapping_add(3), &slots[1]).0,
        ];
        // Tamper one line on the member that will be cancelled, so the
        // prefix property is exercised against real evidence too.
        let victim_lines: Vec<Line> =
            slots[cancel_member].iter().map(|&s| Line::new(s * 8, 3).unwrap()).collect();
        let tampered_line = victim_lines[victim_pick % victim_lines.len()];
        devs[cancel_member]
            .probe_mut()
            .mws(tampered_line.start() + 1, &[0xBB; 512])
            .unwrap();

        let exclusive: Vec<ScrubReport> = devs
            .clone()
            .iter_mut()
            .map(|d| scrub_device(d, &ScrubConfig::default()).unwrap())
            .collect();

        let config = FleetConfig {
            max_concurrent: 2,
            ..FleetConfig::default()
        };
        let mut sched = FleetScheduler::start(devs.iter(), config).unwrap();
        for _ in 0..cancel_after {
            tick_round(&mut sched, &mut devs, config.global_budget_ns)?;
        }
        sched.cancel(cancel_member);

        let mut guard = 0usize;
        while !sched.is_complete() {
            guard += 1;
            prop_assert!(guard < 100_000, "fleet failed to converge");
            tick_round(&mut sched, &mut devs, config.global_budget_ns)?;
        }

        match sched.member_state(cancel_member) {
            // The common case: the cancel landed mid-pass. Partial
            // prefix, epoch untouched, nothing lost.
            FleetMemberState::Cancelled => {
                prop_assert_eq!(devs[cancel_member].scrub_epoch(), 0);
                if let Some(partial) = sched.member_report(cancel_member) {
                    for scrubbed in &partial.outcomes {
                        let twin = exclusive[cancel_member]
                            .outcomes
                            .iter()
                            .find(|o| o.line == scrubbed.line)
                            .expect("partial outcome names a real line");
                        prop_assert_eq!(&scrubbed.outcome, &twin.outcome);
                    }
                    prop_assert!(
                        partial.outcomes.len() <= exclusive[cancel_member].outcomes.len()
                    );
                }
                // The unreached remainder is still owed: the next
                // incremental pass covers every line the partial pass
                // never stamped.
                let remainder = pass_work_list(&devs[cancel_member], ScrubMode::Incremental);
                let stamped: Vec<Line> = sched
                    .member_report(cancel_member)
                    .map(|r| r.outcomes.iter().map(|o| o.line).collect())
                    .unwrap_or_default();
                for line in victim_lines {
                    let covered = stamped.contains(&line) || remainder.contains(&line);
                    prop_assert!(covered, "line {line} lost by the cancelled pass");
                }
            }
            // A small pass can drain before the scripted cancel lands;
            // then the cancel is a no-op and the pass is simply complete
            // and exclusive-identical.
            FleetMemberState::Complete => {
                let report = sched.member_report(cancel_member).expect("completed");
                prop_assert_eq!(&report.outcomes, &exclusive[cancel_member].outcomes);
                prop_assert_eq!(devs[cancel_member].scrub_epoch(), 1);
            }
            other => prop_assert!(false, "unexpected member state {other:?}"),
        }

        // The surviving member is untouched by its peer's cancellation.
        let survivor = 1 - cancel_member;
        let report = sched.member_report(survivor).expect("survivor completed");
        prop_assert_eq!(&report.outcomes, &exclusive[survivor].outcomes);
        prop_assert_eq!(devs[survivor].scrub_epoch(), 1);
    }
}
