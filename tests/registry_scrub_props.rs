//! Cross-layer properties of the batched electrical fast path: the
//! streamed registry sieve must make exactly the decisions of the
//! per-block crawl it replaces — including forged-payload and
//! shredded-block evidence — and epoch-based incremental scrubbing must
//! accumulate exactly the tamper evidence a full pass reports every epoch.

use proptest::prelude::*;
use sero::core::device::SeroDevice;
use sero::core::layout::HashBlockPayload;
use sero::core::line::Line;
use sero::core::scrub::{scrub_device, ScrubConfig, ScrubMode};
use sero::crypto::Sha256;

fn pattern(pba: u64, salt: u8) -> [u8; 512] {
    let mut s = [0u8; 512];
    for (j, b) in s.iter_mut().enumerate() {
        *b = (pba as u8).wrapping_mul(89).wrapping_add(j as u8) ^ salt;
    }
    s
}

fn forged_payload(claim_start: u64, claim_order: u32, seed: u8) -> HashBlockPayload {
    let mut h = Sha256::new();
    h.update(&[seed]);
    HashBlockPayload::new(
        Line::new(claim_start, claim_order).unwrap(),
        h.finalize(),
        0,
        vec![],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The batched registry sieve and the per-block crawl are
    /// result-identical — same `lines_found`/`lines_skipped`/
    /// `suspicious_blocks`/`overlapping_lines` and the same registry —
    /// for populations mixing genuine lines with a forged payload (burned
    /// away from its own hash block, or claiming a line that overruns the
    /// device) and a shredded block.
    #[test]
    fn batched_registry_scan_equals_crawl(
        seed in any::<u64>(),
        salt in any::<u8>(),
        raw_slots in proptest::collection::vec(0u64..6, 1..4),
        forge_kind in 0u8..3,
        shred_slot in 0u64..16,
    ) {
        // 96 blocks: slots 0..6 are 8-block heated lines (0..48); the
        // upper half holds planted evidence.
        let slots: std::collections::BTreeSet<u64> = raw_slots.into_iter().collect();
        let mut dev = SeroDevice::new(
            sero::probe::device::ProbeDevice::builder().blocks(96).seed(seed).build(),
        );
        for &slot in &slots {
            let line = Line::new(slot * 8, 3).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &pattern(pba, salt)).unwrap();
            }
            dev.heat_line(line, vec![salt], 7).unwrap();
        }
        // Forged evidence in the upper half.
        match forge_kind {
            0 => {
                // Valid-looking payload burned at the wrong block: claims
                // a line whose hash block is elsewhere.
                let p = forged_payload(0, 3, salt);
                dev.probe_mut().ews(80, &p.to_bits()).unwrap();
            }
            1 => {
                // Payload claiming a line that overruns the 96-block
                // device (64..128).
                let p = forged_payload(64, 6, salt);
                dev.probe_mut().ews(64, &p.to_bits()).unwrap();
            }
            _ => {
                // Torn/garbage burn: a malformed prefix.
                dev.probe_mut().ews(72, &[true; 40]).unwrap();
            }
        }
        // A shredded block somewhere in the unheated upper half.
        dev.probe_mut().shred(48 + shred_slot).unwrap();

        // Full rebuild: batched vs crawl.
        let mut crawl_dev = dev.clone();
        let batched = dev.rebuild_registry().unwrap();
        let crawl = crawl_dev.rebuild_registry_crawl().unwrap();
        prop_assert_eq!(&batched, &crawl, "rebuild diverged");
        prop_assert_eq!(batched.lines_found, slots.len());
        prop_assert!(!batched.suspicious_blocks.is_empty());
        let a: Vec<_> = dev.heated_lines().cloned().collect();
        let b: Vec<_> = crawl_dev.heated_lines().cloned().collect();
        prop_assert_eq!(a, b, "registries diverged");

        // Incremental refresh on the populated registry: same equivalence,
        // and the known lines are skipped rather than rescanned.
        let mut crawl_dev = dev.clone();
        let batched = dev.refresh_registry().unwrap();
        let crawl = crawl_dev.refresh_registry_crawl().unwrap();
        prop_assert_eq!(&batched, &crawl, "refresh diverged");
        prop_assert_eq!(batched.lines_skipped, slots.len());
        prop_assert_eq!(batched.lines_found, 0);
    }

    /// Incremental scrubbing over K epochs reports, cumulatively, exactly
    /// the tamper evidence full scrubs report: every epoch heats a fresh
    /// batch of lines and possibly tampers with one of them; the
    /// incremental pass (delta + flagged only) must produce the same
    /// tampered outcomes as a full pass over everything, epoch after
    /// epoch, while verifying no more lines than the full pass.
    #[test]
    fn incremental_scrub_accumulates_full_evidence(
        seed in any::<u64>(),
        salt in any::<u8>(),
        workers in 1usize..4,
        epochs in proptest::collection::vec((1u64..3, any::<bool>()), 1..4),
    ) {
        let mut dev = SeroDevice::new(
            sero::probe::device::ProbeDevice::builder().blocks(256).seed(seed).build(),
        );
        let mut incr_config = ScrubConfig::incremental(workers);
        incr_config.full_every = 0; // pure incremental after the first pass

        // Epoch 1: an initial population and a full baseline pass.
        let mut next_slot = 0u64;
        let mut heat_batch = |dev: &mut SeroDevice, count: u64, tamper: bool| -> Vec<Line> {
            let mut new_lines = Vec::new();
            for _ in 0..count {
                let line = Line::new(next_slot * 8, 3).unwrap();
                next_slot += 1;
                for pba in line.data_blocks() {
                    dev.write_block(pba, &pattern(pba, salt)).unwrap();
                }
                dev.heat_line(line, vec![], next_slot).unwrap();
                new_lines.push(line);
            }
            if tamper {
                // Rewrite a data block of the newest line via the raw
                // probe — tampering inside the delta, where an
                // incremental pass is entitled to see it.
                let victim = *new_lines.last().unwrap();
                dev.probe_mut()
                    .mws(victim.start() + 2, &pattern(99, !salt))
                    .unwrap();
            }
            new_lines
        };

        heat_batch(&mut dev, 2, false);
        let baseline = scrub_device(&mut dev, &incr_config).unwrap();
        prop_assert_eq!(baseline.summary.mode, ScrubMode::Full, "first pass is full");
        prop_assert_eq!(baseline.summary.tampered, 0);

        for (count, tamper) in epochs {
            let new_lines = heat_batch(&mut dev, count, tamper);

            // Full pass on a clone: the oracle for this epoch's evidence.
            let mut full_dev = dev.clone();
            let full = scrub_device(&mut full_dev, &ScrubConfig::with_workers(workers)).unwrap();

            let incremental = scrub_device(&mut dev, &incr_config).unwrap();
            prop_assert_eq!(incremental.summary.mode, ScrubMode::Incremental);
            prop_assert!(
                incremental.summary.lines <= full.summary.lines,
                "incremental verified more than full"
            );
            prop_assert!(
                incremental.summary.lines >= new_lines.len(),
                "incremental missed part of the delta"
            );

            // Identical cumulative tamper evidence: same tampered lines,
            // same per-line outcomes (evidence lists included).
            let incr_tampered: Vec<_> = incremental.tampered_lines().cloned().collect();
            let full_tampered: Vec<_> = full.tampered_lines().cloned().collect();
            prop_assert_eq!(incr_tampered, full_tampered, "evidence diverged");
            prop_assert_eq!(incremental.summary.tampered, full.summary.tampered);
        }
    }
}
