//! Property tests for the wire codec, in the same spirit as
//! `scrub_state_faults`: whatever a peer, an attacker, or line noise
//! hands the decoder — truncated frames, flipped bits, hostile length
//! fields, wrong versions — it must reject cleanly. It never panics,
//! never allocates unboundedly, and never yields a partial message.
//! And every legitimate message survives encode → decode byte-for-byte.

use proptest::prelude::*;
use sero::proto::frame::{decode_frame, encode_frame, read_frame, FrameError};
use sero::proto::{
    frame, ErrorCode, FrameKind, Request, Response, WireClass, WireError, WireFileInfo, WireLine,
    WireSchedState, WireScrubStatus, WireSliceOutcome, WireVerdict, MAX_PAYLOAD_BYTES,
    PROTO_VERSION,
};

/// Deterministically builds one of every request shape from drawn
/// fields: `tag` picks the variant, the other draws fill it.
#[allow(clippy::too_many_arguments)]
fn build_request(tag: usize, name: &str, data: &[u8], n1: u64, n2: u64, flag: bool) -> Request {
    let class = if flag {
        WireClass::Archival
    } else {
        WireClass::Normal
    };
    match tag % 14 {
        0 => Request::Ping,
        1 => Request::Create {
            name: name.into(),
            data: data.to_vec(),
            class,
        },
        2 => Request::Read { name: name.into() },
        3 => Request::Write {
            name: name.into(),
            data: data.to_vec(),
            class,
        },
        4 => Request::Remove { name: name.into() },
        5 => Request::Stat { name: name.into() },
        6 => Request::List {
            cursor: flag.then(|| name.into()),
            limit: (n2 % 1024) as u32,
        },
        7 => Request::Heat {
            name: name.into(),
            metadata: data.to_vec(),
            timestamp: n1,
        },
        8 => Request::Verify { name: name.into() },
        9 => Request::ScrubStart {
            budget_ns: n1,
            quantum_ns: n2,
            incremental: flag,
        },
        10 => Request::ScrubTick,
        11 => Request::ScrubStatus,
        12 => Request::FleetStatus,
        _ => Request::RawWrite {
            pba: n1,
            data: data.to_vec(),
        },
    }
}

fn build_response(tag: usize, name: &str, data: &[u8], n1: u64, n2: u64, flag: bool) -> Response {
    let line = WireLine {
        start: n1,
        order: (n2 % 16) as u32,
    };
    let status = WireScrubStatus {
        state: match n2 % 4 {
            0 => WireSchedState::Running,
            1 => WireSchedState::Paused,
            2 => WireSchedState::Cancelled,
            _ => WireSchedState::Complete,
        },
        epoch: n1,
        incremental: flag,
        verified: n2,
        remaining: n1 ^ n2,
        skipped: n1.wrapping_add(n2),
        tampered: n2 % 7,
        slices: n1 % 1000,
        scrub_device_ns: n2,
    };
    match tag % 10 {
        0 => Response::Error(WireError::new(
            ErrorCode::ALL[n1 as usize % ErrorCode::ALL.len()],
            name,
        )),
        1 => Response::Pong,
        2 => Response::Created { ino: n1 },
        3 => Response::Data {
            bytes: data.to_vec(),
        },
        4 => Response::Stat(WireFileInfo {
            ino: n1,
            size: n2,
            blocks: n1 % 64,
            mtime: n2,
            heated: flag.then_some(line),
            degraded: !flag,
        }),
        5 => Response::Names {
            names: vec![name.into(), String::new()],
            next: flag.then(|| name.into()),
        },
        6 => Response::Heated { line },
        7 => {
            if flag {
                Response::Verified(WireVerdict::Intact {
                    line,
                    digest: data.to_vec(),
                    timestamp: n1,
                    metadata: name.as_bytes().to_vec(),
                })
            } else {
                Response::Verified(WireVerdict::NotHeated)
            }
        }
        8 => Response::ScrubTicked {
            outcome: match n1 % 4 {
                0 => WireSliceOutcome::Ran {
                    lines: n1,
                    device_ns: n2,
                },
                1 => WireSliceOutcome::Throttled { resume_at_ns: n2 },
                2 => WireSliceOutcome::Paused,
                _ => WireSliceOutcome::Idle,
            },
            status,
        },
        _ => Response::ScrubState {
            status: flag.then_some(status),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every message shape survives the full frame round trip
    /// byte-for-byte: decode(encode(m)) == m AND re-encoding the decoded
    /// message reproduces the identical payload bytes.
    #[test]
    fn any_message_survives_the_frame_round_trip(
        tag in 0usize..64,
        name_bytes in proptest::collection::vec(97u8..123, 0..12),
        data in proptest::collection::vec(any::<u8>(), 0..600),
        n1 in any::<u64>(),
        n2 in any::<u64>(),
        flag in any::<bool>(),
    ) {
        let name = String::from_utf8(name_bytes).unwrap();

        let req = build_request(tag, &name, &data, n1, n2, flag);
        let framed = frame::encode_request(&req).unwrap();
        let (kind, payload, used) = decode_frame(&framed).expect("own frame must decode");
        prop_assert_eq!(kind, FrameKind::Request);
        prop_assert_eq!(used, framed.len());
        let decoded = Request::decode(payload).expect("own payload must decode");
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(decoded.encode(), payload.to_vec(), "re-encode must be byte-identical");

        let resp = build_response(tag, &name, &data, n1, n2, flag);
        let framed = frame::encode_response(&resp).unwrap();
        let (kind, payload, _) = decode_frame(&framed).expect("own frame must decode");
        prop_assert_eq!(kind, FrameKind::Response);
        let decoded = Response::decode(payload).expect("own payload must decode");
        prop_assert_eq!(&decoded, &resp);
        prop_assert_eq!(decoded.encode(), payload.to_vec(), "re-encode must be byte-identical");
    }

    /// A flipped byte anywhere in the frame — header, payload, or CRC —
    /// is rejected with a clean error, never a panic, never a decoded
    /// message (the CRC covers all of it).
    #[test]
    fn any_flipped_byte_is_rejected(
        tag in 0usize..64,
        data in proptest::collection::vec(any::<u8>(), 0..200),
        n1 in any::<u64>(),
        flip_at in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let req = build_request(tag, "x", &data, n1, n1, false);
        let mut framed = frame::encode_request(&req).unwrap();
        let at = flip_at.index(framed.len());
        framed[at] ^= xor;

        match decode_frame(&framed) {
            Err(_) => {} // any clean FrameError is acceptable
            Ok((_, payload, _)) => {
                // A flip confined to the payload area that still passes
                // CRC is impossible; but a flip in the *length* field can
                // re-frame a prefix whose CRC bytes happen to land right.
                // Even then the payload must not silently decode into a
                // different message and the remainder must not vanish:
                // re-encoding whatever decodes must differ from nothing —
                // in practice this arm means the flip produced another
                // valid frame, which CRC32 makes astronomically unlikely
                // for single-byte flips; fail loudly so we hear about it.
                prop_assert!(
                    Request::decode(payload).is_err(),
                    "flipped frame decoded to a valid message"
                );
            }
        }

        // The stream decoder agrees (and must not panic either).
        let _ = read_frame(&mut framed.as_slice());
    }

    /// Every truncation of a valid frame is rejected cleanly by the
    /// slice decoder, and the stream decoder either reports clean EOF
    /// (empty prefix) or an error — never a message, never a panic.
    #[test]
    fn any_truncation_is_rejected(
        tag in 0usize..64,
        data in proptest::collection::vec(any::<u8>(), 0..200),
        n1 in any::<u64>(),
        cut_at in any::<proptest::sample::Index>(),
    ) {
        let req = build_request(tag, "y", &data, n1, n1, true);
        let framed = frame::encode_request(&req).unwrap();
        let cut = cut_at.index(framed.len()); // strictly shorter
        let short = &framed[..cut];

        prop_assert!(matches!(
            decode_frame(short),
            Err(FrameError::Truncated { .. })
        ));
        match read_frame(&mut &short[..]) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only before any byte"),
            Ok(Some(_)) => prop_assert!(false, "truncated frame yielded a message"),
            Err(_) => {}
        }
    }

    /// Hostile length fields cannot balloon memory: any frame whose
    /// length claims more than MAX_PAYLOAD_BYTES is rejected before
    /// allocation, whatever the rest of the bytes say.
    #[test]
    fn oversize_length_claims_are_rejected(
        claimed in (MAX_PAYLOAD_BYTES as u32 + 1)..=u32::MAX,
        kind_byte in 0u8..2,
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut framed = Vec::new();
        framed.extend_from_slice(b"SERW");
        framed.push(PROTO_VERSION);
        framed.push(kind_byte);
        framed.extend_from_slice(&claimed.to_le_bytes());
        framed.extend_from_slice(&junk);
        prop_assert!(matches!(
            decode_frame(&framed),
            Err(FrameError::Oversize { .. })
        ));
        prop_assert!(matches!(
            read_frame(&mut framed.as_slice()),
            Err(FrameError::Oversize { .. })
        ));
    }

    /// A frame from a peer speaking any other protocol version is
    /// answered with UnsupportedVersion — the negotiation rule that lets
    /// old clients fail loudly instead of mis-parsing.
    #[test]
    fn foreign_versions_are_rejected_as_such(
        version in any::<u8>(),
        tag in 0usize..64,
        n1 in any::<u64>(),
    ) {
        prop_assume!(version != PROTO_VERSION);
        let req = build_request(tag, "z", b"", n1, n1, false);
        let mut framed = frame::encode_request(&req).unwrap();
        framed[4] = version;
        prop_assert!(matches!(
            decode_frame(&framed),
            Err(FrameError::UnsupportedVersion { found }) if found == version
        ));
        // …and the error maps to the wire-stable VersionMismatch code.
        let wire = WireError::from(FrameError::UnsupportedVersion { found: version });
        prop_assert_eq!(wire.code, ErrorCode::VersionMismatch);
    }

    /// Arbitrary garbage bytes never panic either decoder.
    #[test]
    fn arbitrary_garbage_never_panics(
        junk in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_frame(&junk);
        let _ = read_frame(&mut junk.as_slice());
        let _ = Request::decode(&junk);
        let _ = Response::decode(&junk);
        let _ = encode_frame(FrameKind::Request, &junk); // total for small payloads
    }
}
