//! Cross-layer properties of the bulk I/O fast path: extent transfers
//! must be byte-identical to the single-block loops they replace —
//! including across heated-line boundaries and over bad blocks — and the
//! parallel scrub must report exactly the tamper evidence the serial
//! `verify_line` loop reports.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sero::core::device::SeroDevice;
use sero::core::line::Line;
use sero::core::scrub::{scrub_device, ScrubConfig};
use sero::probe::device::ProbeDevice;

fn pattern(pba: u64, salt: u8) -> [u8; 512] {
    let mut s = [0u8; 512];
    for (j, b) in s.iter_mut().enumerate() {
        *b = (pba as u8).wrapping_mul(97).wrapping_add(j as u8) ^ salt;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Probe-level extent reads agree with the mrs loop block for block,
    /// including bad (shredded) blocks, which must error in both paths
    /// without poisoning their neighbours.
    #[test]
    fn probe_extent_read_matches_loop(
        seed in any::<u64>(),
        start in 0u64..8,
        count in 1u64..24,
        shred_offset in 0u64..24,
    ) {
        prop_assume!(start + count <= 32);
        let mut dev = ProbeDevice::builder().blocks(32).seed(seed).build();
        for pba in 0..32 {
            dev.mws(pba, &pattern(pba, seed as u8)).unwrap();
        }
        if shred_offset < count {
            dev.shred(start + shred_offset).unwrap();
        }

        let mut loop_dev = dev.clone();
        let batched = dev.read_blocks(start, count).unwrap();
        prop_assert_eq!(batched.len(), count as usize);
        for (i, sector) in batched.into_iter().enumerate() {
            let pba = start + i as u64;
            match (sector, loop_dev.mrs(pba)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.data, b.data, "block {}", pba),
                (Err(_), Err(_)) => prop_assert_eq!(Some(shred_offset), Some(i as u64)),
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "batch {:?} vs loop {:?} at block {pba}",
                        a.map(|s| s.erased_bytes),
                        b.map(|s| s.erased_bytes)
                    )))
                }
            }
        }
    }

    /// Probe-level extent writes leave the medium byte-identical to the
    /// mws loop writing the same data.
    #[test]
    fn probe_extent_write_matches_loop(
        seed in any::<u64>(),
        start in 0u64..8,
        count in 1usize..24,
    ) {
        prop_assume!(start as usize + count <= 32);
        let sectors: Vec<[u8; 512]> = (0..count)
            .map(|i| pattern(start + i as u64, seed as u8))
            .collect();

        let mut batch_dev = ProbeDevice::builder().blocks(32).seed(seed).build();
        let mut loop_dev = ProbeDevice::builder().blocks(32).seed(seed).build();
        batch_dev.write_blocks(start, &sectors).unwrap();
        for (i, data) in sectors.iter().enumerate() {
            loop_dev.mws(start + i as u64, data).unwrap();
        }
        for i in 0..count as u64 {
            let a = batch_dev.mrs(start + i).unwrap().data;
            let b = loop_dev.mrs(start + i).unwrap().data;
            prop_assert_eq!(a, b, "block {}", start + i);
            prop_assert_eq!(a, sectors[i as usize], "round trip at {}", start + i);
        }
    }

    /// Protocol-level batch reads across a heated-line boundary return
    /// exactly what read_block returns, and batch writes refuse read-only
    /// targets exactly like write_block.
    #[test]
    fn device_batch_respects_heated_lines(
        order in 1u32..3,
        slot in 0u64..3,
        salt in any::<u8>(),
    ) {
        let mut dev = SeroDevice::with_blocks(32);
        for pba in 0..32 {
            dev.write_block(pba, &pattern(pba, salt)).unwrap();
        }
        let len = 1u64 << order;
        let line = Line::new(8 + slot * len, order).unwrap();
        dev.heat_line(line, vec![], 0).unwrap();

        // A scattered list spanning WMRM space and the line's data blocks.
        let pbas: Vec<u64> = (0..32)
            .filter(|&pba| pba != line.hash_block())
            .collect();
        let batched = dev.read_blocks(&pbas).unwrap();
        let mut loop_dev = dev.clone();
        for (i, &pba) in pbas.iter().enumerate() {
            prop_assert_eq!(batched[i], loop_dev.read_block(pba).unwrap(), "block {}", pba);
        }

        // Including the hash block errs exactly like the loop does.
        prop_assert!(dev.read_blocks(&[0, line.hash_block()]).is_err());
        prop_assert!(loop_dev.read_block(line.hash_block()).is_err());

        // Writes into the heated line are refused up front.
        let err = dev.write_blocks(&[0, line.start() + 1], &[pattern(0, salt); 2]);
        prop_assert!(err.is_err());
        prop_assert_eq!(dev.read_block(0).unwrap(), pattern(0, salt), "nothing written");
    }

    /// The parallel scrub reports the same per-line outcome — the same
    /// evidence — as the serial verify_line loop, for any mix of intact,
    /// magnetically rewritten, and hash-vandalised lines.
    #[test]
    fn parallel_scrub_equals_serial_verify(
        workers in 2usize..5,
        rewrite_victim in 0u64..6,
        vandal_victim in 0u64..6,
        salt in any::<u8>(),
    ) {
        let mut dev = SeroDevice::with_blocks(64);
        let lines: Vec<Line> = (0..6).map(|i| Line::new(i * 8, 3).unwrap()).collect();
        for &line in &lines {
            for pba in line.data_blocks() {
                dev.write_block(pba, &pattern(pba, salt)).unwrap();
            }
            dev.heat_line(line, vec![], 0).unwrap();
        }
        // Attack 1: rewrite a protected data block through the raw probe.
        dev.probe_mut()
            .mws(lines[rewrite_victim as usize].start() + 2, &pattern(99, !salt))
            .unwrap();
        // Attack 2: burn extra dots into a hash block's first cell.
        let hash = lines[vandal_victim as usize].hash_block();
        let dot = dev.probe().electrical_cell_dot(hash, 0);
        dev.probe_mut().ewb(dot);
        dev.probe_mut().ewb(dot + 1);

        let mut serial_dev = dev.clone();
        let serial = serial_dev.verify_lines(&lines).unwrap();
        let report = scrub_device(&mut dev, &ScrubConfig::with_workers(workers)).unwrap();

        prop_assert_eq!(report.outcomes.len(), serial.len());
        for (scrubbed, (line, outcome)) in report.outcomes.iter().zip(serial.iter()) {
            prop_assert_eq!(scrubbed.line, *line);
            prop_assert_eq!(&scrubbed.outcome, outcome, "evidence diverged on {}", line);
        }
        let expected_tampered = if rewrite_victim == vandal_victim { 1 } else { 2 };
        prop_assert_eq!(report.summary.tampered, expected_tampered);
        prop_assert_eq!(report.summary.lines, 6);
    }
}
