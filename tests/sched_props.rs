//! Cross-layer properties of background scrub scheduling and persisted
//! scrub epochs: a budgeted, paused, resumed, arbitrarily-sliced
//! background pass must produce byte-identical tamper evidence to an
//! uninterrupted exclusive pass, and the epochs a detach would forget
//! must survive the journey through the persisted scrub state — whether
//! it rides the fs checkpoint or a raw-device `ScrubStateStore` region —
//! so a remount's incremental delta is exactly the pre-detach delta.

use proptest::prelude::*;
use sero::core::device::SeroDevice;
use sero::core::journal::ScrubStateStore;
use sero::core::line::Line;
use sero::core::sched::{SchedConfig, ScrubScheduler, SliceOutcome};
use sero::core::scrub::{pass_work_list, scrub_device, ScrubConfig, ScrubMode};
use sero::fs::alloc::WriteClass;
use sero::fs::fs::{FsConfig, SeroFs};

fn pattern(pba: u64, salt: u8) -> [u8; 512] {
    let mut s = [0u8; 512];
    for (j, b) in s.iter_mut().enumerate() {
        *b = (pba as u8).wrapping_mul(131).wrapping_add(j as u8) ^ salt;
    }
    s
}

/// Heats `slots` order-3 lines (8 blocks each) on a fresh device.
fn heated_device(seed: u64, salt: u8, slots: &[u64]) -> (SeroDevice, Vec<Line>) {
    let mut dev = SeroDevice::new(
        sero::probe::device::ProbeDevice::builder()
            .blocks(256)
            .seed(seed)
            .build(),
    );
    let mut lines = Vec::new();
    for &slot in slots {
        let line = Line::new(slot * 8, 3).unwrap();
        for pba in line.data_blocks() {
            dev.write_block(pba, &pattern(pba, salt)).unwrap();
        }
        dev.heat_line(line, vec![salt], 1_199_145_600 + slot)
            .unwrap();
        lines.push(line);
    }
    (dev, lines)
}

/// Drives `sched` to completion, pausing/resuming at `pause_every` slices
/// and idling through throttle windows.
fn drain_with_pauses(sched: &mut ScrubScheduler, dev: &mut SeroDevice, pause_every: usize) {
    let mut since_pause = 0usize;
    let mut guard = 0usize;
    while !sched.is_complete() {
        guard += 1;
        assert!(guard < 100_000, "scheduler failed to converge");
        if pause_every != 0 && since_pause >= pause_every {
            sched.pause();
            // A paused pass refuses slices without touching the device.
            assert_eq!(sched.run_slice(dev).unwrap(), SliceOutcome::Paused);
            sched.resume();
            since_pause = 0;
        }
        match sched.run_slice(dev).unwrap() {
            SliceOutcome::Ran { .. } => since_pause += 1,
            SliceOutcome::Throttled { resume_at_ns } => {
                let now = dev.probe().clock().elapsed_ns();
                dev.probe_mut().advance_clock((resume_at_ns - now) as u64);
            }
            other => panic!("unexpected slice outcome {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A budgeted/paused/resumed background pass — arbitrary budget,
    /// quantum, and pause cadence, with random tampering planted first —
    /// reports byte-identical tamper evidence to an uninterrupted
    /// exclusive pass over a clone, and advances the same epoch.
    #[test]
    fn interrupted_background_pass_equals_exclusive_pass(
        seed in any::<u64>(),
        salt in any::<u8>(),
        raw_slots in proptest::collection::vec(0u64..16, 2..10),
        victims in proptest::collection::vec(0usize..10, 0..3),
        budget_us in prop_oneof![Just(0u64), 200..5_000u64],
        quantum_factor in 1u64..8,
        pause_every in 0usize..4,
    ) {
        let slots: std::collections::BTreeSet<u64> = raw_slots.into_iter().collect();
        let slots: Vec<u64> = slots.into_iter().collect();
        let (mut dev, lines) = heated_device(seed, salt, &slots);
        // Plant tamper evidence: raw rewrites of some data blocks.
        for &v in &victims {
            let line = lines[v % lines.len()];
            dev.probe_mut().mws(line.start() + 1 + (v as u64 % 7), &[0xAA; 512]).unwrap();
        }

        let mut exclusive_dev = dev.clone();
        let exclusive = scrub_device(&mut exclusive_dev, &ScrubConfig::default()).unwrap();

        let budget_ns = budget_us * 1_000;
        let config = if budget_ns == 0 {
            SchedConfig::greedy()
        } else {
            SchedConfig::budgeted(budget_ns, budget_ns * quantum_factor).unwrap()
        };
        let mut sched = ScrubScheduler::start(&dev, config);
        drain_with_pauses(&mut sched, &mut dev, pause_every);
        let report = sched.report();

        // Byte-identical evidence: same outcomes (sorted by address), the
        // same per-line Evidence payloads inside, same totals.
        prop_assert_eq!(&report.outcomes, &exclusive.outcomes);
        prop_assert_eq!(report.summary.lines, exclusive.summary.lines);
        prop_assert_eq!(report.summary.tampered, exclusive.summary.tampered);
        prop_assert_eq!(report.summary.epoch, exclusive.summary.epoch);
        prop_assert_eq!(dev.scrub_epoch(), exclusive_dev.scrub_epoch());

        // And the two devices agree on what the *next* incremental pass
        // owes: flagged (tampered) lines, nothing else.
        prop_assert_eq!(
            pass_work_list(&dev, ScrubMode::Incremental),
            pass_work_list(&exclusive_dev, ScrubMode::Incremental)
        );
    }

    /// Persisted scrub state round-trips through a raw-device
    /// `ScrubStateStore` region across detach/attach: the remounted
    /// incremental delta is exactly the pre-detach delta, for any split
    /// of the population into scrubbed / freshly-heated / flagged lines.
    #[test]
    fn persisted_epochs_survive_detach(
        seed in any::<u64>(),
        salt in any::<u8>(),
        raw_initial in proptest::collection::vec(0u64..12, 1..6),
        raw_late in proptest::collection::vec(12u64..20, 0..4),
        flag_pick in 0usize..64,
        flag_some in any::<bool>(),
    ) {
        let initial: std::collections::BTreeSet<u64> = raw_initial.into_iter().collect();
        let initial: Vec<u64> = initial.into_iter().collect();
        let (mut dev, lines) = heated_device(seed, salt, &initial);

        // Epoch 1 covers the initial population…
        scrub_device(&mut dev, &ScrubConfig::default()).unwrap();
        // …then a delta lands: late heats plus maybe a refused write.
        let late: std::collections::BTreeSet<u64> = raw_late.into_iter().collect();
        for &slot in &late {
            let line = Line::new(slot * 8, 3).unwrap();
            for pba in line.data_blocks() {
                dev.write_block(pba, &pattern(pba, salt)).unwrap();
            }
            dev.heat_line(line, vec![], 1).unwrap();
        }
        if flag_some {
            let line = lines[flag_pick % lines.len()];
            prop_assert!(dev.write_block(line.start() + 1, &[0u8; 512]).is_err());
        }

        let delta_before = pass_work_list(&dev, ScrubMode::Incremental);
        let epoch_before = dev.scrub_epoch();

        // Persist into a WMRM region, detach, attach, restore.
        let store = ScrubStateStore::new(20 * 8, 256 - 20 * 8).unwrap();
        store.save(&mut dev).unwrap();
        dev.forget_registry();
        dev.rebuild_registry().unwrap();
        let restore = store.load(&mut dev).unwrap().expect("state persisted");
        // Only informative records persist: the verified initial lines
        // (late heats are epoch-0/unflagged, exactly the rebuild default).
        prop_assert_eq!(restore.restored, initial.len());

        prop_assert_eq!(dev.scrub_epoch(), epoch_before);
        prop_assert_eq!(pass_work_list(&dev, ScrubMode::Incremental), delta_before);
    }
}

/// The acceptance-criteria integration test: a remount after detach
/// performs an *incremental* pass (persisted epochs via the fs
/// checkpoint), not a full one — and a v2-checkpoint fs round-trips all
/// of directory, inodes, and scrub bookkeeping.
#[test]
fn remount_after_detach_scrubs_incrementally() {
    let mut fs = SeroFs::format(SeroDevice::with_blocks(2048), FsConfig::default()).unwrap();
    for i in 0..10 {
        let name = format!("ledger-{i:02}");
        fs.create(&name, &vec![i as u8; 4000], WriteClass::Archival)
            .unwrap();
        fs.heat(
            &name,
            format!("q{i}").into_bytes(),
            1_199_145_600 + i as u64,
        )
        .unwrap();
    }
    // Background pass covers everything; sync persists the epochs.
    let mut scrub = fs.scrub_background(SchedConfig::default());
    while !scrub.is_complete() {
        match scrub.tick(&mut fs).unwrap() {
            SliceOutcome::Throttled { resume_at_ns } => {
                let now = fs.device().probe().clock().elapsed_ns();
                fs.device_mut()
                    .probe_mut()
                    .advance_clock((resume_at_ns - now) as u64);
            }
            SliceOutcome::Ran { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(fs.device().scrub_epoch(), 1);

    // Post-pass delta: one new heated file.
    fs.create("late-addendum", &[7u8; 2000], WriteClass::Archival)
        .unwrap();
    let late = fs.heat("late-addendum", vec![], 999).unwrap();
    fs.sync().unwrap();

    // Detach (drop every byte of volatile state), then remount.
    let mut dev = fs.into_device();
    dev.forget_registry();
    let mut fs = SeroFs::mount(dev).unwrap();
    assert_eq!(fs.scrub_restore().unwrap().restored, 10);
    assert_eq!(fs.list().len(), 11);
    assert_eq!(fs.read("ledger-03").unwrap(), vec![3u8; 4000]);

    // The remounted pass is incremental and covers only the delta.
    let report = fs.scrub_incremental().unwrap();
    assert_eq!(report.summary.mode, ScrubMode::Incremental);
    assert_eq!(report.summary.lines, 1);
    assert_eq!(report.outcomes[0].line, late);
    assert_eq!(report.summary.skipped, 10);
    assert!(report.summary.is_clean());

    // Counterfactual: a device that lost the persisted state (a fresh
    // SERO wrapper over the same medium, no checkpoint import) falls back
    // to a full pass on its next incremental request — all 11 lines.
    let mut cold = SeroDevice::new(fs.device().probe().clone());
    cold.rebuild_registry().unwrap();
    let full = scrub_device(&mut cold, &ScrubConfig::incremental(1)).unwrap();
    assert_eq!(full.summary.mode, ScrubMode::Full);
    assert_eq!(full.summary.lines, 11);
}

/// Cancelling a background fs pass mid-flight must leave the completed
/// epoch untouched (the cancelled-pass regression from the satellite
/// list, at the fs layer).
#[test]
fn cancelled_fs_pass_keeps_epoch_and_next_pass_covers_remainder() {
    let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::default()).unwrap();
    for i in 0..6 {
        let name = format!("doc-{i}");
        fs.create(&name, &vec![i as u8; 3000], WriteClass::Archival)
            .unwrap();
        fs.heat(&name, vec![], i as u64).unwrap();
    }
    let mut scrub = fs.scrub_background(SchedConfig::slice_budget(1).unwrap());
    scrub.tick(&mut fs).unwrap();
    scrub.cancel();
    assert_eq!(fs.device().scrub_epoch(), 0, "cancelled pass never counts");
    let verified = scrub.report().outcomes.len();
    assert_eq!(verified, 1);

    // The next pass (epoch 1) covers all six lines: nothing was lost,
    // nothing double-counted.
    let report = fs.scrub(&ScrubConfig::default()).unwrap();
    assert_eq!((report.summary.epoch, report.summary.lines), (1, 6));
}
