//! Wire-path fault injection: stalled peers, dead servers, and torn
//! frames. Pins the self-healing contract — a stalled or dead peer
//! never wedges `sero-client` (deadlines) or pins a `sero-server`
//! worker (idle reap), idempotent requests heal over a fresh connection,
//! and mutations are never retried.

use sero_client::{ClientConfig, SeroClient};
use sero_core::device::SeroDevice;
use sero_fs::fs::{FsConfig, SeroFs};
use sero_server::{PoolKind, SeroServer, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn spawn_server(blocks: u64, config: ServerConfig) -> (ServerHandle, SocketAddr) {
    let fs = SeroFs::format(SeroDevice::with_blocks(blocks), FsConfig::default()).unwrap();
    let handle = SeroServer::bind("127.0.0.1:0", fs, config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr();
    (handle, addr)
}

fn quick_client(addr: SocketAddr) -> SeroClient {
    SeroClient::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

/// A peer that sends half a frame header and then stalls must not pin
/// the only worker: the server's read deadline reaps it and the next
/// client gets served.
#[test]
fn stalled_peer_is_reaped_and_does_not_pin_a_worker() {
    let (handle, addr) = spawn_server(
        256,
        ServerConfig {
            pool: PoolKind::SharedQueue,
            threads: 1, // a single worker makes pinning observable
            read_timeout: Some(Duration::from_millis(150)),
            ..ServerConfig::default()
        },
    );

    // The stall: four header bytes, then silence. Keep the socket open
    // so only the reap (not an EOF) can free the worker.
    let mut staller = TcpStream::connect(addr).unwrap();
    staller.write_all(&[0x53, 0x46, 0x52, 0x4D]).unwrap();

    // The victim: with the worker pinned this ping would wait forever;
    // the reap frees it within the read deadline.
    let t0 = Instant::now();
    let mut client = quick_client(addr);
    client.ping().expect("stalled peer must not block service");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "served only after an unreasonable delay: {:?}",
        t0.elapsed()
    );

    drop(staller);
    handle.shutdown();
}

/// A server that accepts and then never answers must not hang the
/// client: the read deadline surfaces a typed timeout.
#[test]
fn client_deadline_fires_against_a_silent_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Accept and hold connections open without ever responding.
    let sink = thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((conn, _)) = listener.accept() {
            held.push(conn);
            if held.len() >= 3 {
                break;
            }
        }
        thread::sleep(Duration::from_secs(2));
    });

    let mut client = SeroClient::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(120)),
            max_attempts: 2,
            backoff_base: Duration::from_millis(5),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let t0 = Instant::now();
    let err = client.ping().expect_err("silent server must time out");
    assert!(err.is_transport(), "not a transport error: {err:?}");
    assert!(err.is_timeout(), "not a timeout: {err:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "deadline did not bound the wait: {:?}",
        t0.elapsed()
    );
    drop(client);
    // The initial connect plus one retry reconnect used two accepts;
    // a throwaway third lets the sink thread exit.
    let _ = TcpStream::connect(addr);
    sink.join().unwrap();
}

/// A proxy that tears the first response mid-frame and then behaves:
/// the idempotent read self-heals over a fresh connection, invisibly to
/// the caller.
#[test]
fn idempotent_read_heals_across_a_torn_frame() {
    let (handle, addr) = spawn_server(512, ServerConfig::default());

    // Seed a file to read, directly.
    let mut seeder = quick_client(addr);
    let body = vec![0xA7u8; 900];
    seeder
        .create("healme.bin", &body, sero_proto::WireClass::Normal)
        .unwrap();

    let proxy_addr = spawn_tearing_proxy(addr, 1);
    let mut client = SeroClient::connect_with(
        proxy_addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            max_attempts: 3,
            backoff_base: Duration::from_millis(2),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // First attempt sees the torn frame; the retry reconnects through
    // the now-honest proxy and returns the right bytes.
    assert_eq!(client.read("healme.bin").unwrap(), body);

    handle.shutdown();
}

/// Mutations never retry: a create whose response is torn surfaces the
/// transport error — the client does not silently resend a write whose
/// fate it cannot know. The server, which *did* apply it, still shows
/// exactly one file.
#[test]
fn mutations_surface_transport_errors_instead_of_retrying() {
    let (handle, addr) = spawn_server(512, ServerConfig::default());
    let proxy_addr = spawn_tearing_proxy(addr, 1);

    let mut client = SeroClient::connect_with(
        proxy_addr,
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            max_attempts: 3,
            backoff_base: Duration::from_millis(2),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let err = client
        .create("once.bin", b"exactly once", sero_proto::WireClass::Normal)
        .expect_err("torn response must surface");
    // Had the client retried, the second attempt would have answered a
    // typed Exists from the server, not a transport error.
    assert!(err.is_transport(), "mutation was retried: {err:?}");

    // The command *was* applied — the fault hit the response, not the
    // request — and exactly once.
    let mut direct = quick_client(addr);
    let names = direct.list().unwrap();
    assert_eq!(names, vec!["once.bin".to_string()]);

    handle.shutdown();
}

/// A TCP proxy to `upstream` that truncates the response of the first
/// `tears` connections halfway and closes, then forwards every later
/// connection untouched. Returns the proxy's address.
fn spawn_tearing_proxy(upstream: SocketAddr, tears: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let torn = Arc::new(AtomicUsize::new(0));
    thread::spawn(move || {
        for inbound in listener.incoming() {
            let Ok(mut inbound) = inbound else { break };
            let torn = Arc::clone(&torn);
            thread::spawn(move || {
                let Ok(mut out) = TcpStream::connect(upstream) else {
                    return;
                };
                // Forward one request (requests here fit one read).
                let mut buf = [0u8; 65536];
                let Ok(n) = inbound.read(&mut buf) else {
                    return;
                };
                if n == 0 || out.write_all(&buf[..n]).is_err() {
                    return;
                }
                // Collect the full response frame.
                let mut resp = Vec::new();
                loop {
                    match out.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            resp.extend_from_slice(&buf[..n]);
                            if resp.len() >= 10 {
                                let len = u32::from_le_bytes(resp[6..10].try_into().unwrap());
                                if resp.len() >= 14 + len as usize {
                                    break;
                                }
                            }
                        }
                    }
                }
                if torn.fetch_add(1, Ordering::SeqCst) < tears {
                    // Tear: half the frame, then hang up mid-frame.
                    let _ = inbound.write_all(&resp[..resp.len() / 2]);
                    return;
                }
                if inbound.write_all(&resp).is_err() {
                    return;
                }
                // Honest pass-through for the rest of the connection.
                let (Ok(mut in_r), Ok(mut out_r)) = (inbound.try_clone(), out.try_clone()) else {
                    return;
                };
                let up = thread::spawn(move || {
                    let _ = std::io::copy(&mut in_r, &mut out);
                });
                let _ = std::io::copy(&mut out_r, &mut inbound);
                let _ = up.join();
            });
        }
    });
    addr
}
