//! End-to-end integration: the full stack working together — file system
//! over SERO device over probe simulator, with archival substrates and
//! the attack battery on top.

use sero::attack::attacks::{run_all, Outcome};
use sero::core::device::SeroDevice;
use sero::crypto::sha256;
use sero::fossil::FossilIndex;
use sero::fs::fsck;
use sero::fs::prelude::*;
use sero::venti::Venti;
use sero::workload::{AuditLogWorkload, DbSnapshotWorkload, Op, Workload};

fn apply(fs: &mut SeroFs, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Create {
                name,
                data,
                archival,
            } => {
                let class = if *archival {
                    WriteClass::Archival
                } else {
                    WriteClass::Normal
                };
                fs.create(name, data, class).unwrap();
            }
            Op::Overwrite { name, data } => fs.write(name, data, WriteClass::Normal).unwrap(),
            Op::Delete { name } => fs.remove(name).unwrap(),
            Op::Read { name } => {
                fs.read(name).unwrap();
            }
            Op::Heat { name, metadata } => {
                fs.heat(name, metadata.clone(), 0).unwrap();
            }
        }
    }
}

#[test]
fn audit_workload_end_to_end() {
    let mut fs = SeroFs::format(SeroDevice::with_blocks(2048), FsConfig::default()).unwrap();
    let workload = AuditLogWorkload::small();
    apply(&mut fs, &workload.ops(11));

    // Every batch verifies; every batch is immutable; bimodality holds.
    for b in 0..workload.batches {
        let name = format!("audit-{b:04}");
        assert!(fs.verify(&name).unwrap().is_intact());
        assert!(fs.write(&name, b"x", WriteClass::Normal).is_err());
    }
    assert!(fs.bimodality_score() > 0.9);

    // Survives sync + remount with everything intact.
    fs.sync().unwrap();
    let mut fs2 = SeroFs::mount(fs.into_device()).unwrap();
    for b in 0..workload.batches {
        let name = format!("audit-{b:04}");
        assert!(fs2.verify(&name).unwrap().is_intact());
    }
}

#[test]
fn db_snapshot_workload_with_recovery() {
    let mut fs = SeroFs::format(SeroDevice::with_blocks(2048), FsConfig::default()).unwrap();
    let workload = DbSnapshotWorkload::small();
    apply(&mut fs, &workload.ops(12));
    fs.sync().unwrap();

    let snapshot_data: Vec<Vec<u8>> = (0..workload.epochs)
        .map(|e| fs.read(&format!("snapshot-{e:02}")).unwrap())
        .collect();

    // Catastrophe: checkpoint wiped.
    let mut dev = fs.into_device();
    for b in 0..16 {
        dev.probe_mut().mws(b, &[0u8; 512]).unwrap();
    }
    let recovered = fsck::recover_heated_files(&mut dev).unwrap();
    assert_eq!(recovered.len(), workload.epochs, "all snapshots recovered");
    for r in &recovered {
        assert!(r.intact, "{} failed verification", r.name);
        let epoch: usize = r.name["snapshot-".len()..].parse().unwrap();
        assert_eq!(r.data, snapshot_data[epoch]);
    }
}

#[test]
fn fs_and_raw_lines_coexist() {
    // The file system shares the device with application-managed lines
    // (e.g. a Venti seal) without stepping on them.
    let mut fs = SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default()).unwrap();
    fs.create("file", &[1u8; 4096], WriteClass::Normal).unwrap();

    // An application heats a raw line through the device, in space the FS
    // has not touched (high blocks are archival-reserved; pick the middle).
    let line = sero::core::line::Line::new(256, 2).unwrap();
    for pba in line.data_blocks() {
        fs.device_mut().write_block(pba, &[0xAA; 512]).unwrap();
    }
    fs.device_mut()
        .heat_line(line, b"app line".to_vec(), 1)
        .unwrap();

    // FS keeps working, the raw line verifies, fsck skips it gracefully.
    fs.create("file2", &[2u8; 2048], WriteClass::Normal)
        .unwrap();
    assert_eq!(fs.read("file2").unwrap(), vec![2u8; 2048]);
    assert!(fs.device_mut().verify_line(line).unwrap().is_intact());
    let mut dev = fs.into_device();
    let recovered = fsck::recover_heated_files(&mut dev).unwrap();
    assert!(recovered.is_empty(), "raw app lines are not files");
}

#[test]
fn archival_stores_share_one_medium_model() {
    // Venti and the fossil index each on their own device, both surviving
    // an index/registry wipe because all their trust is physical.
    let mut venti = Venti::new(SeroDevice::with_blocks(1024));
    let data: Vec<u8> = (0..30 * 512).map(|i| (i % 199) as u8).collect();
    let obj = venti.store_object(&data).unwrap();
    let line = venti.seal(&obj, b"seal".to_vec(), 5).unwrap();
    venti.rebuild_index().unwrap();
    assert_eq!(venti.load_object(&obj).unwrap(), data);
    assert!(venti.verify_seal(line).unwrap().is_intact);

    let mut index = FossilIndex::new(SeroDevice::with_blocks(1024));
    for i in 0..100u64 {
        index.insert(sha256(&i.to_le_bytes()), i).unwrap();
    }
    assert!(index.fossilised_nodes() > 0);
    let (verified, findings) = index.verify_fossils().unwrap();
    assert_eq!(verified, index.fossilised_nodes());
    assert!(findings.is_empty());
}

#[test]
fn full_attack_battery_matches_paper() {
    let reports = run_all();
    assert_eq!(reports.len(), 13);
    for report in &reports {
        assert!(report.matches_paper(), "{report}");
        assert_ne!(report.observed, Outcome::Undetected, "{report}");
    }
}
