//! Fault injection against the checkpoint path, in the discipline of
//! `scrub_state_faults`: whatever a torn write or bit rot does to the
//! checkpoint region — flipped bytes, a truncated multi-block write, a
//! corrupted length prefix — `SeroFs::mount` must answer with a typed
//! [`FsError::Corrupt`] (or a typed device error), or mount a *complete*
//! file system. It must never come up silently partial. Corruption
//! confined to the embedded scrub-state section is the one sanctioned
//! fallback: the mount succeeds with the namespace intact and the next
//! scrub simply runs a full pass.

use proptest::prelude::*;
use sero::codec::crc32::crc32;
use sero::core::device::SeroDevice;
use sero::core::scrub::{scrub_device, ScrubConfig};
use sero::fs::alloc::WriteClass;
use sero::fs::error::FsError;
use sero::fs::fs::{FsConfig, SeroFs};
use sero::probe::device::ProbeDevice;
use sero::probe::SECTOR_DATA_BYTES;
use std::collections::BTreeMap;

const T0: u64 = 1_199_145_600;

fn pattern(n: u64, salt: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (n as u8).wrapping_mul(167).wrapping_add(j as u8) ^ salt)
        .collect()
}

/// A formatted file system with one heated archival file, `nfiles`
/// normal files, a completed scrub pass, and the checkpoint synced.
/// Returns the cold medium (probe clone) plus the expected namespace.
fn synced_fs(seed: u64, salt: u8, nfiles: usize) -> (ProbeDevice, BTreeMap<String, Vec<u8>>) {
    let probe = ProbeDevice::builder().blocks(256).seed(seed).build();
    let mut fs = SeroFs::format(SeroDevice::new(probe), FsConfig::default()).unwrap();
    let mut expect = BTreeMap::new();
    let ledger = pattern(99, salt, 1400);
    fs.create("ledger", &ledger, WriteClass::Archival).unwrap();
    fs.heat("ledger", vec![salt], T0).unwrap();
    expect.insert("ledger".to_string(), ledger);
    for i in 0..nfiles {
        let name = format!("file-{i}");
        let body = pattern(i as u64, salt, 300 + 97 * i);
        fs.create(&name, &body, WriteClass::Normal).unwrap();
        expect.insert(name, body);
    }
    scrub_device(fs.device_mut(), &ScrubConfig::default()).unwrap();
    fs.sync().unwrap();
    (fs.device().probe().clone(), expect)
}

/// The checkpoint exactly as it sits in the region: 8-byte length prefix
/// plus `total` bytes of record, reassembled across blocks.
fn read_framed(probe: &mut ProbeDevice) -> Vec<u8> {
    let first = probe.mrs(0).unwrap().data;
    let total = u64::from_le_bytes(first[..8].try_into().unwrap()) as usize;
    let mut framed = first.to_vec();
    let mut next = 1u64;
    while framed.len() < 8 + total {
        framed.extend_from_slice(&probe.mrs(next).unwrap().data);
        next += 1;
    }
    framed.truncate(8 + total);
    framed
}

fn write_framed(probe: &mut ProbeDevice, framed: &[u8]) {
    for (i, chunk) in framed.chunks(SECTOR_DATA_BYTES).enumerate() {
        let mut sector = [0u8; SECTOR_DATA_BYTES];
        sector[..chunk.len()].copy_from_slice(chunk);
        probe.mws(i as u64, &sector).unwrap();
    }
}

/// Mutates the checkpoint *body* and re-seals it with a valid CRC and
/// length prefix — for reaching the typed parse errors that sit behind
/// the CRC check.
fn rewrite_checkpoint(probe: &mut ProbeDevice, mutate: impl FnOnce(&mut Vec<u8>)) {
    let framed = read_framed(probe);
    let buf = &framed[8..];
    let mut body = buf[..buf.len() - 4].to_vec();
    mutate(&mut body);
    let crc = crc32(&body);
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(&((body.len() + 4) as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    write_framed(probe, &out);
}

/// Offset of the scrub-state section's length field inside the body
/// (magic, version, geometry, policy, next_ino, inode table, directory).
fn scrub_len_pos(body: &[u8]) -> usize {
    let mut pos = 4 + 1 + 8 + 8 + 1 + 8;
    let n_inodes = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 4 + n_inodes * 16;
    let n_dirents = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 4;
    for _ in 0..n_dirents {
        pos += 8;
        let len = body[pos] as usize;
        pos += 1 + len;
    }
    pos
}

fn try_mount(probe: &ProbeDevice) -> Result<SeroFs, FsError> {
    SeroFs::mount(SeroDevice::new(probe.clone()))
}

/// A mount that comes up at all must come up COMPLETE: the full
/// namespace, every byte of every file.
fn assert_intact(fs: &mut SeroFs, expect: &BTreeMap<String, Vec<u8>>) {
    let mut names = fs.list();
    names.sort();
    let want: Vec<String> = expect.keys().cloned().collect();
    assert_eq!(names, want, "partial namespace after mount");
    for (name, body) in expect {
        assert_eq!(&fs.read(name).unwrap(), body, "wrong bytes in {name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A byte flipped anywhere in the persisted checkpoint — length
    /// prefix, header, tables, scrub section, or CRC — yields a typed
    /// mount error or a fully intact mount. Never a partial one.
    #[test]
    fn flipped_checkpoint_bytes_mount_typed_or_fully_intact(
        seed in any::<u64>(),
        salt in any::<u8>(),
        nfiles in 1usize..4,
        flip_at in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let (mut probe, expect) = synced_fs(seed, salt, nfiles);
        let framed = read_framed(&mut probe);
        let at = flip_at.index(framed.len());
        let block = (at / SECTOR_DATA_BYTES) as u64;
        let mut sector = probe.mrs(block).unwrap().data;
        sector[at % SECTOR_DATA_BYTES] ^= xor;
        probe.mws(block, &sector).unwrap();

        match try_mount(&probe) {
            Err(FsError::Corrupt { .. }) | Err(FsError::Device(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
            Ok(mut fs) => assert_intact(&mut fs, &expect),
        }
    }

    /// A torn multi-block checkpoint write — a prefix persisted, the
    /// tail of the region left zeroed — is rejected whole, never
    /// reassembled into a shorter-but-plausible record.
    #[test]
    fn torn_checkpoint_tail_is_rejected_whole(
        seed in any::<u64>(),
        salt in any::<u8>(),
        nfiles in 1usize..4,
        cut_at in any::<proptest::sample::Index>(),
    ) {
        let (mut probe, expect) = synced_fs(seed, salt, nfiles);
        let framed = read_framed(&mut probe);
        let cut = cut_at.index(framed.len());
        let mut torn = framed.clone();
        for b in &mut torn[cut..] {
            *b = 0;
        }
        write_framed(&mut probe, &torn);

        match try_mount(&probe) {
            Err(FsError::Corrupt { .. }) | Err(FsError::Device(_)) => {
                prop_assert!(cut < framed.len(), "untouched checkpoint must mount");
            }
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
            Ok(mut fs) => assert_intact(&mut fs, &expect),
        }
    }
}

/// The no-fault control: a pristine remount restores the namespace, the
/// data, and the persisted scrub bookkeeping.
#[test]
fn pristine_remount_restores_namespace_and_scrub_state() {
    let (probe, expect) = synced_fs(42, 7, 3);
    let mut fs = try_mount(&probe).expect("pristine checkpoint must mount");
    assert_intact(&mut fs, &expect);
    assert!(
        fs.scrub_restore().is_some(),
        "v2 checkpoint carries scrub state across the remount"
    );
}

/// Each corrupt header field behind the CRC reaches its own typed
/// reason — the parser names what it refused.
#[test]
fn each_corrupt_field_yields_its_typed_reason() {
    type Mutation = fn(&mut Vec<u8>);
    let cases: [(&str, Mutation); 3] = [
        ("magic", |b| b[0] ^= 0xFF),
        ("version", |b| b[4] = 9),
        ("policy", |b| b[4 + 1 + 8 + 8] = 7),
    ];
    for (needle, mutate) in cases {
        let (mut probe, _) = synced_fs(1, 1, 1);
        rewrite_checkpoint(&mut probe, mutate);
        match try_mount(&probe) {
            Err(FsError::Corrupt { reason }) => {
                assert!(reason.contains(needle), "reason {reason:?} names {needle}")
            }
            other => panic!("expected Corrupt naming {needle}, got {other:?}"),
        }
    }
}

/// A hostile scrub-section length cannot read past the record: it is a
/// typed truncation error, not an overread or a panic.
#[test]
fn ballooned_scrub_length_is_truncation_not_overread() {
    let (mut probe, _) = synced_fs(3, 3, 1);
    rewrite_checkpoint(&mut probe, |b| {
        let p = scrub_len_pos(b);
        b[p..p + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    });
    match try_mount(&probe) {
        Err(FsError::Corrupt { reason }) => {
            assert!(reason.contains("scrub-state"), "{reason}")
        }
        other => panic!("expected truncated scrub section, got {other:?}"),
    }
}

/// Corruption confined to the scrub-state payload (checkpoint CRC still
/// valid) is the sanctioned degraded path: the mount SUCCEEDS with the
/// namespace intact, the bad record is rejected whole, and the next
/// scrub falls back to a full pass — never a mount failure, never a
/// partially applied restore.
#[test]
fn corrupt_scrub_payload_is_a_clean_fallback_never_a_mount_failure() {
    let (mut probe, expect) = synced_fs(5, 9, 2);
    rewrite_checkpoint(&mut probe, |b| {
        let p = scrub_len_pos(b);
        let len = u32::from_le_bytes(b[p..p + 4].try_into().unwrap()) as usize;
        assert!(len > 0, "a scrubbed heated line must export state");
        for byte in &mut b[p + 4..p + 4 + len] {
            *byte ^= 0xA5;
        }
    });
    let mut fs = try_mount(&probe).expect("scrub-state corruption must never fail the mount");
    assert_intact(&mut fs, &expect);
    assert!(
        fs.scrub_restore().is_none(),
        "a corrupt record is rejected whole, not partially applied"
    );
}
