//! End-to-end tests of the served deployment: a real `sero-server`
//! daemon on loopback, real `sero-client` connections, the full command
//! path over actual TCP frames. The headline property is the paper's
//! guarantee surviving the wire: a remote auditor who heats a file,
//! watches an attacker raw-write into its line, and verifies again gets
//! a loud TAMPER-DETECTED error code — never a quiet success.

use sero_client::{ClientError, SeroClient};
use sero_core::device::SeroDevice;
use sero_fs::fs::{FsConfig, SeroFs};
use sero_proto::{ErrorCode, WireClass, WireSchedState, WireVerdict};
use sero_server::{PoolKind, SeroServer, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::thread;

fn spawn_server(blocks: u64, config: ServerConfig) -> (ServerHandle, SocketAddr) {
    let fs = SeroFs::format(SeroDevice::with_blocks(blocks), FsConfig::default()).unwrap();
    let server = SeroServer::bind("127.0.0.1:0", fs, config).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    (handle, addr)
}

#[test]
fn crud_round_trip_over_the_wire() {
    let (handle, addr) = spawn_server(512, ServerConfig::default());
    let mut client = SeroClient::connect(addr).unwrap();

    client.ping().unwrap();
    let ino = client
        .create("wal.log", b"begin; commit;", WireClass::Normal)
        .unwrap();
    assert!(ino > 0);
    assert_eq!(client.read("wal.log").unwrap(), b"begin; commit;");
    client
        .write("wal.log", b"rewritten", WireClass::Normal)
        .unwrap();
    assert_eq!(client.read("wal.log").unwrap(), b"rewritten");
    let info = client.stat("wal.log").unwrap();
    assert_eq!(info.size, 9);
    assert!(info.heated.is_none());
    assert_eq!(client.list().unwrap(), vec!["wal.log".to_string()]);
    client.remove("wal.log").unwrap();

    let err = client.read("wal.log").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NotFound));
    match &err {
        ClientError::Server(e) => assert!(e.detail.contains("wal.log"), "{}", e.detail),
        other => panic!("{other:?}"),
    }

    handle.shutdown();
}

#[test]
fn eight_concurrent_clients_see_consistent_state() {
    let (handle, addr) = spawn_server(
        4096,
        ServerConfig {
            pool: PoolKind::SharedQueue,
            threads: 4,
            ..ServerConfig::default()
        },
    );

    const CLIENTS: usize = 8;
    const OPS: usize = 12;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = SeroClient::connect(addr).unwrap();
                let name = format!("client-{c}.dat");
                let body = vec![c as u8 + 1; 700];
                client.create(&name, &body, WireClass::Normal).unwrap();
                for round in 0..OPS {
                    assert_eq!(
                        client.read(&name).unwrap(),
                        body,
                        "client {c} round {round}"
                    );
                    client.ping().unwrap();
                }
                let names = client.list().unwrap();
                assert!(names.contains(&name), "client {c} lost its own file");
                name
            })
        })
        .collect();
    let created: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // One more client observes every file all the others wrote.
    let mut observer = SeroClient::connect(addr).unwrap();
    let names = observer.list().unwrap();
    for name in &created {
        assert!(names.contains(name));
    }
    assert_eq!(names.len(), CLIENTS);

    handle.shutdown();
}

#[test]
fn tamper_evidence_crosses_the_wire() {
    let (handle, addr) = spawn_server(
        512,
        ServerConfig {
            allow_raw: true,
            ..ServerConfig::default()
        },
    );
    let mut auditor = SeroClient::connect(addr).unwrap();

    auditor
        .create("ledger.csv", &[7u8; 1500], WireClass::Archival)
        .unwrap();
    let line = auditor
        .heat("ledger.csv", b"2008 audit", 1_199_145_600)
        .unwrap();
    match auditor.verify("ledger.csv").unwrap() {
        WireVerdict::Intact {
            timestamp,
            metadata,
            ..
        } => {
            assert_eq!(timestamp, 1_199_145_600);
            assert_eq!(metadata, b"2008 audit");
        }
        other => panic!("{other:?}"),
    }

    // The attacker connects with their own session — the §5 "laptop with
    // the appropriate interface" — and rewrites a protected block.
    let mut attacker = SeroClient::connect(addr).unwrap();
    attacker.raw_write(line.start + 2, &[0xEE; 512]).unwrap();

    // The auditor's next verify fails loudly with the wire-stable code
    // and the full report text.
    let err = auditor.verify("ledger.csv").unwrap_err();
    assert!(err.is_tamper_detected(), "{err}");
    match &err {
        ClientError::Server(e) => {
            assert_eq!(e.code, ErrorCode::TamperDetected);
            assert!(e.detail.contains("TAMPER EVIDENCE"), "{}", e.detail);
        }
        other => panic!("{other:?}"),
    }

    // The read path itself serves the corrupted bytes without complaint —
    // exactly why the paper's guarantee is *evidence*, not prevention:
    // only verify catches the rewrite.
    let served = auditor.read("ledger.csv").unwrap();
    assert_eq!(served.len(), 1500);
    assert_ne!(served, vec![7u8; 1500], "tampered sector must be visible");

    handle.shutdown();
}

#[test]
fn production_daemon_refuses_raw_writes() {
    let (handle, addr) = spawn_server(256, ServerConfig::default());
    let mut client = SeroClient::connect(addr).unwrap();
    let err = client.raw_write(40, &[0u8; 512]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::UnsupportedCommand));
    // The refusal did not kill the connection.
    client.ping().unwrap();
    handle.shutdown();
}

#[test]
fn scrub_drives_to_completion_over_the_wire() {
    let (handle, addr) = spawn_server(1024, ServerConfig::default());
    let mut client = SeroClient::connect(addr).unwrap();

    for i in 0..4 {
        let name = format!("vault-{i}");
        client
            .create(&name, &[i as u8 + 1; 1100], WireClass::Archival)
            .unwrap();
        client.heat(&name, b"", i as u64).unwrap();
    }

    let err = client.scrub_tick().unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NoScrub));

    let (epoch, pending) = client.scrub_start(200_000, 1_000_000, true).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(pending, 4);
    // Double-start is refused with the wire-stable code.
    let err = client.scrub_start(0, 0, true).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::ScrubActive));

    let mut completed = false;
    for _ in 0..300 {
        let (_, status) = client.scrub_tick().unwrap();
        if status.state == WireSchedState::Complete {
            assert_eq!(status.verified, 4);
            assert_eq!(status.tampered, 0);
            completed = true;
            break;
        }
    }
    assert!(completed, "wire-driven scrub never completed");

    let status = client.scrub_status().unwrap().expect("a pass ran");
    assert_eq!(status.epoch, 1);

    let members = client.fleet_status().unwrap();
    assert_eq!(members.len(), 1);
    assert_eq!(members[0].scrub_epoch, 1);
    assert_eq!(members[0].heated_lines, 4);

    handle.shutdown();
}

#[test]
fn shutdown_stops_serving() {
    let (handle, addr) = spawn_server(256, ServerConfig::default());
    let mut client = SeroClient::connect(addr).unwrap();
    client.ping().unwrap();
    handle.shutdown();
    // The daemon is gone: either the connect is refused or the first
    // command on a half-open stream fails.
    let outcome = SeroClient::connect(addr).and_then(|mut c| c.ping());
    assert!(outcome.is_err(), "daemon still serving after shutdown");
}
