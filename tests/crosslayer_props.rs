//! Cross-layer property tests: invariants that must hold across crate
//! boundaries for arbitrary inputs.

use proptest::prelude::*;
use sero::core::device::SeroDevice;
use sero::core::line::Line;
use sero::fs::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever bytes a file holds, heat → verify is intact, the content
    /// is unchanged, and any single-byte flip through the raw device is
    /// caught.
    #[test]
    fn heat_verify_detects_every_flip(
        content in proptest::collection::vec(any::<u8>(), 1..4000),
        flip_at in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut fs = SeroFs::format(SeroDevice::with_blocks(512), FsConfig::default()).unwrap();
        fs.create("f", &content, WriteClass::Archival).unwrap();
        let line = fs.heat("f", vec![], 0).unwrap();
        prop_assert!(fs.verify("f").unwrap().is_intact());
        prop_assert_eq!(fs.read("f").unwrap(), content.clone());

        // Flip one byte of one protected data block via the raw device.
        let victim = line.start() + 2; // first data block
        let sector = fs.device_mut().probe_mut().mrs(victim).unwrap();
        let mut doctored = sector.data;
        doctored[flip_at.index(512)] ^= xor;
        fs.device_mut().probe_mut().mws(victim, &doctored).unwrap();

        prop_assert!(fs.verify("f").unwrap().is_tampered());
    }

    /// Sync + mount round-trips arbitrary file populations.
    #[test]
    fn remount_preserves_everything(
        sizes in proptest::collection::vec(1usize..3000, 1..8),
        heat_mask in any::<u8>(),
    ) {
        let mut fs = SeroFs::format(SeroDevice::with_blocks(1024), FsConfig::default()).unwrap();
        let mut expected = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let name = format!("file-{i}");
            let data = vec![(i as u8).wrapping_mul(37); size];
            let heat = (heat_mask >> (i % 8)) & 1 == 1;
            let class = if heat { WriteClass::Archival } else { WriteClass::Normal };
            fs.create(&name, &data, class).unwrap();
            if heat {
                fs.heat(&name, vec![], i as u64).unwrap();
            }
            expected.push((name, data, heat));
        }
        fs.sync().unwrap();
        let mut fs2 = SeroFs::mount(fs.into_device()).unwrap();
        for (name, data, heated) in expected {
            prop_assert_eq!(fs2.read(&name).unwrap(), data);
            prop_assert_eq!(fs2.stat(&name).unwrap().heated.is_some(), heated);
            if heated {
                prop_assert!(fs2.verify(&name).unwrap().is_intact());
            }
        }
    }

    /// Device-level: any set of non-overlapping lines heats and verifies
    /// independently, and the registry rebuild finds exactly that set.
    #[test]
    fn registry_scan_is_exact(present in proptest::collection::vec(any::<bool>(), 8)) {
        let mut dev = SeroDevice::with_blocks(64);
        for pba in 0..64 {
            dev.write_block(pba, &[pba as u8; 512]).unwrap();
        }
        let mut heated = Vec::new();
        for (slot, &on) in present.iter().enumerate() {
            if on {
                let line = Line::new(slot as u64 * 8, 3).unwrap();
                dev.heat_line(line, vec![], slot as u64).unwrap();
                heated.push(line);
            }
        }
        let scan = dev.rebuild_registry().unwrap();
        prop_assert_eq!(scan.lines_found, heated.len());
        prop_assert!(scan.suspicious_blocks.is_empty());
        prop_assert!(scan.overlapping_lines.is_empty());
        for line in heated {
            prop_assert!(dev.verify_line(line).unwrap().is_intact());
        }
    }
}
