//! **sero** — tamper-evident SERO storage on simulated patterned magnetic
//! media.
//!
//! A full reproduction of *Towards Tamper-evident Storage on Patterned
//! Media* (Hartel, Abelmann, Khatib — FAST 2008), from the Co/Pt
//! interface-mixing physics up to a heated-line-aware log-structured file
//! system, plus the archival substrates (Venti, fossilised index) and the
//! complete §5 attack battery.
//!
//! This facade crate re-exports the whole stack:
//!
//! | layer | crate |
//! |---|---|
//! | medium physics (anisotropy, XRD, thermal, MFM) | [`media`] |
//! | probe device (bit/sector ops, timing) | [`probe`] |
//! | hashing | [`crypto`] |
//! | Manchester / CRC / Reed–Solomon / WOM codes | [`codec`] |
//! | **SERO device: heat & verify lines** | [`core`] |
//! | LSM metadata index (WAL, segments, blooms, manifest) | [`index`] |
//! | log-structured file system + concurrent front end | [`fs`] |
//! | content-addressed archival store | [`venti`] |
//! | fossilised index | [`fossil`] |
//! | §5 attack battery | [`attack`] |
//! | workload generators | [`workload`] |
//! | wire protocol (commands, frames, error codes) | [`proto`] |
//!
//! # Quickstart
//!
//! ```
//! use sero::core::prelude::*;
//!
//! let mut dev = SeroDevice::with_blocks(32);
//! let line = Line::new(8, 2)?;
//! for pba in line.data_blocks() {
//!     dev.write_block(pba, &[0xAB; 512])?;
//! }
//! dev.heat_line(line, b"frozen evidence".to_vec(), 1_199_145_600)?;
//! assert!(dev.verify_line(line)?.is_intact());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Concurrency
//!
//! A [`fs::fs::SeroFs`] wants exclusive access (`&mut self`). To share
//! one file system across threads — the `sero-server` deployment shape —
//! wrap it in [`fs::ConcurrentFs`]: a cloneable handle whose flat
//! combiner drains every caller's staged requests at once and lets the
//! admission scheduler ([`core::admission`]) merge queued reads into
//! elevator sweeps, while budgeted scrub slices interleave under the
//! [`core::locks`] line-lock discipline. Any interleaving answers
//! byte-identically to the serialized schedule — tamper evidence
//! included. `docs/ARCHITECTURE.md` documents the model and its
//! invariants; `examples/quickstart.rs` ends with a threaded demo.
//!
//! ```
//! use sero::fs::fs::{FsConfig, SeroFs};
//! use sero::fs::ConcurrentFs;
//! use sero::proto::{Request, Response, WireClass};
//!
//! let mut fs = SeroFs::format(sero::core::device::SeroDevice::with_blocks(64), FsConfig::default())?;
//! fs.handle(Request::Create {
//!     name: "shared.bin".into(),
//!     data: vec![9u8; 700],
//!     class: WireClass::Normal,
//! });
//! let cfs = ConcurrentFs::new(fs); // clone per thread; handle(&self)
//! let reader = {
//!     let cfs = cfs.clone();
//!     std::thread::spawn(move || cfs.handle(Request::Read { name: "shared.bin".into() }))
//! };
//! assert!(matches!(reader.join().unwrap(), Response::Data { .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sero_attack as attack;
pub use sero_codec as codec;
pub use sero_core as core;
pub use sero_crypto as crypto;
pub use sero_fossil as fossil;
pub use sero_fs as fs;
pub use sero_index as index;
pub use sero_media as media;
pub use sero_probe as probe;
pub use sero_proto as proto;
pub use sero_venti as venti;
pub use sero_workload as workload;
