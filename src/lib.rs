//! **sero** — tamper-evident SERO storage on simulated patterned magnetic
//! media.
//!
//! A full reproduction of *Towards Tamper-evident Storage on Patterned
//! Media* (Hartel, Abelmann, Khatib — FAST 2008), from the Co/Pt
//! interface-mixing physics up to a heated-line-aware log-structured file
//! system, plus the archival substrates (Venti, fossilised index) and the
//! complete §5 attack battery.
//!
//! This facade crate re-exports the whole stack:
//!
//! | layer | crate |
//! |---|---|
//! | medium physics (anisotropy, XRD, thermal, MFM) | [`media`] |
//! | probe device (bit/sector ops, timing) | [`probe`] |
//! | hashing | [`crypto`] |
//! | Manchester / CRC / Reed–Solomon / WOM codes | [`codec`] |
//! | **SERO device: heat & verify lines** | [`core`] |
//! | log-structured file system | [`fs`] |
//! | content-addressed archival store | [`venti`] |
//! | fossilised index | [`fossil`] |
//! | §5 attack battery | [`attack`] |
//! | workload generators | [`workload`] |
//! | wire protocol (commands, frames, error codes) | [`proto`] |
//!
//! # Quickstart
//!
//! ```
//! use sero::core::prelude::*;
//!
//! let mut dev = SeroDevice::with_blocks(32);
//! let line = Line::new(8, 2)?;
//! for pba in line.data_blocks() {
//!     dev.write_block(pba, &[0xAB; 512])?;
//! }
//! dev.heat_line(line, b"frozen evidence".to_vec(), 1_199_145_600)?;
//! assert!(dev.verify_line(line)?.is_intact());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sero_attack as attack;
pub use sero_codec as codec;
pub use sero_core as core;
pub use sero_crypto as crypto;
pub use sero_fossil as fossil;
pub use sero_fs as fs;
pub use sero_media as media;
pub use sero_probe as probe;
pub use sero_proto as proto;
pub use sero_venti as venti;
pub use sero_workload as workload;
