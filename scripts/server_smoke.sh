#!/usr/bin/env bash
# End-to-end smoke of the served deployment: start a sero-server daemon
# on loopback (with the §5 raw interface enabled), drive it with
# sero-cli — basic round trip, 8 concurrent clients, then the tamper
# drill: raw-write into a heated line and demand that verify exits 4
# with the evidence report. Used by the server-smoke CI job; runnable
# locally as `./scripts/server_smoke.sh ./target/release`.
#
# `--reactor` switches to the reactor-scale drill: the daemon (running
# its default readiness-driven event loop) must hold 512 idle
# connections while 8 active CLI clients work concurrently — with a
# bounded thread count, every idle connection answered before AND after
# the hold — then pass the same tamper drill. Used by the reactor-smoke
# CI job.
#
# The daemon's stderr goes to a log file that is dumped on any failure,
# so CI diagnoses a wedged or crashed server from the job output alone.
set -euo pipefail

# Watchdog: a wedged server or a CLI blocked on a dead socket must fail
# this drill loudly, not hang the job. Re-exec the whole script under
# timeout(1), which signals the entire process group — stray CLI
# grandchildren included — and hard-kills whatever survives the grace.
SMOKE_TIMEOUT="${SMOKE_TIMEOUT:-180}"
if [ -z "${SMOKE_WATCHDOG:-}" ] && command -v timeout >/dev/null 2>&1; then
  export SMOKE_WATCHDOG=1
  exec timeout --kill-after=10 "$SMOKE_TIMEOUT" "$0" "$@"
fi

BIN_DIR="./target/release"
REACTOR=0
for arg in "$@"; do
  case "$arg" in
    --reactor) REACTOR=1 ;;
    *) BIN_DIR="$arg" ;;
  esac
done
SERVER="$BIN_DIR/sero-server"
CLI="$BIN_DIR/sero-cli"
ADDR="127.0.0.1:4151"
export SERO_ADDR="$ADDR"

[ -x "$SERVER" ] || { echo "missing $SERVER (build with: cargo build --release -p sero-server)"; exit 1; }
[ -x "$CLI" ] || { echo "missing $CLI (build with: cargo build --release -p sero-client)"; exit 1; }

SERVER_PID=""
SERVER_LOG="$(mktemp -t sero-server-smoke.XXXXXX.log)"
IDLE_OUT=""
CLIENT_PIDS=()
cleanup() {
  rc=$?
  # Reap stray CLI children first so none outlives the server they talk to.
  if [ "${#CLIENT_PIDS[@]}" -gt 0 ]; then
    kill "${CLIENT_PIDS[@]}" 2>/dev/null || true
  fi
  if [ -n "$SERVER_PID" ]; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
  if [ "$rc" -ne 0 ]; then
    echo "== daemon stderr ($SERVER_LOG) =="
    cat "$SERVER_LOG" 2>/dev/null || true
    if [ -n "$IDLE_OUT" ]; then
      echo "== idle-swarm output =="
      cat "$IDLE_OUT" 2>/dev/null || true
    fi
    # Keep the logs on disk so the CI failure-dump step can re-surface
    # them even when the watchdog killed this shell mid-drill.
  else
    rm -f "$SERVER_LOG" ${IDLE_OUT:+"$IDLE_OUT"}
  fi
}
trap cleanup EXIT

# The reactor drill's 512 idle connections go silent for the whole hold
# window; a generous read deadline keeps the reap timer from firing on
# them mid-drill (the dedicated stall regression covers the reap path).
if [ "$REACTOR" -eq 1 ]; then
  "$SERVER" --addr "$ADDR" --blocks 2048 --allow-raw \
    --read-timeout-ms 120000 --max-connections 600 2>"$SERVER_LOG" &
else
  "$SERVER" --addr "$ADDR" --blocks 2048 --allow-raw 2>"$SERVER_LOG" &
fi
SERVER_PID=$!

# Wait for the listener.
for _ in $(seq 1 50); do
  if "$CLI" ping >/dev/null 2>&1; then break; fi
  sleep 0.2
done
"$CLI" ping

echo "== basic round trip =="
"$CLI" set ledger "audit 2008" archival
[ "$("$CLI" get ledger)" = "audit 2008" ]
"$CLI" set ledger "audit 2008 rev b" archival
[ "$("$CLI" get ledger)" = "audit 2008 rev b" ]
"$CLI" stat ledger
"$CLI" ls | grep -qx ledger

if [ "$REACTOR" -eq 1 ]; then
  echo "== 512 idle connections held open =="
  IDLE_OUT="$(mktemp -t sero-idle-swarm.XXXXXX.out)"
  "$CLI" idle-swarm 512 12 >"$IDLE_OUT" &
  IDLE_PID=$!
  CLIENT_PIDS+=("$IDLE_PID")
  for _ in $(seq 1 150); do
    if grep -q "^HOLDING 512$" "$IDLE_OUT"; then break; fi
    sleep 0.2
  done
  grep -q "^HOLDING 512$" "$IDLE_OUT" || { echo "idle swarm never reached HOLDING 512"; exit 1; }
fi

echo "== 8 concurrent clients =="
for c in $(seq 1 8); do
  (
    for i in $(seq 1 10); do
      "$CLI" set "key-$c" "value-$c-$i"
      [ "$("$CLI" get "key-$c")" = "value-$c-$i" ]
    done
  ) &
  CLIENT_PIDS+=("$!")
done
for pid in "${CLIENT_PIDS[@]}"; do
  if [ "${IDLE_PID:-}" = "$pid" ]; then continue; fi
  wait "$pid"
done
CLIENT_PIDS=(${IDLE_PID:+"$IDLE_PID"})
for c in $(seq 1 8); do
  [ "$("$CLI" get "key-$c")" = "value-$c-10" ]
done
echo "all 8 clients consistent"

if [ "$REACTOR" -eq 1 ]; then
  echo "== bounded threads under 520 connections =="
  # One event loop owns every socket: the daemon must not have grown a
  # thread per connection while 512 idle + 8 active clients were live.
  THREADS="$(awk '/^Threads:/ {print $2}' "/proc/$SERVER_PID/status")"
  echo "daemon threads: $THREADS"
  [ "$THREADS" -le 4 ] || { echo "expected a bounded thread count, got $THREADS"; exit 1; }

  # The idle swarm exits 0 only if every one of the 512 connections
  # answered a ping both before and after the idle hold.
  wait "$IDLE_PID"
  CLIENT_PIDS=()
  grep -q "^RELEASED 512$" "$IDLE_OUT" || { echo "idle swarm never released"; exit 1; }
  echo "all 512 idle connections answered after the hold"
fi

echo "== tamper drill =="
"$CLI" heat ledger "quarter-end freeze" 1199145600
"$CLI" verify ledger | grep -q "^intact"
START="$("$CLI" stat ledger | grep -o 'start=[0-9]*' | cut -d= -f2)"
[ -n "$START" ]
"$CLI" raw-write "$((START + 1))" 238
set +e
VERIFY_OUT="$("$CLI" verify ledger 2>&1)"
RC=$?
set -e
echo "$VERIFY_OUT"
[ "$RC" -eq 4 ] || { echo "expected exit 4 (tamper detected), got $RC"; exit 1; }
echo "$VERIFY_OUT" | grep -q "TAMPER EVIDENCE"

echo "== scrub over the wire =="
"$CLI" scrub-start 200000 1000000
for _ in $(seq 1 300); do
  OUT="$("$CLI" scrub-tick)"
  case "$OUT" in
    "scrub complete"*) break ;;
  esac
done
"$CLI" scrub-status | grep -q "^scrub complete"
# The drill's tampered line must be in the pass's evidence.
"$CLI" scrub-status | grep -q "tampered=1"
"$CLI" fleet-status

kill "$SERVER_PID"
SERVER_PID=""
if [ "$REACTOR" -eq 1 ]; then
  echo "reactor smoke: OK"
else
  echo "server smoke: OK"
fi
