#!/usr/bin/env bash
# End-to-end smoke of the served deployment: start a sero-server daemon
# on loopback (with the §5 raw interface enabled), drive it with
# sero-cli — basic round trip, 8 concurrent clients, then the tamper
# drill: raw-write into a heated line and demand that verify exits 4
# with the evidence report. Used by the server-smoke CI job; runnable
# locally as `./scripts/server_smoke.sh ./target/release`.
set -euo pipefail

# Watchdog: a wedged server or a CLI blocked on a dead socket must fail
# this drill loudly, not hang the job. Re-exec the whole script under
# timeout(1), which signals the entire process group — stray CLI
# grandchildren included — and hard-kills whatever survives the grace.
SMOKE_TIMEOUT="${SMOKE_TIMEOUT:-120}"
if [ -z "${SMOKE_WATCHDOG:-}" ] && command -v timeout >/dev/null 2>&1; then
  export SMOKE_WATCHDOG=1
  exec timeout --kill-after=10 "$SMOKE_TIMEOUT" "$0" "$@"
fi

BIN_DIR="${1:-./target/release}"
SERVER="$BIN_DIR/sero-server"
CLI="$BIN_DIR/sero-cli"
ADDR="127.0.0.1:4151"
export SERO_ADDR="$ADDR"

[ -x "$SERVER" ] || { echo "missing $SERVER (build with: cargo build --release -p sero-server)"; exit 1; }
[ -x "$CLI" ] || { echo "missing $CLI (build with: cargo build --release -p sero-client)"; exit 1; }

SERVER_PID=""
CLIENT_PIDS=()
cleanup() {
  # Reap stray CLI children first so none outlives the server they talk to.
  if [ "${#CLIENT_PIDS[@]}" -gt 0 ]; then
    kill "${CLIENT_PIDS[@]}" 2>/dev/null || true
  fi
  if [ -n "$SERVER_PID" ]; then
    kill "$SERVER_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

"$SERVER" --addr "$ADDR" --blocks 2048 --allow-raw &
SERVER_PID=$!

# Wait for the listener.
for _ in $(seq 1 50); do
  if "$CLI" ping >/dev/null 2>&1; then break; fi
  sleep 0.2
done
"$CLI" ping

echo "== basic round trip =="
"$CLI" set ledger "audit 2008" archival
[ "$("$CLI" get ledger)" = "audit 2008" ]
"$CLI" set ledger "audit 2008 rev b" archival
[ "$("$CLI" get ledger)" = "audit 2008 rev b" ]
"$CLI" stat ledger
"$CLI" ls | grep -qx ledger

echo "== 8 concurrent clients =="
for c in $(seq 1 8); do
  (
    for i in $(seq 1 10); do
      "$CLI" set "key-$c" "value-$c-$i"
      [ "$("$CLI" get "key-$c")" = "value-$c-$i" ]
    done
  ) &
  CLIENT_PIDS+=("$!")
done
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid"
done
CLIENT_PIDS=()
for c in $(seq 1 8); do
  [ "$("$CLI" get "key-$c")" = "value-$c-10" ]
done
echo "all 8 clients consistent"

echo "== tamper drill =="
"$CLI" heat ledger "quarter-end freeze" 1199145600
"$CLI" verify ledger | grep -q "^intact"
START="$("$CLI" stat ledger | grep -o 'start=[0-9]*' | cut -d= -f2)"
[ -n "$START" ]
"$CLI" raw-write "$((START + 1))" 238
set +e
VERIFY_OUT="$("$CLI" verify ledger 2>&1)"
RC=$?
set -e
echo "$VERIFY_OUT"
[ "$RC" -eq 4 ] || { echo "expected exit 4 (tamper detected), got $RC"; exit 1; }
echo "$VERIFY_OUT" | grep -q "TAMPER EVIDENCE"

echo "== scrub over the wire =="
"$CLI" scrub-start 200000 1000000
for _ in $(seq 1 300); do
  OUT="$("$CLI" scrub-tick)"
  case "$OUT" in
    "scrub complete"*) break ;;
  esac
done
"$CLI" scrub-status | grep -q "^scrub complete"
# The drill's tampered line must be in the pass's evidence.
"$CLI" scrub-status | grep -q "tampered=1"
"$CLI" fleet-status

kill "$SERVER_PID"
trap - EXIT
echo "server smoke: OK"
